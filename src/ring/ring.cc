#include "ring/ring.hh"

#include <algorithm>

#include "check/version_oracle.hh"
#include "common/logging.hh"
#include "core/retry_monitor.hh"
#include "fault/fault_injector.hh"
#include "obs/trace_export.hh"

namespace cmpcache
{

namespace
{

/** Per-thread issue capture (see Ring::setThreadIssueDeferral). */
thread_local IssueDeferral *tlsIssueDeferral = nullptr;

} // namespace

void
Ring::setThreadIssueDeferral(IssueDeferral *d)
{
    tlsIssueDeferral = d;
}

Ring::Ring(stats::Group *parent, EventQueue &eq, const RingParams &p,
           const CmpTopology &topo)
    : SimObject(parent, "ring", eq),
      params_(p),
      topo_(topo),
      collector_(this, topo_),
      drainEvent_([this] { drain(); }, "ring-drain"),
      requests_(this, "requests", "address-ring transactions issued"),
      launches_(this, "launches", "address-ring slots used"),
      dataTransfers_(this, "data_transfers",
                     "line transfers on the data ring"),
      dataSegmentWaits_(this, "data_segment_waits",
                        "transfers delayed by a busy segment"),
      retryResponses_(this, "retry_responses",
                      "transactions answered with Retry"),
      queueDelay_(this, "queue_delay",
                  "cycles requests waited for an address slot"),
      queueDepth_(this, "queue_depth",
                  "address queue depth at enqueue time", 0, 64, 16),
      pendingNow_(this, "pending_now",
                  "requests queued for an address slot right now",
                  [this] {
                      return static_cast<double>(reqQueue_.size());
                  })
{
    dataRings_.resize(topo_.numRings());
    for (unsigned r = 0; r < topo_.numRings(); ++r) {
        DataRing &ring = dataRings_[r];
        ring.size = topo_.ringSize(r);
        for (int dir = 0; dir < 2; ++dir) {
            ring.nextFree[dir].assign(ring.size, 0);
            ring.scratch[dir].reserve(ring.size);
        }
    }
}

void
Ring::attach(BusAgent *agent, Role role)
{
    cmp_assert(agent != nullptr, "attaching null agent");
    cmp_assert(agent->ringStop().value() < topo_.numStops(),
               "agent stop out of range");
    for (const auto *a : agents_) {
        cmp_assert(a->agentId() != agent->agentId(),
                   "duplicate agent id ", unsigned{agent->agentId()});
        cmp_assert(a->ringStop() != agent->ringStop(),
                   "duplicate ring stop ",
                   agent->ringStop().value());
    }
    agents_.push_back(agent);
    if (role == Role::L3) {
        cmp_assert(!l3Agent_, "two L3 agents attached");
        l3Agent_ = agent;
    } else if (role == Role::Memory) {
        cmp_assert(!memAgent_, "two memory agents attached");
        memAgent_ = agent;
    }
}

BusAgent *
Ring::agentById(AgentId id)
{
    for (auto *a : agents_)
        if (a->agentId() == id)
            return a;
    cmp_panic("no agent with id ", unsigned{id});
}

std::uint64_t
Ring::issue(const BusRequest &req)
{
    // Parallel domain execution: capture the call for serial-order
    // replay. The transaction id is assigned at replay time; no
    // caller consumes the id synchronously (responses are matched by
    // line address in observeCombined), so returning 0 here is safe.
    if (IssueDeferral *d = tlsIssueDeferral) {
        d->deferIssue(req);
        return 0;
    }
    BusRequest r = req;
    r.txnId = nextTxnId_++;
    ++requests_;
    queueDepth_.sample(static_cast<double>(reqQueue_.size()));
    reqQueue_.push_back(PendingReq{r, curTick()});
    scheduleDrain();
    return r.txnId;
}

void
Ring::scheduleDrain()
{
    if (reqQueue_.empty() || drainEvent_.scheduled())
        return;
    const Tick when =
        std::max(curTick() + params_.requesterOverhead, nextLaunch_);
    eventq().schedule(&drainEvent_, when);
}

void
Ring::drain()
{
    cmp_assert(!reqQueue_.empty(), "ring drain with empty queue");
    const Tick now = curTick();
    if (now < nextLaunch_) {
        eventq().schedule(&drainEvent_, nextLaunch_);
        return;
    }

    const PendingReq pending = reqQueue_.front();
    reqQueue_.pop_front();
    ++launches_;
    queueDelay_.sample(static_cast<double>(now - pending.enqueued));
    nextLaunch_ = now + params_.addrSlotCycles;

    const BusRequest req = pending.req;
    const Tick enq = pending.enqueued;
    const Tick delay = faults_ ? faults_->launchDelay(now) : 0;
    atGlobal(now + params_.snoopLatency + delay,
             [this, req, enq] { combineNow(req, enq); });

    if (!reqQueue_.empty())
        eventq().schedule(&drainEvent_, nextLaunch_);
}

void
Ring::combineNow(BusRequest req, Tick enqueued)
{
    // Gather snoop responses from everyone except the requester.
    // (Member scratch: combineNow only runs from one-shot events and
    // the buffer is dead once the collector has combined it.)
    std::vector<SnoopResponse> &responses = snoopScratch_;
    responses.clear();
    responses.reserve(agents_.size());
    BusAgent *requester = nullptr;
    for (auto *a : agents_) {
        if (a->agentId() == req.requester) {
            requester = a;
            continue;
        }
        responses.push_back(a->snoop(req));
    }
    cmp_assert(requester != nullptr, "request from unknown agent ",
               unsigned{req.requester});

    const Tick now = curTick();

    // Suppressed snarf wins: clear the accept offers before the
    // collector arbitrates. The offering L2s still release their
    // tentative buffer reservations in observeCombined, exactly as
    // when they lose the round-robin.
    if (faults_ && isWriteBack(req.cmd)) {
        bool offered = false;
        for (const auto &r : responses)
            offered = offered || r.snarfAccept;
        if (offered && faults_->suppressSnarf(now)) {
            for (auto &r : responses)
                r.snarfAccept = false;
        }
    }

    CombinedResult res = collector_.combine(req, responses);

    // Forced retries and NACKs override the combined response. Every
    // agent treats a Retry by releasing its tentative reservations
    // (L3 queue slot, snarf buffer), so the override is protocol-safe
    // and exercises the same recovery path as a real conflict.
    if (faults_ && res.resp != CombinedResp::Retry
        && ((isWriteBack(req.cmd) && faults_->forceL3Retry(now))
            || faults_->nack(now))) {
        res = CombinedResult{};
    }

    if (res.resp == CombinedResp::Retry) {
        ++retryResponses_;
        if (retryMonitor_)
            retryMonitor_->recordRetry(now);
    }

    // The conformance oracle validates at the serialization point,
    // before any agent reacts to the combined response. Throws
    // (SimErrorKind::Conformance) on a stale supply.
    if (conformance_)
        conformance_->onCombined(req, res, now);

    if (observer_)
        observer_(req, res);

    // Everyone sees the combined response; peers first so their state
    // transitions precede the requester's reaction.
    for (auto *a : agents_) {
        if (a != requester)
            a->observeCombined(req, res);
    }
    requester->observeCombined(req, res);

    // Route the data phase.
    BusAgent *supplier = nullptr;
    BusAgent *sink = nullptr;
    switch (res.resp) {
      case CombinedResp::L2Data:
        supplier = agentById(res.source);
        sink = requester;
        break;
      case CombinedResp::L3Data:
        supplier = l3Agent_;
        sink = requester;
        break;
      case CombinedResp::MemData:
        supplier = memAgent_;
        sink = requester;
        break;
      case CombinedResp::WbAcceptL3:
        supplier = requester;
        sink = l3Agent_;
        break;
      case CombinedResp::WbSnarfed:
        supplier = requester;
        sink = agentById(res.source);
        break;
      case CombinedResp::Retry:
      case CombinedResp::Upgraded:
      case CombinedResp::WbSquashed:
        // No data phase: the span ends at the combined response.
        if (tracer_) {
            tracer_->record({toString(req.cmd), "coherence", enqueued,
                             now, req.requester, 0, req.lineAddr,
                             toString(res.resp)});
        }
        return;
    }

    cmp_assert(supplier && sink, "data phase without endpoints");

    const Tick ready = supplier->scheduleSupply(req, now);
    const Tick arrive = reserveDataTransfer(
        supplier->ringStop(), sink->ringStop(), ready);
    if (tracer_) {
        tracer_->record({toString(req.cmd), "coherence", enqueued,
                         arrive, req.requester, 0, req.lineAddr,
                         toString(res.resp)});
    }
    if (isWriteBack(req.cmd)) {
        atAgent(sink->agentId(), arrive,
                [sink, req] { sink->receiveWriteBack(req); });
    } else {
        atAgent(sink->agentId(), arrive,
                [sink, req, res] { sink->receiveData(req, res); });
    }
}

Tick
Ring::reserveDataTransfer(RingStop src, RingStop dst, Tick earliest)
{
    ++dataTransfers_;
    if (src == dst)
        return earliest + params_.segmentOccupancy;

    CmpTopology::DataLeg legs[3];
    const unsigned nlegs = topo_.route(src, dst, legs);
    cmp_assert(nlegs > 0, "no data path found");

    // Legs chain: each starts no earlier than the previous leg's
    // arrival. A transfer counts as delayed at most once, however
    // many legs queued.
    bool waited = false;
    Tick at = earliest;
    for (unsigned i = 0; i < nlegs; ++i)
        at = reserveLeg(legs[i], at, waited);
    if (waited)
        ++dataSegmentWaits_;
    return at;
}

Tick
Ring::reserveLeg(const CmpTopology::DataLeg &leg, Tick earliest,
                 bool &waited)
{
    const unsigned src = leg.srcPos;
    const unsigned dst = leg.dstPos;

    // Evaluate both directions -- on every interchangeable lane --
    // without committing; pick the earlier arrival (ties go to the
    // shorter path, then the lower lane). Reservation ticks land in
    // the per-ring, per-direction scratch buffers (reserved at
    // construction) so the evaluation allocates nothing.
    const unsigned lanes = topo_.numDataLanes();
    Tick best_arrive = MaxTick;
    int best_dir = -1;
    unsigned best_lane = 0;
    unsigned best_hops = 0;

    for (unsigned lane = 0; lane < lanes; ++lane) {
        DataRing &ring = dataRings_[leg.ring + lane];
        const unsigned n = ring.size;
        const unsigned hops_by_dir[2] = {(dst + n - src) % n,
                                         (src + n - dst) % n};
        for (int dir = 0; dir < 2; ++dir) {
            const unsigned hops = hops_by_dir[dir];
            if (hops == 0)
                continue;
            Tick head = earliest;
            std::vector<Tick> &upd = ring.scratch[dir];
            upd.clear();
            unsigned stop = src;
            for (unsigned h = 0; h < hops; ++h) {
                const unsigned seg =
                    dir == 0 ? stop : (stop + n - 1) % n;
                head = std::max(head, ring.nextFree[dir][seg]);
                upd.push_back(head + params_.segmentOccupancy);
                head += params_.hopCycles;
                stop = dir == 0 ? (stop + 1) % n : (stop + n - 1) % n;
            }
            // The tail of the line arrives one occupancy after the
            // head entered the last segment.
            const Tick arrive =
                head - params_.hopCycles + params_.segmentOccupancy;
            const bool better =
                arrive < best_arrive
                || (arrive == best_arrive && best_dir >= 0
                    && hops < best_hops);
            if (better) {
                best_arrive = arrive;
                best_dir = dir;
                best_lane = lane;
                best_hops = hops;
            }
        }
    }

    cmp_assert(best_dir >= 0, "no data path found");

    // Commit the winning reservation.
    DataRing &ring = dataRings_[leg.ring + best_lane];
    const unsigned n = ring.size;
    const std::vector<Tick> &best_free = ring.scratch[best_dir];
    unsigned stop = src;
    for (unsigned h = 0; h < best_hops; ++h) {
        const unsigned seg =
            best_dir == 0 ? stop : (stop + n - 1) % n;
        if (ring.nextFree[best_dir][seg] > earliest)
            waited = true;
        ring.nextFree[best_dir][seg] = best_free[h];
        stop = best_dir == 0 ? (stop + 1) % n : (stop + n - 1) % n;
    }
    return best_arrive;
}

} // namespace cmpcache
