/**
 * @file
 * The bi-directional intrachip ring interconnect (paper Figure 1 /
 * Table 3: 32 B wide, clocked at half core speed).
 *
 * Two logical networks are modelled:
 *
 *  - The *address ring* carries broadcast requests and snooping. It is
 *    slotted: one transaction launches every `addrSlotCycles`; pending
 *    requests queue FIFO. A fixed `snoopLatency` after launch, every
 *    agent's snoop response is gathered, the Snoop Collector combines
 *    them, and the combined response becomes visible to all agents.
 *
 *  - The *data ring* carries line transfers point-to-point between
 *    ring stops. Each inter-stop segment is a resource a transfer
 *    occupies for `segmentOccupancy` cycles. Transfers take the
 *    less-congested direction and queue on busy segments, so
 *    contention lengthens latency under load.
 *
 * Component latencies are chosen so the contention-free load-to-use
 * totals match paper Table 3: 77 cycles L2-to-L2, 167 cycles from the
 * L3, 431 cycles from memory.
 *
 * The ring is also the transaction orchestrator: at combine time it
 * asks the supplier for its service-ready time, routes the data, and
 * delivers it to the destination agent.
 */

#ifndef CMPCACHE_RING_RING_HH
#define CMPCACHE_RING_RING_HH

#include <functional>
#include <utility>
#include <vector>

#include "coherence/bus.hh"
#include "coherence/snoop_collector.hh"
#include "common/circular_buffer.hh"
#include "sim/sim_object.hh"
#include "sim/topology.hh"

namespace cmpcache
{

class FaultInjector;
class RetryMonitor;
class TraceRecorder;
class VersionOracle;

/** Interface every component on the ring implements. */
class BusAgent
{
  public:
    virtual ~BusAgent() = default;

    virtual AgentId agentId() const = 0;
    /** The stop this agent occupies (CmpTopology::stopOfAgent). */
    virtual RingStop ringStop() const = 0;

    /**
     * Produce a snoop response for a foreign request. Must not mutate
     * coherence state (state changes apply at observeCombined);
     * resource *reservations* (L3 queue slot, snarf buffer) are
     * allowed and must be released in observeCombined if the combined
     * result went elsewhere.
     */
    virtual SnoopResponse snoop(const BusRequest &req) = 0;

    /** The combined response, visible to every agent (including the
     * requester, which reacts to its own transaction here). */
    virtual void observeCombined(const BusRequest &req,
                                 const CombinedResult &res)
        = 0;

    /**
     * Called on the data supplier: reserve array/bank resources and
     * return the tick the line is ready to leave this agent.
     */
    virtual Tick
    scheduleSupply(const BusRequest &req, Tick combine_time)
    {
        (void)req;
        return combine_time;
    }

    /** Demand data arrives at the requester. */
    virtual void
    receiveData(const BusRequest &req, const CombinedResult &res)
    {
        (void)req;
        (void)res;
    }

    /** Write-back data arrives (L3 absorb or snarf winner). */
    virtual void receiveWriteBack(const BusRequest &req)
    {
        (void)req;
    }
};

/**
 * Captures cross-domain issue() calls made from a worker thread. While
 * a thread's deferral sink is installed (Ring::setThreadIssueDeferral)
 * every issue() on that thread is recorded instead of executed; the
 * domain scheduler's coordinator replays the captured requests in
 * serial order, where the full issue path (transaction id assignment,
 * queue stats, drain scheduling) runs exactly as a serial run would.
 */
class IssueDeferral
{
  public:
    virtual ~IssueDeferral() = default;

    /** Record @p req for deferred, serial-order application. */
    virtual void deferIssue(const BusRequest &req) = 0;
};

/**
 * Per-destination event-queue routing for the domain scheduler. The
 * ring's one-shot events fall into two classes: globally ordered
 * protocol steps (snoop combines, and write-back absorbs into the
 * shared L3) go to the global queue; point-to-point data deliveries
 * go to the receiving agent's own domain queue. A null router (the
 * serial default) sends everything to the ring's own queue.
 */
class ScheduleRouter
{
  public:
    virtual ~ScheduleRouter() = default;

    /** Queue for deliveries consumed by @p agent alone. */
    virtual EventQueue &queueForAgent(AgentId agent) = 0;

    /** Queue for globally ordered steps (combines, L3 absorbs). */
    virtual EventQueue &globalQueue() = 0;
};

/**
 * Timing parameters of the ring. Geometry (stop counts, layout,
 * segment counts) is no longer a knob here: it derives entirely from
 * the CmpTopology the ring is built with.
 */
struct RingParams
{
    unsigned addrSlotCycles = 2;///< one request launch per slot
    Tick snoopLatency = 33;     ///< launch -> combined response
    Tick hopCycles = 4;         ///< data head latency per segment
    Tick segmentOccupancy = 4;  ///< 128 B line at 64 B/beat, 1:2 clock
    Tick requesterOverhead = 4; ///< miss detect -> request enqueued
};

class Ring : public SimObject
{
  public:
    Ring(stats::Group *parent, EventQueue &eq, const RingParams &p,
         const CmpTopology &topo);

    /** Roles an agent can play for data-phase routing. */
    enum class Role
    {
        L2,
        L3,
        Memory,
    };

    /** Register an agent; ids and stops must be unique. */
    void attach(BusAgent *agent, Role role);

    /** The system's retry monitor observes ring retries. */
    void setRetryMonitor(RetryMonitor *mon) { retryMonitor_ = mon; }

    /**
     * Install the fault injector (null disables injection). The ring
     * is where the FaultPlan's message faults land: launch delays,
     * forced L3-retry responses for write backs, blanket NACKs and
     * suppressed snarf wins -- all applied at combine time, where the
     * protocol already handles Retry outcomes, so no new recovery
     * paths are needed (see docs/robustness.md).
     */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /** Requests waiting for an address slot (watchdog diagnostics). */
    std::size_t pendingRequests() const { return reqQueue_.size(); }

    /**
     * Tick of the next scheduled address-slot drain; MaxTick when
     * none is pending. Drains are the only path that schedules a
     * combined response (the only globally ordered ring event), so
     * the parallel scheduler's adaptive cut uses this as the live
     * uncore-to-global bound (DomainScheduler::LookaheadProbeFn).
     */
    Tick nextDrainTick() const
    {
        return drainEvent_.scheduled() ? drainEvent_.when() : MaxTick;
    }

    /**
     * Address-slot pacing floor: no request -- queued or yet to be
     * issued -- can drain before this tick. Monotone within a run,
     * which is what makes it a sound cut input (the floor read at a
     * round start can only rise by replay time).
     */
    Tick launchFloor() const { return nextLaunch_; }

    /**
     * Line address and enqueue tick of the oldest queued request;
     * false if the queue is empty.
     */
    bool oldestPending(Addr &line, Tick &enqueued) const
    {
        if (reqQueue_.empty())
            return false;
        line = reqQueue_.front().req.lineAddr;
        enqueued = reqQueue_.front().enqueued;
        return true;
    }

    /** Record a duration event per completed transaction (issue to
     * data delivery) into @p t; null disables tracing. */
    void setTracer(TraceRecorder *t) { tracer_ = t; }

    /** Install per-destination queue routing (null = serial default:
     * everything on the ring's own queue). */
    void setScheduleRouter(ScheduleRouter *r) { router_ = r; }

    /**
     * Install (or, with null, remove) the calling thread's issue
     * deferral sink. Purely thread-local: parallel domain workers
     * install their own sink for the span of a scheduling round.
     */
    static void setThreadIssueDeferral(IssueDeferral *d);

    /**
     * Analysis hook invoked for every combined response (used by the
     * redundancy/reuse trackers behind Tables 1 and 2, and by tests).
     * Purely observational: runs after the combine, before agents.
     */
    using Observer =
        std::function<void(const BusRequest &, const CombinedResult &)>;
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    /**
     * Conformance oracle hook (check.oracle): every combined response
     * -- after fault overrides, before any agent reacts -- is
     * validated against the shadow write-epoch model. Separate from
     * the analysis observer slot so both can be active at once.
     */
    void setConformance(VersionOracle *o) { conformance_ = o; }

    /**
     * Enqueue a request for the address ring. The requester learns
     * the outcome in observeCombined().
     * @return the assigned transaction id
     */
    std::uint64_t issue(const BusRequest &req);

    SnoopCollector &collector() { return collector_; }
    const RingParams &params() const { return params_; }
    const CmpTopology &topology() const { return topo_; }

    /**
     * Reserve the data path from stop @p src to stop @p dst for one
     * line, no earlier than @p earliest. The topology decomposes the
     * path into per-ring legs (one on the paper's single ring; up to
     * three across a hierarchical layout); each leg evaluates both
     * directions -- and, under dual_ring, both lanes -- and commits
     * the earliest arrival.
     * @return delivery tick at the destination
     */
    Tick reserveDataTransfer(RingStop src, RingStop dst,
                             Tick earliest);

  private:
    /** Segment reservation state of one physical ring. */
    struct DataRing
    {
        unsigned size = 0;
        /** nextFree[direction][segment]; segment i joins position i
         * and position (i+1) % size. Direction 0 = clockwise. */
        std::vector<Tick> nextFree[2];
        /** Reused per-direction evaluation buffers (reserved at
         * construction so reservation allocates nothing). */
        std::vector<Tick> scratch[2];
    };

    /** Reserve one leg; ORs segment-contention into @p waited. */
    Tick reserveLeg(const CmpTopology::DataLeg &leg, Tick earliest,
                    bool &waited);
    void scheduleDrain();
    void drain();
    void combineNow(BusRequest req, Tick enqueued);
    BusAgent *agentById(AgentId id);

    /** Fire-and-forget lambda event on the pooled one-shot path,
     * ordered on the global (combine) queue. */
    template <typename Fn>
    void
    atGlobal(Tick when, Fn &&fn)
    {
        EventQueue &q = router_ ? router_->globalQueue() : eventq();
        q.at(when, std::forward<Fn>(fn), "ring-oneshot");
    }

    /** Fire-and-forget delivery into @p agent's domain queue. */
    template <typename Fn>
    void
    atAgent(AgentId agent, Tick when, Fn &&fn)
    {
        EventQueue &q =
            router_ ? router_->queueForAgent(agent) : eventq();
        q.at(when, std::forward<Fn>(fn), "ring-oneshot");
    }

    struct PendingReq
    {
        BusRequest req;
        Tick enqueued;
    };

    RingParams params_;
    CmpTopology topo_;
    SnoopCollector collector_;
    FaultInjector *faults_ = nullptr;
    RetryMonitor *retryMonitor_ = nullptr;
    TraceRecorder *tracer_ = nullptr;
    ScheduleRouter *router_ = nullptr;
    Observer observer_;
    VersionOracle *conformance_ = nullptr;

    std::vector<BusAgent *> agents_;
    BusAgent *l3Agent_ = nullptr;
    BusAgent *memAgent_ = nullptr;
    CircularBuffer<PendingReq> reqQueue_;
    Tick nextLaunch_ = 0;
    std::uint64_t nextTxnId_ = 1;
    EventFunctionWrapper drainEvent_;

    /** One reservation state per physical ring (topology order:
     * local rings first, the global ring last under hier_ring). */
    std::vector<DataRing> dataRings_;

    /** Reused per-combine snoop-response buffer (combineNow is never
     * reentrant: it only runs from one-shot events). */
    std::vector<SnoopResponse> snoopScratch_;

    stats::Scalar requests_;
    stats::Scalar launches_;
    stats::Scalar dataTransfers_;
    stats::Scalar dataSegmentWaits_;
    stats::Scalar retryResponses_;
    stats::Average queueDelay_;
    stats::Histogram queueDepth_;
    /** Instantaneous address-queue occupancy (sampler probe). */
    stats::Formula pendingNow_;
};

} // namespace cmpcache

#endif // CMPCACHE_RING_RING_HH
