#include "trace/workloads_stress.hh"

#include "common/logging.hh"

namespace cmpcache
{
namespace workloads
{

WorkloadParams
uniformStress(std::uint64_t records_per_thread, std::uint64_t seed,
              std::uint64_t footprint_lines)
{
    WorkloadParams p;
    p.name = "uniform";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = footprint_lines;
    p.privateZipf = 0.0; // flat: every line equally likely
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.storeFrac = 0.3;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
streamingStress(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "streaming";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = 1; // effectively unused
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 1.0;
    p.streamLines = 1u << 22;
    p.storeFrac = 0.25;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
pingpongStress(std::uint64_t records_per_thread, std::uint64_t seed,
               std::uint64_t shared_lines)
{
    WorkloadParams p;
    p.name = "pingpong";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = 1;
    p.sharedLines = shared_lines;
    p.sharedFrac = 1.0;
    p.sharedZipf = 0.2;
    p.sharedStoreFrac = 0.5; // heavy cross-thread invalidation
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
thrashStress(std::uint64_t records_per_thread, std::uint64_t seed,
             std::uint64_t lines_per_thread)
{
    WorkloadParams p;
    p.name = "thrash";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // Default 5120 lines x 4 threads = 2.5 MB per 2 MB L2: constant
    // eviction of lines that come right back -- maximum write-back
    // redundancy once the L3 holds the set.
    p.privateLines = lines_per_thread;
    p.privateZipf = 0.1;
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.storeFrac = 0.1;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

const std::vector<std::string> &
stressNames()
{
    static const std::vector<std::string> names = {
        "uniform", "streaming", "pingpong", "thrash"};
    return names;
}

WorkloadParams
stressByName(const std::string &name,
             std::uint64_t records_per_thread, std::uint64_t seed)
{
    if (name == "uniform")
        return uniformStress(records_per_thread, seed);
    if (name == "streaming")
        return streamingStress(records_per_thread, seed);
    if (name == "pingpong")
        return pingpongStress(records_per_thread, seed);
    if (name == "thrash")
        return thrashStress(records_per_thread, seed);
    cmp_fatal("unknown stress pattern '", name,
              "' (expected uniform, streaming, pingpong or thrash)");
}

} // namespace workloads
} // namespace cmpcache
