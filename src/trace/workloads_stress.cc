#include "trace/workloads_stress.hh"

#include "common/logging.hh"

namespace cmpcache
{
namespace workloads
{

WorkloadParams
uniformStress(std::uint64_t records_per_thread, std::uint64_t seed,
              std::uint64_t footprint_lines)
{
    WorkloadParams p;
    p.name = "uniform";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = footprint_lines;
    p.privateZipf = 0.0; // flat: every line equally likely
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.storeFrac = 0.3;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
streamingStress(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "streaming";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = 1; // effectively unused
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 1.0;
    p.streamLines = 1u << 22;
    p.storeFrac = 0.25;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
pingpongStress(std::uint64_t records_per_thread, std::uint64_t seed,
               std::uint64_t shared_lines)
{
    WorkloadParams p;
    p.name = "pingpong";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    p.privateLines = 1;
    p.sharedLines = shared_lines;
    p.sharedFrac = 1.0;
    p.sharedZipf = 0.2;
    p.sharedStoreFrac = 0.5; // heavy cross-thread invalidation
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
thrashStress(std::uint64_t records_per_thread, std::uint64_t seed,
             std::uint64_t lines_per_thread)
{
    WorkloadParams p;
    p.name = "thrash";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // Default 5120 lines x 4 threads = 2.5 MB per 2 MB L2: constant
    // eviction of lines that come right back -- maximum write-back
    // redundancy once the L3 holds the set.
    p.privateLines = lines_per_thread;
    p.privateZipf = 0.1;
    p.sharedFrac = 0.0;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.storeFrac = 0.1;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
producerConsumerStress(std::uint64_t records_per_thread,
                       std::uint64_t seed,
                       std::uint64_t shared_lines)
{
    WorkloadParams p;
    p.name = "producer_consumer";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // All traffic in one modest shared region. The high (but not
    // total) store fraction keeps dirty owners handing lines to
    // readers: dirty interventions, Tagged suppliers and write backs
    // racing the consumers' demand refetches.
    p.privateLines = 1;
    p.sharedLines = shared_lines;
    p.sharedFrac = 1.0;
    p.sharedZipf = 0.4;
    p.sharedStoreFrac = 0.35;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
migratoryStress(std::uint64_t records_per_thread, std::uint64_t seed,
                std::uint64_t shared_lines)
{
    WorkloadParams p;
    p.name = "migratory";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // A tiny, almost write-only shared set: M ownership migrates from
    // thread to thread through back-to-back ReadExcl/Upgrade storms,
    // the pattern with the most supplier handoffs per line.
    p.privateLines = 1;
    p.sharedLines = shared_lines;
    p.sharedFrac = 1.0;
    p.sharedZipf = 0.3;
    p.sharedStoreFrac = 0.9;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.gapMean = 2.0;
    p.phaseLength = 0;
    return p;
}

WorkloadParams
falseSharingStress(std::uint64_t records_per_thread,
                   std::uint64_t seed, std::uint64_t shared_lines)
{
    WorkloadParams p;
    p.name = "false_sharing";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // A handful of lines hammered by every thread with a load/store
    // mix: maximum concurrent transactions per line per combine
    // window, the densest interleaving space for the collector.
    p.privateLines = 1;
    p.sharedLines = shared_lines;
    p.sharedFrac = 1.0;
    p.sharedZipf = 0.0; // flat: all lines contended equally
    p.sharedStoreFrac = 0.5;
    p.kernelFrac = 0.0;
    p.streamFrac = 0.0;
    p.gapMean = 1.0;
    p.phaseLength = 0;
    return p;
}

const std::vector<std::string> &
stressNames()
{
    static const std::vector<std::string> names = {
        "uniform",   "streaming",         "pingpong",
        "thrash",    "producer_consumer", "migratory",
        "false_sharing"};
    return names;
}

WorkloadParams
stressByName(const std::string &name,
             std::uint64_t records_per_thread, std::uint64_t seed)
{
    if (name == "uniform")
        return uniformStress(records_per_thread, seed);
    if (name == "streaming")
        return streamingStress(records_per_thread, seed);
    if (name == "pingpong")
        return pingpongStress(records_per_thread, seed);
    if (name == "thrash")
        return thrashStress(records_per_thread, seed);
    if (name == "producer_consumer")
        return producerConsumerStress(records_per_thread, seed);
    if (name == "migratory")
        return migratoryStress(records_per_thread, seed);
    if (name == "false_sharing")
        return falseSharingStress(records_per_thread, seed);
    cmp_fatal("unknown stress pattern '", name,
              "' (expected uniform, streaming, pingpong, thrash, "
              "producer_consumer, migratory or false_sharing)");
}

} // namespace workloads
} // namespace cmpcache
