/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * The paper evaluates on proprietary L2-traffic traces of four
 * commercial workloads. We cannot ship those, so cmpcache synthesizes
 * per-thread reference streams whose cache-level behaviour is shaped
 * on the axes the paper's mechanisms react to:
 *
 *  - reuse skew (Zipf exponent, hot-set size) -> write-back redundancy
 *    and WBHT hit rates;
 *  - working-set size relative to L2/L3 -> L3 hit rates and thrash;
 *  - sharing (a common region touched by all threads) -> interventions
 *    and snarf usefulness;
 *  - store fraction -> dirty/clean write-back mix;
 *  - compute gaps -> memory pressure (CPU utilization).
 *
 * Each hardware thread draws from its own deterministic RNG stream,
 * so a workload is fully reproducible from (params, seed).
 */

#ifndef CMPCACHE_TRACE_WORKLOAD_HH
#define CMPCACHE_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace cmpcache
{

/** Tunable knobs of the synthetic generator. */
struct WorkloadParams
{
    std::string name = "synthetic";

    unsigned numThreads = 16;
    std::uint64_t recordsPerThread = 100000;
    std::uint64_t seed = 1;
    unsigned lineSize = 128;

    /** Per-thread private hot region, in cache lines. */
    std::uint64_t privateLines = 4096;
    /** Zipf exponent of reuse within the private region. */
    double privateZipf = 0.8;
    /**
     * Threads per "private" region: 1 = truly thread-private; 4 =
     * the four threads of one L2 share a heap (e.g. one server
     * process per core pair, as in the Trade2 J2EE container).
     */
    unsigned privateGroupSize = 1;

    /** Globally shared hot region, in cache lines. */
    std::uint64_t sharedLines = 2048;
    /** Probability a reference targets the shared region. */
    double sharedFrac = 0.1;
    /** Zipf exponent within the shared region. */
    double sharedZipf = 0.6;

    /**
     * OS/kernel segment: shared, instruction-heavy, touched by every
     * thread. The paper notes its traces contain both application and
     * OS references.
     */
    std::uint64_t kernelLines = 1024;
    double kernelFrac = 0.05;

    /** Streaming region (cold misses), walked sequentially per
     * thread. */
    std::uint64_t streamLines = 1u << 20;
    double streamFrac = 0.05;

    /** Probability a data reference is a store. */
    double storeFrac = 0.25;

    /**
     * Store probability within the shared region; negative means
     * "same as storeFrac". Read-mostly shared data (indices, lock-
     * free lookup structures) keeps shared write backs clean.
     */
    double sharedStoreFrac = -1.0;

    /** Mean compute gap (cycles) between consecutive references. */
    double gapMean = 4.0;

    /**
     * Phase length in references; each phase re-seats a fraction of
     * the private hot set, creating medium-distance reuse (lines
     * evicted, then missed on again -- the WBHT's food).
     */
    std::uint64_t phaseLength = 0; // 0 = no phases
    double phaseShift = 0.25;      // fraction of hot set re-seated
};

/**
 * Generates the stream for one hardware thread. Stateless across
 * threads: all cross-thread structure comes from shared region bases.
 */
class WorkloadThreadSource : public TraceSource
{
  public:
    WorkloadThreadSource(const WorkloadParams &params, ThreadId tid);

    bool next(TraceRecord &rec) override;

  private:
    Addr lineToAddr(Addr region_base, std::uint64_t line) const;

    const WorkloadParams params_;
    const ThreadId tid_;
    Rng rng_;
    ZipfSampler privateSampler_;
    ZipfSampler sharedSampler_;
    ZipfSampler kernelSampler_;
    std::uint64_t produced_ = 0;
    std::uint64_t streamCursor_ = 0;
    std::uint64_t phaseBase_ = 0;
};

/**
 * A named synthetic workload: bundles parameters and builds per-thread
 * sources.
 */
class SyntheticWorkload
{
  public:
    explicit SyntheticWorkload(WorkloadParams params)
        : params_(std::move(params))
    {
    }

    const WorkloadParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }

    /** Build sources for all threads. */
    TraceBundle makeBundle() const;

    /** Materialize the whole workload as one interleaved vector
     * (round-robin across threads), e.g. for writing trace files. */
    std::vector<TraceRecord> materialize() const;

  private:
    WorkloadParams params_;
};

/** Region base addresses used by the generator (also used in tests). */
namespace region
{
constexpr Addr KernelBase = 0x0000'0000'0000ull;
constexpr Addr SharedBase = 0x0100'0000'0000ull;
constexpr Addr PrivateBase = 0x0200'0000'0000ull;
constexpr Addr StreamBase = 0x0400'0000'0000ull;
/** Address-space span reserved per thread in per-thread regions. */
constexpr Addr PerThreadSpan = 0x0000'4000'0000ull;
} // namespace region

} // namespace cmpcache

#endif // CMPCACHE_TRACE_WORKLOAD_HH
