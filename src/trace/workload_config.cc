#include "trace/workload_config.hh"

#include <functional>
#include <map>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

std::uint64_t
toU64(const std::string &key, const std::string &v)
{
    try {
        return std::stoull(v);
    } catch (...) {
        cmp_fatal("workload key '", key, "' expects an integer, "
                  "got '", v, "'");
    }
}

double
toDouble(const std::string &key, const std::string &v)
{
    try {
        return std::stod(v);
    } catch (...) {
        cmp_fatal("workload key '", key, "' expects a number, got '",
                  v, "'");
    }
}

using Setter = std::function<void(WorkloadParams &, const std::string &,
                                  const std::string &)>;

#define WL_U64(field)                                                   \
    [](WorkloadParams &p, const std::string &k,                         \
       const std::string &v) {                                          \
        p.field = static_cast<decltype(p.field)>(toU64(k, v));          \
    }

#define WL_DBL(field)                                                   \
    [](WorkloadParams &p, const std::string &k,                         \
       const std::string &v) { p.field = toDouble(k, v); }

const std::map<std::string, Setter> &
setters()
{
    static const std::map<std::string, Setter> s = {
        {"wl.name",
         [](WorkloadParams &p, const std::string &,
            const std::string &v) { p.name = v; }},
        {"wl.threads", WL_U64(numThreads)},
        {"wl.refs", WL_U64(recordsPerThread)},
        {"wl.seed", WL_U64(seed)},
        {"wl.line_size", WL_U64(lineSize)},
        {"wl.private_lines", WL_U64(privateLines)},
        {"wl.private_zipf", WL_DBL(privateZipf)},
        {"wl.private_group_size", WL_U64(privateGroupSize)},
        {"wl.shared_lines", WL_U64(sharedLines)},
        {"wl.shared_frac", WL_DBL(sharedFrac)},
        {"wl.shared_zipf", WL_DBL(sharedZipf)},
        {"wl.shared_store_frac", WL_DBL(sharedStoreFrac)},
        {"wl.kernel_lines", WL_U64(kernelLines)},
        {"wl.kernel_frac", WL_DBL(kernelFrac)},
        {"wl.stream_lines", WL_U64(streamLines)},
        {"wl.stream_frac", WL_DBL(streamFrac)},
        {"wl.store_frac", WL_DBL(storeFrac)},
        {"wl.gap_mean", WL_DBL(gapMean)},
        {"wl.phase_length", WL_U64(phaseLength)},
        {"wl.phase_shift", WL_DBL(phaseShift)},
    };
    return s;
}

#undef WL_U64
#undef WL_DBL

} // namespace

bool
isWorkloadKey(const std::string &key)
{
    return key.rfind("wl.", 0) == 0;
}

void
applyWorkloadOption(WorkloadParams &params, const std::string &key,
                    const std::string &value)
{
    const auto it = setters().find(key);
    if (it == setters().end())
        cmp_fatal("unknown workload key '", key, "'");
    it->second(params, key, value);
}

const std::vector<std::string> &
workloadConfigKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> k;
        for (const auto &[key, setter] : setters())
            k.push_back(key);
        return k;
    }();
    return keys;
}

} // namespace cmpcache
