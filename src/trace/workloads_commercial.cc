#include "trace/workloads_commercial.hh"

#include "common/logging.hh"

namespace cmpcache
{
namespace workloads
{

// Sizing reference for the default (paper Table 3) hierarchy with
// 128 B lines: one L2 = 2 MB = 16 K lines shared by 4 threads;
// all L2s = 8 MB = 64 K lines; L3 = 16 MB = 128 K lines.

WorkloadParams
tp(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "TP";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // Large footprint: 16 threads x 16 K lines = 32 MB of private
    // data, twice the L3 -> low L3 hit rate (paper: 32.4%).
    p.privateLines = 28672;
    p.privateZipf = 0.45;
    // Heavy sharing: database locks/indices -> many interventions.
    p.sharedLines = 16384;
    p.sharedFrac = 0.32;
    p.sharedZipf = 0.3;
    p.kernelFrac = 0.06;
    p.streamLines = 1u << 20;
    p.streamFrac = 0.10;
    p.storeFrac = 0.45;
    p.sharedStoreFrac = 0.05;
    // Memory-bound at high outstanding-load counts: tight gaps.
    p.gapMean = 2.0;
    p.phaseLength = 30000;
    p.phaseShift = 0.2;
    return p;
}

WorkloadParams
cpw2(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "CPW2";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // ~20 MB total private footprint: a bit over the L3 -> ~50% L3
    // load hit rate.
    p.privateLines = 16384;
    p.privateZipf = 0.75;
    p.sharedLines = 12288;
    p.sharedFrac = 0.30;
    p.sharedZipf = 0.3;
    p.kernelFrac = 0.05;
    p.streamLines = 1u << 19;
    p.streamFrac = 0.03;
    p.storeFrac = 0.18;
    p.sharedStoreFrac = 0.06;
    // Tuned for ~70% CPU utilization: moderate gaps.
    p.gapMean = 10.0;
    p.phaseLength = 25000;
    p.phaseShift = 0.25;
    return p;
}

WorkloadParams
notesbench(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "NotesBench";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // ~16 MB footprint roughly matching the L3 -> ~70% L3 hit rate.
    p.privateLines = 9216;
    p.privateZipf = 0.9;
    p.sharedLines = 1024;
    p.sharedFrac = 0.08;
    p.sharedZipf = 0.6;
    p.kernelFrac = 0.08;
    p.streamLines = 1u << 18;
    p.streamFrac = 0.03;
    p.storeFrac = 0.15;
    // E-mail serving is compute/IO bound: long gaps, so the memory
    // system is nearly idle (the paper's WBHT switch never trips).
    p.gapMean = 40.0;
    p.phaseLength = 40000;
    p.phaseShift = 0.2;
    return p;
}

WorkloadParams
trade2(std::uint64_t records_per_thread, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "Trade2";
    p.recordsPerThread = records_per_thread;
    p.seed = seed;
    // Hot set ~1.5x the per-thread L2 share: constant L2 thrash with
    // almost everything landing in the L3 -> extreme write-back
    // redundancy (79%) and re-reference counts (>300x per line).
    // One J2EE server instance per core pair: the four threads of an
    // L2 share one heap. The per-L2 cycling set (28 K lines) thrashes
    // the 16 K-line L2 but fits both the L3 and a 32 K-entry WBHT --
    // the regime behind Trade2's extreme write-back redundancy and
    // its strong WBHT sensitivity (Figures 2 and 4).
    p.privateLines = 24576;
    p.privateZipf = 0.3;
    p.privateGroupSize = 4;
    p.sharedLines = 3072;
    p.sharedFrac = 0.08;
    p.sharedZipf = 0.5;
    p.kernelFrac = 0.05;
    p.streamLines = 1u << 18;
    p.streamFrac = 0.04;
    p.storeFrac = 0.18;
    p.gapMean = 1.0;
    p.phaseLength = 20000;
    p.phaseShift = 0.3;
    return p;
}

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = {
        "CPW2", "NotesBench", "TP", "Trade2"};
    return names;
}

WorkloadParams
byName(const std::string &name, std::uint64_t records_per_thread,
       std::uint64_t seed)
{
    if (name == "TP")
        return tp(records_per_thread, seed);
    if (name == "CPW2")
        return cpw2(records_per_thread, seed);
    if (name == "NotesBench")
        return notesbench(records_per_thread, seed);
    if (name == "Trade2")
        return trade2(records_per_thread, seed);
    cmp_fatal("unknown workload '", name,
              "' (expected TP, CPW2, NotesBench or Trade2)");
}

} // namespace workloads
} // namespace cmpcache
