/**
 * @file
 * Synthetic stand-ins for the paper's four commercial workloads.
 *
 * The parameters below are calibrated against the behavioural targets
 * the paper itself reports (its Tables 1, 2 and 4):
 *
 *  workload    | clean-WB already in L3 | L3 load hit | pressure
 *  ------------+------------------------+-------------+----------------
 *  TP          | 42.1%                  | 32.4%       | very high (92%+
 *              |                        |             | CPU util, many
 *              |                        |             | retries)
 *  CPW2        | 60.0%                  | 50.5%       | moderate (70%)
 *  NotesBench  | 59.1%                  | 70.5%       | very low
 *  Trade2      | 79.1%                  | 79.0%       | high WB volume,
 *              |                        |             | extreme re-reuse
 *              |                        |             | (>300x per line)
 *
 * See DESIGN.md section 4 for the substitution rationale.
 */

#ifndef CMPCACHE_TRACE_WORKLOADS_COMMERCIAL_HH
#define CMPCACHE_TRACE_WORKLOADS_COMMERCIAL_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace cmpcache
{
namespace workloads
{

/** Online transaction processing, TPC-C-like (paper's "TP"). */
WorkloadParams tp(std::uint64_t records_per_thread, std::uint64_t seed);

/** Commercial Processing Workload 2 (OLTP at ~70% CPU util). */
WorkloadParams cpw2(std::uint64_t records_per_thread,
                    std::uint64_t seed);

/** Lotus NotesBench e-mail serving (low memory pressure). */
WorkloadParams notesbench(std::uint64_t records_per_thread,
                          std::uint64_t seed);

/** Trade2 J2EE online-brokerage web application. */
WorkloadParams trade2(std::uint64_t records_per_thread,
                      std::uint64_t seed);

/** Names of all four workloads, in the paper's presentation order. */
const std::vector<std::string> &allNames();

/** Look up a workload by name; fatal() if unknown. */
WorkloadParams byName(const std::string &name,
                      std::uint64_t records_per_thread,
                      std::uint64_t seed);

} // namespace workloads
} // namespace cmpcache

#endif // CMPCACHE_TRACE_WORKLOADS_COMMERCIAL_HH
