/**
 * @file
 * Textual configuration for WorkloadParams ("wl.key = value" lines /
 * overrides), so custom synthetic workloads can live in the same
 * experiment files as the machine configuration.
 */

#ifndef CMPCACHE_TRACE_WORKLOAD_CONFIG_HH
#define CMPCACHE_TRACE_WORKLOAD_CONFIG_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace cmpcache
{

/** Is @p key a workload key (has the "wl." prefix)? */
bool isWorkloadKey(const std::string &key);

/** Apply one "wl.xxx", "value" pair; fatal() on unknown keys. */
void applyWorkloadOption(WorkloadParams &params, const std::string &key,
                         const std::string &value);

/** All recognized workload keys. */
const std::vector<std::string> &workloadConfigKeys();

} // namespace cmpcache

#endif // CMPCACHE_TRACE_WORKLOAD_CONFIG_HH
