/**
 * @file
 * Trace file readers and writers.
 *
 * Two on-disk formats are supported:
 *  - text:   one record per line, "tid op hex-addr gap", '#' comments
 *  - binary: "CMPT" magic + version + packed little-endian records
 *
 * Files store records interleaved across threads; splitByThread()
 * turns a loaded vector into per-thread sources.
 */

#ifndef CMPCACHE_TRACE_TRACE_IO_HH
#define CMPCACHE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace cmpcache
{

/** On-disk trace encodings. */
enum class TraceFormat
{
    Text,
    Binary,
};

/** Write @p records to @p os in the given format. */
void writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
                TraceFormat fmt);

/** Write records to @p path; fatal() on I/O failure. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records,
                    TraceFormat fmt);

/**
 * Read a trace from @p is. The format is auto-detected from the
 * leading bytes. Malformed input triggers fatal().
 */
std::vector<TraceRecord> readTrace(std::istream &is);

/** Read a trace from @p path; fatal() on I/O failure. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

} // namespace cmpcache

#endif // CMPCACHE_TRACE_TRACE_IO_HH
