/**
 * @file
 * Trace file readers and writers, batch and streaming.
 *
 * Two interchange formats are supported (docs/serving.md):
 *  - text:   one record per line, "tid op hex-addr gap", '#' comments
 *  - binary: "CMPT" magic + version + record count + packed
 *            little-endian records; a count of kStreamingRecordCount
 *            marks an open-ended stream that ends at EOF
 *
 * Files store records interleaved across threads; splitByThread()
 * turns a loaded vector into per-thread sources, StreamDemux
 * (trace_source.hh) does the same online.
 *
 * Readers treat the input as hostile: header counts are checked
 * against the bytes actually present, every decoded field is
 * validated (including a leading '-' on numeric tokens, which
 * unsigned extraction would silently wrap), and malformed input
 * surfaces as a structured SimError (kind Trace or Io) instead of a
 * crash or process exit -- a sweep cell fed a bad trace fails alone
 * (see docs/robustness.md).
 *
 * TraceStreamParser is the one decode path: it never seeks, so it
 * works on pipes, FIFOs and sockets as well as regular files; the
 * batch readTrace() is a loop over it.
 */

#ifndef CMPCACHE_TRACE_TRACE_IO_HH
#define CMPCACHE_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/trace.hh"

namespace cmpcache
{

/** On-disk trace encodings. */
enum class TraceFormat
{
    Text,
    Binary,
};

/**
 * Binary-header record count of an open-ended stream: the body ends
 * at EOF (which must fall on a record boundary) instead of after a
 * declared number of records. Used by live generators that cannot
 * know the length up front.
 */
constexpr std::uint64_t kStreamingRecordCount = ~0ull;

/** Write @p records to @p os in the given format. */
void writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
                TraceFormat fmt);

/** Write records to @p path; SimError (Io) on I/O failure. */
Expected<void> writeTraceFile(const std::string &path,
                              const std::vector<TraceRecord> &records,
                              TraceFormat fmt);

/**
 * Wire framing for live producers: write a binary trace header whose
 * count declares an open-ended stream (kStreamingRecordCount), then
 * append records one at a time. A consumer parses the result
 * incrementally with TraceStreamParser; closing the stream at a
 * record boundary is a clean end-of-trace.
 */
void writeStreamingTraceHeader(std::ostream &os);
void appendTraceRecord(std::ostream &os, const TraceRecord &r);

/**
 * Incremental trace decoder over any istream, seekable or not.
 *
 * The format is sniffed from the first four bytes; when they are not
 * the binary magic they are replayed into the text parser instead of
 * rewinding the stream, so pipes and FIFOs parse exactly like files.
 * A stream already in a failed state is a structured error, never an
 * empty-trace success.
 *
 *     TraceStreamParser p(is);
 *     TraceRecord r;
 *     while (p.next(r) == TraceStreamParser::Status::Record)
 *         consume(r);
 *     if (p.failed())
 *         report(p.error());
 */
class TraceStreamParser
{
  public:
    enum class Status
    {
        Record, ///< @p rec holds the next record
        Eof,    ///< clean end of trace (rec untouched)
        Error,  ///< malformed input; see error() (rec untouched)
    };

    explicit TraceStreamParser(std::istream &is) : is_(is) {}

    /** Decode the next record. Error and Eof are sticky. */
    Status next(TraceRecord &rec);

    bool failed() const { return failed_; }
    /** The failure; valid only after Status::Error. */
    const SimError &error() const { return err_; }

    /** Records decoded so far. */
    std::uint64_t recordsRead() const { return recordsRead_; }

  private:
    enum class Mode
    {
        Unsniffed,
        Text,
        Binary,
    };

    Status sniff();
    Status fail(SimError e);
    bool nextLine(std::string &line);
    Status nextText(TraceRecord &rec);
    Status nextBinary(TraceRecord &rec);

    std::istream &is_;
    Mode mode_ = Mode::Unsniffed;
    /** Sniffed bytes awaiting replay into the text parser. */
    std::string carry_;
    std::size_t lineno_ = 0;
    /** Binary mode: declared record count (or the streaming
     * sentinel) and the index of the next record. */
    std::uint64_t binCount_ = 0;
    std::uint64_t binIndex_ = 0;
    std::uint64_t recordsRead_ = 0;
    bool done_ = false;
    bool failed_ = false;
    SimError err_;
};

/**
 * Read a whole trace from @p is. The format is auto-detected from the
 * leading bytes without seeking, so non-seekable streams (pipes,
 * FIFOs) are fully supported. Malformed input yields a SimError
 * naming the offending record or line.
 */
Expected<std::vector<TraceRecord>> readTrace(std::istream &is);

/** Read a trace from @p path; SimError (Io) if unreadable. */
Expected<std::vector<TraceRecord>> readTraceFile(
    const std::string &path);

} // namespace cmpcache

#endif // CMPCACHE_TRACE_TRACE_IO_HH
