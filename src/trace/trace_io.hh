/**
 * @file
 * Trace file readers and writers.
 *
 * Two on-disk formats are supported:
 *  - text:   one record per line, "tid op hex-addr gap", '#' comments
 *  - binary: "CMPT" magic + version + packed little-endian records
 *
 * Files store records interleaved across threads; splitByThread()
 * turns a loaded vector into per-thread sources.
 *
 * Readers treat the input as hostile: header counts are checked
 * against the bytes actually present, every decoded field is
 * validated, and malformed input surfaces as a structured
 * SimError (kind Trace or Io) instead of a crash or process exit --
 * a sweep cell fed a bad trace fails alone (see docs/robustness.md).
 */

#ifndef CMPCACHE_TRACE_TRACE_IO_HH
#define CMPCACHE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/trace.hh"

namespace cmpcache
{

/** On-disk trace encodings. */
enum class TraceFormat
{
    Text,
    Binary,
};

/** Write @p records to @p os in the given format. */
void writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
                TraceFormat fmt);

/** Write records to @p path; SimError (Io) on I/O failure. */
Expected<void> writeTraceFile(const std::string &path,
                              const std::vector<TraceRecord> &records,
                              TraceFormat fmt);

/**
 * Read a trace from @p is. The format is auto-detected from the
 * leading bytes. Malformed input yields a SimError naming the
 * offending record or line.
 */
Expected<std::vector<TraceRecord>> readTrace(std::istream &is);

/** Read a trace from @p path; SimError (Io) if unreadable. */
Expected<std::vector<TraceRecord>> readTraceFile(
    const std::string &path);

} // namespace cmpcache

#endif // CMPCACHE_TRACE_TRACE_IO_HH
