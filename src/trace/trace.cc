#include "trace/trace.hh"

#include "common/logging.hh"

namespace cmpcache
{

const char *
toString(MemOp op)
{
    switch (op) {
      case MemOp::Load:
        return "L";
      case MemOp::Store:
        return "S";
      case MemOp::IFetch:
        return "I";
    }
    return "?";
}

TraceBundle
splitByThread(const std::vector<TraceRecord> &records,
              unsigned num_threads)
{
    cmp_assert(num_threads > 0, "need at least one thread");
    std::vector<std::vector<TraceRecord>> buckets(num_threads);
    for (const auto &r : records) {
        cmp_assert(r.tid < num_threads, "record tid ", r.tid,
                   " out of range for ", num_threads, " threads");
        buckets[r.tid].push_back(r);
    }
    TraceBundle bundle;
    bundle.perThread.reserve(num_threads);
    for (auto &b : buckets)
        bundle.perThread.push_back(
            std::make_unique<VectorSource>(std::move(b)));
    return bundle;
}

} // namespace cmpcache
