/**
 * @file
 * Streaming trace ingestion: bounded-buffer sources, arrival models,
 * and the reader-thread pipeline behind `cmpcache serve`.
 *
 * The batch path materializes a whole trace and splits it per thread
 * (splitByThread). The streaming path keeps memory bounded instead:
 * a reader thread decodes records incrementally (TraceStreamParser)
 * into a BoundedRecordQueue, and a StreamDemux splits the interleaved
 * stream into per-thread TraceSources on the consumer side, buffering
 * at most a configured skew window. See docs/serving.md for the wire
 * format, the backpressure contract and the bounded-memory guarantee.
 *
 * Arrival models (docs/serving.md):
 *  - closed-loop: a record's gap is think time relative to the
 *    previous *completion* on that thread (the classic batch-replay
 *    behavior; stalls push all later work back).
 *  - open-loop: gaps are interarrival times on an absolute clock
 *    stamped by the generator; a stalled CPU falls behind and then
 *    catches up in a burst, like a server draining a request queue.
 *    ArrivalStamper re-stamps any source with Poisson (geometric in
 *    whole ticks) interarrivals, optionally burst-modulated.
 */

#ifndef CMPCACHE_TRACE_TRACE_SOURCE_HH
#define CMPCACHE_TRACE_TRACE_SOURCE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/random.hh"
#include "trace/trace.hh"

namespace cmpcache
{

/** How record gaps are interpreted by the issuing CPU. */
enum class ArrivalModel : std::uint8_t
{
    Closed, ///< gap = think time after the previous issue (default)
    Open,   ///< gap = interarrival time on an absolute clock
};

const char *toString(ArrivalModel m);

/** Arrival-model selection plus open-loop generator parameters. */
struct ArrivalConfig
{
    ArrivalModel model = ArrivalModel::Closed;
    /**
     * Open loop: mean arrivals per tick per thread (> 0). The mean
     * interarrival gap is 1/rate ticks, sampled geometrically.
     */
    double rate = 0.0;
    /**
     * Burst modulation: when burstPeriod > 0, the first half of every
     * burstPeriod-tick window runs burstFactor times faster than the
     * configured rate (the second half runs at the plain rate).
     */
    double burstFactor = 1.0;
    std::uint64_t burstPeriod = 0;
    /** Seed for the per-thread interarrival samplers. */
    std::uint64_t seed = 1;
};

/**
 * Parse a CLI arrival spec: "closed" or "open:<rate>".
 * SimError (Config) names the offending spec on failure.
 */
Expected<ArrivalConfig> parseArrivalSpec(const std::string &spec);

/**
 * Decorator that re-stamps a source's gaps with sampled open-loop
 * interarrival times. Deterministic: the sample sequence depends only
 * on (seed, tid). Used when the trace's own gaps encode closed-loop
 * think time but the run wants generator-driven open-loop load.
 */
class ArrivalStamper : public TraceSource
{
  public:
    ArrivalStamper(std::unique_ptr<TraceSource> inner,
                   const ArrivalConfig &cfg, ThreadId tid);

    bool next(TraceRecord &rec) override;

  private:
    std::unique_ptr<TraceSource> inner_;
    ArrivalConfig cfg_;
    Rng rng_;
    double meanGap_;
    /** Cumulative stamped arrival time, drives burst phasing. */
    std::uint64_t clock_ = 0;
};

/** What a producer does when the ingest queue is full. */
enum class OverflowPolicy : std::uint8_t
{
    Block, ///< backpressure: push blocks until space (lossless)
    Drop,  ///< load shedding: record is discarded and counted
};

/**
 * Bounded MPSC record queue between the reader thread and the sim.
 * All counters are monotonically increasing and safe to read from any
 * thread without the lock (obs gauges sample them live).
 */
class BoundedRecordQueue
{
  public:
    explicit BoundedRecordQueue(std::size_t capacity,
                                OverflowPolicy policy);

    /**
     * Enqueue @p rec. Block policy: waits for space (false only after
     * abort()). Drop policy: returns true immediately, counting the
     * record as dropped when the queue was full.
     */
    bool push(const TraceRecord &rec);

    /**
     * Dequeue into @p rec, waiting for a record.
     * @return false when the queue is closed (or aborted) and empty.
     */
    bool pop(TraceRecord &rec);

    /** Producer is done: consumers drain the rest, then pop() = false. */
    void close();

    /**
     * Producer failed: close the queue carrying @p e so consumers
     * can surface it (error() after pop() returns false).
     */
    void fail(SimError e);

    /** Tear down: unblock everyone, drop queued records. */
    void abort();

    bool failed() const;
    /** The producer's failure; valid only once failed(). */
    SimError error() const;

    std::size_t capacity() const { return capacity_; }
    std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }
    std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
    std::uint64_t popped() const { return popped_.load(std::memory_order_relaxed); }
    std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
    /** Cumulative ticks producers spent blocked on a full queue. */
    std::uint64_t blockedWaits() const { return blockedWaits_.load(std::memory_order_relaxed); }

  private:
    const std::size_t capacity_;
    const OverflowPolicy policy_;
    mutable std::mutex mtx_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<TraceRecord> q_;
    bool closed_ = false;
    bool aborted_ = false;
    bool failed_ = false;
    SimError err_;
    std::atomic<std::size_t> depth_{0};
    std::atomic<std::uint64_t> pushed_{0};
    std::atomic<std::uint64_t> popped_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> blockedWaits_{0};
};

/**
 * Consumer-side splitter: pulls the interleaved stream off a
 * BoundedRecordQueue and hands each CPU its own thread's
 * subsequence. Records for other threads encountered while looking
 * for ours are buffered, up to a total skew cap -- a stream whose
 * threads are interleaved more unevenly than the cap fails with a
 * structured error instead of growing without bound, which is what
 * keeps the streaming path's memory bounded end to end.
 *
 * Thread safe: in parallel runs (run.threads > 0) the per-CPU
 * sources pull from scheduler worker threads. Per-thread
 * subsequences are preserved regardless of pull order, so streamed
 * results are byte-identical to the batch path.
 */
class StreamDemux
{
  public:
    StreamDemux(BoundedRecordQueue &q, unsigned numThreads,
                std::size_t skewCap);

    /**
     * Next record for @p tid; false at end of stream. Throws
     * SimException (Trace) on skew-cap overflow, an out-of-range tid
     * in the stream, or a propagated producer error.
     */
    bool pull(ThreadId tid, TraceRecord &rec);

    std::size_t buffered() const { return buffered_.load(std::memory_order_relaxed); }

  private:
    BoundedRecordQueue &q_;
    const std::size_t skewCap_;
    std::mutex mtx_;
    std::vector<std::deque<TraceRecord>> perThread_;
    bool eof_ = false;
    bool failed_ = false;
    SimError err_;
    std::atomic<std::size_t> buffered_{0};
};

/** TraceSource view of one thread's slice of a StreamDemux. */
class DemuxSource : public TraceSource
{
  public:
    DemuxSource(StreamDemux &demux, ThreadId tid)
        : demux_(demux), tid_(tid)
    {
    }

    bool next(TraceRecord &rec) override { return demux_.pull(tid_, rec); }

  private:
    StreamDemux &demux_;
    ThreadId tid_;
};

/** Knobs for the reader-thread pipeline (stream.* config keys). */
struct StreamParams
{
    std::size_t queueCapacity = 4096;
    OverflowPolicy overflow = OverflowPolicy::Block;
    /** Total records the demux may buffer across threads. */
    std::size_t demuxCapacity = 1u << 16;
};

/**
 * The streaming ingestion pipeline: owns the input stream, the
 * reader thread that decodes it, the bounded queue, and the demux.
 * Construction starts the reader; destruction aborts the queue and
 * joins. makeBundle() yields the per-thread sources a CmpSystem
 * consumes -- resident memory is bounded by
 * queueCapacity + demuxCapacity records no matter how long the
 * stream is.
 */
class StreamIngest
{
  public:
    StreamIngest(std::unique_ptr<std::istream> in,
                 const StreamParams &params, unsigned numThreads);
    ~StreamIngest();

    StreamIngest(const StreamIngest &) = delete;
    StreamIngest &operator=(const StreamIngest &) = delete;

    /** Per-thread DemuxSources; call at most once. */
    TraceBundle makeBundle();

    /** Unblock and join the reader thread (idempotent). */
    void stop();

    /// @name Live gauges (safe from any thread; sampled by obs).
    /// @{
    std::size_t queueDepth() const { return q_.depth(); }
    std::uint64_t recordsIngested() const { return q_.pushed(); }
    std::uint64_t recordsDropped() const { return q_.dropped(); }
    std::uint64_t producerBlockedWaits() const { return q_.blockedWaits(); }
    std::size_t demuxBuffered() const { return demux_.buffered(); }
    /// @}

  private:
    void readerMain();

    std::unique_ptr<std::istream> in_;
    BoundedRecordQueue q_;
    StreamDemux demux_;
    unsigned numThreads_;
    bool bundleMade_ = false;
    bool stopped_ = false;
    std::thread reader_;
};

} // namespace cmpcache

#endif // CMPCACHE_TRACE_TRACE_SOURCE_HH
