#include "trace/trace_source.hh"

#include <istream>
#include <limits>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace cmpcache
{

const char *
toString(ArrivalModel m)
{
    switch (m) {
      case ArrivalModel::Closed:
        return "closed";
      case ArrivalModel::Open:
        return "open";
    }
    return "?";
}

Expected<ArrivalConfig>
parseArrivalSpec(const std::string &spec)
{
    ArrivalConfig cfg;
    if (spec == "closed")
        return cfg;
    const std::string prefix = "open:";
    if (spec.rfind(prefix, 0) == 0) {
        const std::string rate_s = spec.substr(prefix.size());
        double rate = 0.0;
        std::size_t used = 0;
        try {
            rate = std::stod(rate_s, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != rate_s.size() || rate_s.empty() || rate <= 0.0) {
            return SimError(SimErrorKind::Config,
                            cstr("bad arrival rate '", rate_s,
                                 "' (want a positive arrivals-per-tick "
                                 "value, e.g. open:0.05)"));
        }
        cfg.model = ArrivalModel::Open;
        cfg.rate = rate;
        return cfg;
    }
    return SimError(SimErrorKind::Config,
                    cstr("bad arrival spec '", spec,
                         "' (want 'closed' or 'open:<rate>')"));
}

ArrivalStamper::ArrivalStamper(std::unique_ptr<TraceSource> inner,
                               const ArrivalConfig &cfg, ThreadId tid)
    : inner_(std::move(inner)), cfg_(cfg),
      rng_(cfg.seed
           + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(tid) + 1)),
      meanGap_(cfg.rate > 0.0 ? 1.0 / cfg.rate : 0.0)
{
}

bool
ArrivalStamper::next(TraceRecord &rec)
{
    if (!inner_->next(rec))
        return false;
    double mean = meanGap_;
    if (cfg_.burstPeriod > 0 && cfg_.burstFactor > 1.0
        && (clock_ % cfg_.burstPeriod) < cfg_.burstPeriod / 2) {
        mean = meanGap_ / cfg_.burstFactor;
    }
    std::uint64_t gap = rng_.geometric(mean);
    constexpr std::uint64_t maxGap =
        std::numeric_limits<std::uint32_t>::max();
    if (gap > maxGap)
        gap = maxGap;
    rec.gap = static_cast<std::uint32_t>(gap);
    clock_ += gap;
    return true;
}

BoundedRecordQueue::BoundedRecordQueue(std::size_t capacity,
                                       OverflowPolicy policy)
    : capacity_(capacity ? capacity : 1), policy_(policy)
{
}

bool
BoundedRecordQueue::push(const TraceRecord &rec)
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (policy_ == OverflowPolicy::Drop) {
        if (aborted_)
            return false;
        if (q_.size() >= capacity_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    } else {
        if (q_.size() >= capacity_ && !aborted_) {
            blockedWaits_.fetch_add(1, std::memory_order_relaxed);
            notFull_.wait(lk, [&] {
                return q_.size() < capacity_ || aborted_;
            });
        }
        if (aborted_)
            return false;
    }
    q_.push_back(rec);
    depth_.store(q_.size(), std::memory_order_relaxed);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    notEmpty_.notify_one();
    return true;
}

bool
BoundedRecordQueue::pop(TraceRecord &rec)
{
    std::unique_lock<std::mutex> lk(mtx_);
    notEmpty_.wait(lk, [&] {
        return !q_.empty() || closed_ || aborted_;
    });
    if (aborted_ || q_.empty())
        return false;
    rec = q_.front();
    q_.pop_front();
    depth_.store(q_.size(), std::memory_order_relaxed);
    popped_.fetch_add(1, std::memory_order_relaxed);
    notFull_.notify_one();
    return true;
}

void
BoundedRecordQueue::close()
{
    std::lock_guard<std::mutex> lk(mtx_);
    closed_ = true;
    notEmpty_.notify_all();
}

void
BoundedRecordQueue::fail(SimError e)
{
    std::lock_guard<std::mutex> lk(mtx_);
    err_ = std::move(e);
    failed_ = true;
    closed_ = true;
    notEmpty_.notify_all();
}

void
BoundedRecordQueue::abort()
{
    std::lock_guard<std::mutex> lk(mtx_);
    aborted_ = true;
    q_.clear();
    depth_.store(0, std::memory_order_relaxed);
    notFull_.notify_all();
    notEmpty_.notify_all();
}

bool
BoundedRecordQueue::failed() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return failed_;
}

SimError
BoundedRecordQueue::error() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return err_;
}

StreamDemux::StreamDemux(BoundedRecordQueue &q, unsigned numThreads,
                         std::size_t skewCap)
    : q_(q), skewCap_(skewCap ? skewCap : 1), perThread_(numThreads)
{
}

bool
StreamDemux::pull(ThreadId tid, TraceRecord &rec)
{
    std::unique_lock<std::mutex> lk(mtx_);
    auto &mine = perThread_.at(tid);
    for (;;) {
        if (!mine.empty()) {
            rec = mine.front();
            mine.pop_front();
            buffered_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
        if (failed_)
            throw SimException(err_);
        if (eof_)
            return false;
        // Pull the next interleaved record. Holding our lock across
        // the (possibly blocking) pop is safe: the producer only
        // touches the queue, never this mutex.
        TraceRecord r;
        if (!q_.pop(r)) {
            eof_ = true;
            if (q_.failed()) {
                failed_ = true;
                err_ = q_.error();
            }
            continue;
        }
        if (r.tid >= perThread_.size()) {
            failed_ = true;
            err_ = SimError(
                SimErrorKind::Trace,
                cstr("stream record names thread ", r.tid,
                     " but the system has ", perThread_.size(),
                     " threads"));
            throw SimException(err_);
        }
        if (r.tid == tid) {
            rec = r;
            return true;
        }
        if (buffered_.load(std::memory_order_relaxed) >= skewCap_) {
            failed_ = true;
            err_ = SimError(
                SimErrorKind::Trace,
                cstr("stream demux skew cap (", skewCap_,
                     " records) exceeded waiting for thread ", tid,
                     "; the stream's threads are interleaved too "
                     "unevenly (raise stream.demux_capacity)"));
            throw SimException(err_);
        }
        perThread_[r.tid].push_back(r);
        buffered_.fetch_add(1, std::memory_order_relaxed);
    }
}

StreamIngest::StreamIngest(std::unique_ptr<std::istream> in,
                           const StreamParams &params,
                           unsigned numThreads)
    : in_(std::move(in)), q_(params.queueCapacity, params.overflow),
      demux_(q_, numThreads, params.demuxCapacity),
      numThreads_(numThreads)
{
    reader_ = std::thread(&StreamIngest::readerMain, this);
}

StreamIngest::~StreamIngest()
{
    stop();
}

void
StreamIngest::readerMain()
{
    TraceStreamParser parser(*in_);
    TraceRecord rec;
    for (;;) {
        switch (parser.next(rec)) {
          case TraceStreamParser::Status::Record:
            if (!q_.push(rec))
                return; // aborted: the sim is tearing down
            break;
          case TraceStreamParser::Status::Eof:
            q_.close();
            return;
          case TraceStreamParser::Status::Error:
            q_.fail(parser.error());
            return;
        }
    }
}

TraceBundle
StreamIngest::makeBundle()
{
    TraceBundle bundle;
    bundleMade_ = true;
    for (unsigned t = 0; t < numThreads_; ++t) {
        bundle.perThread.push_back(std::make_unique<DemuxSource>(
            demux_, static_cast<ThreadId>(t)));
    }
    return bundle;
}

void
StreamIngest::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    q_.abort();
    if (reader_.joinable())
        reader_.join();
}

} // namespace cmpcache
