/**
 * @file
 * Memory-reference trace abstractions.
 *
 * The paper drives its simulator with L2-traffic traces captured on
 * real SMP hardware (i.e. streams of L1 miss references, per hardware
 * thread). cmpcache uses the same model: a TraceSource yields
 * TraceRecords for one hardware thread; the TraceCpu issues them into
 * the cache hierarchy subject to the outstanding-miss limit.
 */

#ifndef CMPCACHE_TRACE_TRACE_HH
#define CMPCACHE_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace cmpcache
{

/** Kind of memory reference. */
enum class MemOp : std::uint8_t
{
    Load = 0,
    Store = 1,
    IFetch = 2,
};

const char *toString(MemOp op);

/** One L2-traffic reference from one hardware thread. */
struct TraceRecord
{
    /** Physical address of the access (byte granularity). */
    Addr addr = 0;
    /**
     * Core cycles of compute between the previous reference of this
     * thread and this one. Large gaps model high CPU utilization /
     * low memory pressure (e.g. NotesBench); small gaps model
     * memory-bound phases.
     */
    std::uint32_t gap = 0;
    ThreadId tid = 0;
    MemOp op = MemOp::Load;

    bool
    operator==(const TraceRecord &o) const
    {
        return addr == o.addr && gap == o.gap && tid == o.tid
               && op == o.op;
    }
};

/** Per-thread stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false when the stream is exhausted (rec untouched).
     */
    virtual bool next(TraceRecord &rec) = 0;
};

/** TraceSource over an in-memory vector (used by tests and readers). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> recs)
        : records_(std::move(recs))
    {
    }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    std::size_t remaining() const { return records_.size() - pos_; }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * A bundle of per-thread sources: what a CmpSystem consumes.
 */
struct TraceBundle
{
    std::vector<std::unique_ptr<TraceSource>> perThread;

    unsigned numThreads() const
    {
        return static_cast<unsigned>(perThread.size());
    }
};

/** Split one interleaved record vector into per-thread VectorSources. */
TraceBundle splitByThread(const std::vector<TraceRecord> &records,
                          unsigned num_threads);

} // namespace cmpcache

#endif // CMPCACHE_TRACE_TRACE_HH
