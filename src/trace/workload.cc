#include "trace/workload.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

WorkloadThreadSource::WorkloadThreadSource(const WorkloadParams &params,
                                           ThreadId tid)
    : params_(params),
      tid_(tid),
      rng_(params.seed * 0x9e3779b97f4a7c15ull + tid + 1),
      privateSampler_(std::max<std::uint64_t>(params.privateLines, 1),
                      params.privateZipf),
      sharedSampler_(std::max<std::uint64_t>(params.sharedLines, 1),
                     params.sharedZipf),
      kernelSampler_(std::max<std::uint64_t>(params.kernelLines, 1),
                     0.5)
{
    cmp_assert(isPowerOf2(params_.lineSize), "line size must be 2^k");
    cmp_assert(tid < params_.numThreads, "tid out of range");
}

Addr
WorkloadThreadSource::lineToAddr(Addr region_base,
                                 std::uint64_t line) const
{
    return region_base + line * params_.lineSize;
}

bool
WorkloadThreadSource::next(TraceRecord &rec)
{
    if (produced_ >= params_.recordsPerThread)
        return false;

    // Phase behaviour: periodically slide the private hot set so that
    // previously hot lines go cold (get evicted) and later come back.
    if (params_.phaseLength > 0 && produced_ > 0
        && produced_ % params_.phaseLength == 0) {
        const auto shift = static_cast<std::uint64_t>(
            static_cast<double>(params_.privateLines)
            * params_.phaseShift);
        // Rotate the hot zone *within* the fixed private footprint so
        // previously-hot lines go cold (eviction), then come back
        // (reuse after eviction, not pure streaming) -- without
        // growing the total working set.
        phaseBase_ = (phaseBase_ + shift)
                     % std::max<std::uint64_t>(params_.privateLines, 1);
    }

    rec.tid = tid_;
    rec.gap = static_cast<std::uint32_t>(
        rng_.geometric(params_.gapMean));

    const double region_draw = rng_.real();
    double edge = params_.kernelFrac;
    if (region_draw < edge) {
        // Kernel region: shared by all threads, instruction-heavy.
        const std::uint64_t line = kernelSampler_.sample(rng_);
        rec.addr = lineToAddr(region::KernelBase, line);
        rec.op = rng_.chance(0.7) ? MemOp::IFetch
                                  : (rng_.chance(params_.storeFrac * 0.3)
                                         ? MemOp::Store
                                         : MemOp::Load);
        ++produced_;
        return true;
    }
    edge += params_.sharedFrac;
    if (region_draw < edge) {
        const std::uint64_t line = sharedSampler_.sample(rng_);
        rec.addr = lineToAddr(region::SharedBase, line);
        const double sf = params_.sharedStoreFrac >= 0.0
                              ? params_.sharedStoreFrac
                              : params_.storeFrac;
        rec.op = rng_.chance(sf) ? MemOp::Store : MemOp::Load;
        ++produced_;
        return true;
    }
    edge += params_.streamFrac;
    if (region_draw < edge) {
        const Addr base =
            region::StreamBase + tid_ * region::PerThreadSpan;
        const std::uint64_t line = streamCursor_++;
        rec.addr = lineToAddr(
            base, line % std::max<std::uint64_t>(params_.streamLines, 1));
        rec.op = rng_.chance(params_.storeFrac) ? MemOp::Store
                                                : MemOp::Load;
        ++produced_;
        return true;
    }

    // Private hot region (per thread or per thread-group), shifted by
    // the current phase.
    const unsigned group =
        tid_ / std::max(params_.privateGroupSize, 1u);
    const Addr base = region::PrivateBase + group * region::PerThreadSpan;
    const std::uint64_t line =
        (phaseBase_ + privateSampler_.sample(rng_))
        % std::max<std::uint64_t>(params_.privateLines, 1);
    rec.addr = lineToAddr(base, line);
    rec.op = rng_.chance(params_.storeFrac) ? MemOp::Store : MemOp::Load;
    ++produced_;
    return true;
}

TraceBundle
SyntheticWorkload::makeBundle() const
{
    TraceBundle bundle;
    bundle.perThread.reserve(params_.numThreads);
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        bundle.perThread.push_back(
            std::make_unique<WorkloadThreadSource>(
                params_, static_cast<ThreadId>(t)));
    }
    return bundle;
}

std::vector<TraceRecord>
SyntheticWorkload::materialize() const
{
    auto bundle = makeBundle();
    std::vector<TraceRecord> out;
    out.reserve(params_.numThreads * params_.recordsPerThread);
    bool any = true;
    while (any) {
        any = false;
        for (auto &src : bundle.perThread) {
            TraceRecord r;
            if (src->next(r)) {
                out.push_back(r);
                any = true;
            }
        }
    }
    return out;
}

} // namespace cmpcache
