#include "trace/trace_io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

constexpr char BinaryMagic[4] = {'C', 'M', 'P', 'T'};
constexpr std::uint32_t BinaryVersion = 1;
/** Bytes per packed binary record: u64 addr + u32 gap + u32 meta. */
constexpr std::uint64_t BinaryRecordBytes = 16;

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<unsigned char, 8> b;
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 8);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::array<unsigned char, 4> b;
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 4);
}

std::uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> b{};
    is.read(reinterpret_cast<char *>(b.data()), 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> b{};
    is.read(reinterpret_cast<char *>(b.data()), 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

SimError
traceError(const std::string &what)
{
    return SimError(SimErrorKind::Trace, what);
}

/** Decode a text op character; -1 for anything unknown. */
int
opFromChar(char c)
{
    switch (c) {
      case 'L':
        return static_cast<int>(MemOp::Load);
      case 'S':
        return static_cast<int>(MemOp::Store);
      case 'I':
        return static_cast<int>(MemOp::IFetch);
      default:
        return -1;
    }
}

Expected<std::vector<TraceRecord>>
readTextBody(std::istream &is)
{
    std::vector<TraceRecord> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::string raw = line;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::uint32_t tid;
        std::string op;
        std::string addr_s;
        std::uint32_t gap;
        if (!(ls >> tid)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue; // blank (or comment-only) line
            return traceError(cstr("malformed trace line ", lineno,
                                   ": '", raw, "'"));
        }
        if (!(ls >> op >> addr_s >> gap) || op.size() != 1) {
            return traceError(cstr("malformed trace line ", lineno,
                                   ": '", raw, "'"));
        }
        if (tid > std::numeric_limits<ThreadId>::max()) {
            return traceError(cstr("trace line ", lineno,
                                   ": thread id ", tid,
                                   " out of range"));
        }
        const int opv = opFromChar(op[0]);
        if (opv < 0) {
            return traceError(cstr("trace line ", lineno,
                                   ": bad op character '", op[0],
                                   "' (expected L, S or I)"));
        }
        TraceRecord r;
        r.tid = static_cast<ThreadId>(tid);
        r.op = static_cast<MemOp>(opv);
        // std::stoull throws on non-hex garbage and on overflow:
        // report both as a malformed line, like the checks above.
        std::size_t used = 0;
        try {
            r.addr = std::stoull(addr_s, &used, 16);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != addr_s.size()) {
            return traceError(cstr("trace line ", lineno,
                                   ": bad hex address '", addr_s,
                                   "'"));
        }
        r.gap = gap;
        out.push_back(r);
    }
    return out;
}

Expected<std::vector<TraceRecord>>
readBinaryBody(std::istream &is)
{
    const std::uint32_t version = getU32(is);
    if (!is)
        return traceError("truncated binary trace header");
    if (version != BinaryVersion)
        return traceError(cstr("unsupported binary trace version ",
                               version));
    const std::uint64_t count = getU64(is);
    if (!is)
        return traceError("truncated binary trace header");

    // The header's count is attacker-controlled: check it against the
    // bytes actually present before reserving anything. On seekable
    // streams the remaining length is exact; otherwise fall back to a
    // modest reservation and let the per-record checks catch
    // truncation.
    std::uint64_t max_records = 1 << 20;
    const auto pos = is.tellg();
    if (pos != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const auto end = is.tellg();
        is.seekg(pos);
        if (end != std::istream::pos_type(-1) && end >= pos) {
            const auto remaining =
                static_cast<std::uint64_t>(end - pos);
            max_records = remaining / BinaryRecordBytes;
            if (count > max_records) {
                return traceError(cstr(
                    "binary trace header claims ", count,
                    " records but only ", remaining,
                    " bytes (", max_records, " records) remain"));
            }
        }
    }

    std::vector<TraceRecord> out;
    out.reserve(std::min(count, max_records));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.addr = getU64(is);
        r.gap = getU32(is);
        const std::uint32_t meta = getU32(is);
        if (!is) {
            return traceError(cstr("truncated binary trace (record ",
                                   i, " of ", count, ")"));
        }
        const std::uint32_t op = (meta >> 16) & 0xff;
        if (op > static_cast<std::uint32_t>(MemOp::IFetch)) {
            return traceError(cstr("binary trace record ", i,
                                   ": bad op encoding ", op));
        }
        if ((meta >> 24) != 0) {
            return traceError(cstr("binary trace record ", i,
                                   ": reserved meta bits set (0x",
                                   std::hex, meta, std::dec, ")"));
        }
        r.tid = static_cast<ThreadId>(meta & 0xffff);
        r.op = static_cast<MemOp>(op);
        out.push_back(r);
    }
    return out;
}

} // namespace

void
writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
           TraceFormat fmt)
{
    if (fmt == TraceFormat::Text) {
        os << "# cmpcache trace v1: tid op addr(hex) gap\n";
        for (const auto &r : records) {
            os << r.tid << " " << toString(r.op) << " " << std::hex
               << r.addr << std::dec << " " << r.gap << "\n";
        }
        return;
    }
    os.write(BinaryMagic, 4);
    putU32(os, BinaryVersion);
    putU64(os, records.size());
    for (const auto &r : records) {
        putU64(os, r.addr);
        putU32(os, r.gap);
        const std::uint32_t meta =
            static_cast<std::uint32_t>(r.tid)
            | (static_cast<std::uint32_t>(r.op) << 16);
        putU32(os, meta);
    }
}

Expected<void>
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records, TraceFormat fmt)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        return SimError(SimErrorKind::Io,
                        cstr("cannot open trace file '", path,
                             "' for writing"));
    }
    writeTrace(os, records, fmt);
    if (!os) {
        return SimError(SimErrorKind::Io,
                        cstr("error writing trace file '", path, "'"));
    }
    return {};
}

Expected<std::vector<TraceRecord>>
readTrace(std::istream &is)
{
    char magic[4] = {0, 0, 0, 0};
    is.read(magic, 4);
    if (is.gcount() == 4 && std::memcmp(magic, BinaryMagic, 4) == 0)
        return readBinaryBody(is);
    // Not binary: rewind and parse as text.
    is.clear();
    is.seekg(0);
    return readTextBody(is);
}

Expected<std::vector<TraceRecord>>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return SimError(SimErrorKind::Io,
                        cstr("cannot open trace file '", path, "'"));
    }
    return readTrace(is);
}

} // namespace cmpcache
