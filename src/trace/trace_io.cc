#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

constexpr char BinaryMagic[4] = {'C', 'M', 'P', 'T'};
constexpr std::uint32_t BinaryVersion = 1;

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<unsigned char, 8> b;
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 8);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::array<unsigned char, 4> b;
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 4);
}

std::uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> b;
    is.read(reinterpret_cast<char *>(b.data()), 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> b;
    is.read(reinterpret_cast<char *>(b.data()), 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

MemOp
opFromChar(char c)
{
    switch (c) {
      case 'L':
        return MemOp::Load;
      case 'S':
        return MemOp::Store;
      case 'I':
        return MemOp::IFetch;
      default:
        cmp_fatal("bad trace op character '", c, "'");
    }
}

std::vector<TraceRecord>
readTextBody(std::istream &is)
{
    std::vector<TraceRecord> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::uint32_t tid;
        std::string op;
        std::string addr_s;
        std::uint32_t gap;
        if (!(ls >> tid))
            continue; // blank line
        if (!(ls >> op >> addr_s >> gap) || op.size() != 1) {
            cmp_fatal("malformed trace line ", lineno, ": '", line, "'");
        }
        TraceRecord r;
        r.tid = static_cast<ThreadId>(tid);
        r.op = opFromChar(op[0]);
        r.addr = std::stoull(addr_s, nullptr, 16);
        r.gap = gap;
        out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord>
readBinaryBody(std::istream &is)
{
    const std::uint32_t version = getU32(is);
    if (version != BinaryVersion)
        cmp_fatal("unsupported binary trace version ", version);
    const std::uint64_t count = getU64(is);
    std::vector<TraceRecord> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.addr = getU64(is);
        r.gap = getU32(is);
        const std::uint32_t meta = getU32(is);
        r.tid = static_cast<ThreadId>(meta & 0xffff);
        r.op = static_cast<MemOp>((meta >> 16) & 0xff);
        if (!is)
            cmp_fatal("truncated binary trace (record ", i, " of ",
                      count, ")");
        out.push_back(r);
    }
    return out;
}

} // namespace

void
writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
           TraceFormat fmt)
{
    if (fmt == TraceFormat::Text) {
        os << "# cmpcache trace v1: tid op addr(hex) gap\n";
        for (const auto &r : records) {
            os << r.tid << " " << toString(r.op) << " " << std::hex
               << r.addr << std::dec << " " << r.gap << "\n";
        }
        return;
    }
    os.write(BinaryMagic, 4);
    putU32(os, BinaryVersion);
    putU64(os, records.size());
    for (const auto &r : records) {
        putU64(os, r.addr);
        putU32(os, r.gap);
        const std::uint32_t meta =
            static_cast<std::uint32_t>(r.tid)
            | (static_cast<std::uint32_t>(r.op) << 16);
        putU32(os, meta);
    }
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records, TraceFormat fmt)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        cmp_fatal("cannot open trace file '", path, "' for writing");
    writeTrace(os, records, fmt);
    if (!os)
        cmp_fatal("error writing trace file '", path, "'");
}

std::vector<TraceRecord>
readTrace(std::istream &is)
{
    char magic[4] = {0, 0, 0, 0};
    is.read(magic, 4);
    if (is.gcount() == 4 && std::memcmp(magic, BinaryMagic, 4) == 0)
        return readBinaryBody(is);
    // Not binary: rewind and parse as text.
    is.clear();
    is.seekg(0);
    return readTextBody(is);
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        cmp_fatal("cannot open trace file '", path, "'");
    return readTrace(is);
}

} // namespace cmpcache
