#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

constexpr char BinaryMagic[4] = {'C', 'M', 'P', 'T'};
constexpr std::uint32_t BinaryVersion = 1;
/** Bytes per packed binary record: u64 addr + u32 gap + u32 meta. */
constexpr std::uint64_t BinaryRecordBytes = 16;

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<unsigned char, 8> b;
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 8);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::array<unsigned char, 4> b;
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b.data()), 4);
}

std::uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> b{};
    is.read(reinterpret_cast<char *>(b.data()), 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> b{};
    is.read(reinterpret_cast<char *>(b.data()), 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

SimError
traceError(const std::string &what)
{
    return SimError(SimErrorKind::Trace, what);
}

/** Decode a text op character; -1 for anything unknown. */
int
opFromChar(char c)
{
    switch (c) {
      case 'L':
        return static_cast<int>(MemOp::Load);
      case 'S':
        return static_cast<int>(MemOp::Store);
      case 'I':
        return static_cast<int>(MemOp::IFetch);
      default:
        return -1;
    }
}

/**
 * Parse a decimal token that must fit a u32. Unlike unsigned
 * operator>>, a leading '-' (or any non-digit) is a hard failure
 * instead of two's-complement wraparound: "-1" must never become a
 * ~4-billion-tick gap or thread id.
 */
bool
parseU32Token(const std::string &tok, std::uint32_t &out)
{
    if (tok.empty() || tok.size() > 10)
        return false;
    std::uint64_t v = 0;
    for (const char c : tok) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (v > std::numeric_limits<std::uint32_t>::max())
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

/**
 * Parse one text trace line into @p rec.
 * @return Expected of "line carried a record" (false = blank or
 *         comment-only line), or the structured parse error.
 */
Expected<bool>
parseTextLine(const std::string &raw, std::size_t lineno,
              TraceRecord &rec)
{
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos)
        line.erase(hash);
    std::istringstream ls(line);
    std::string tid_s;
    std::string op;
    std::string addr_s;
    std::string gap_s;
    if (!(ls >> tid_s))
        return false; // blank (or comment-only) line
    std::uint32_t tid;
    if (!(ls >> op >> addr_s >> gap_s) || op.size() != 1
        || !parseU32Token(tid_s, tid)) {
        return traceError(cstr("malformed trace line ", lineno,
                               ": '", raw, "'"));
    }
    if (tid > std::numeric_limits<ThreadId>::max()) {
        return traceError(cstr("trace line ", lineno,
                               ": thread id ", tid,
                               " out of range"));
    }
    const int opv = opFromChar(op[0]);
    if (opv < 0) {
        return traceError(cstr("trace line ", lineno,
                               ": bad op character '", op[0],
                               "' (expected L, S or I)"));
    }
    rec.tid = static_cast<ThreadId>(tid);
    rec.op = static_cast<MemOp>(opv);
    // std::stoull throws on non-hex garbage and on overflow; it also
    // accepts a leading '-' by wrapping, so that is rejected up
    // front. All three report as a bad address.
    std::size_t used = 0;
    if (addr_s[0] == '-' || addr_s[0] == '+') {
        used = 0;
    } else {
        try {
            rec.addr = std::stoull(addr_s, &used, 16);
        } catch (const std::exception &) {
            used = 0;
        }
    }
    if (used != addr_s.size()) {
        return traceError(cstr("trace line ", lineno,
                               ": bad hex address '", addr_s,
                               "'"));
    }
    std::uint32_t gap;
    if (!parseU32Token(gap_s, gap)) {
        return traceError(cstr("malformed trace line ", lineno,
                               ": '", raw, "'"));
    }
    rec.gap = gap;
    return true;
}

} // namespace

void
writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
           TraceFormat fmt)
{
    if (fmt == TraceFormat::Text) {
        os << "# cmpcache trace v1: tid op addr(hex) gap\n";
        for (const auto &r : records) {
            os << r.tid << " " << toString(r.op) << " " << std::hex
               << r.addr << std::dec << " " << r.gap << "\n";
        }
        return;
    }
    os.write(BinaryMagic, 4);
    putU32(os, BinaryVersion);
    putU64(os, records.size());
    for (const auto &r : records)
        appendTraceRecord(os, r);
}

void
writeStreamingTraceHeader(std::ostream &os)
{
    os.write(BinaryMagic, 4);
    putU32(os, BinaryVersion);
    putU64(os, kStreamingRecordCount);
}

void
appendTraceRecord(std::ostream &os, const TraceRecord &r)
{
    putU64(os, r.addr);
    putU32(os, r.gap);
    const std::uint32_t meta =
        static_cast<std::uint32_t>(r.tid)
        | (static_cast<std::uint32_t>(r.op) << 16);
    putU32(os, meta);
}

Expected<void>
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records, TraceFormat fmt)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        return SimError(SimErrorKind::Io,
                        cstr("cannot open trace file '", path,
                             "' for writing"));
    }
    writeTrace(os, records, fmt);
    if (!os) {
        return SimError(SimErrorKind::Io,
                        cstr("error writing trace file '", path, "'"));
    }
    return {};
}

TraceStreamParser::Status
TraceStreamParser::fail(SimError e)
{
    err_ = std::move(e);
    failed_ = true;
    done_ = true;
    return Status::Error;
}

TraceStreamParser::Status
TraceStreamParser::sniff()
{
    if (is_.fail()) {
        return fail(SimError(
            SimErrorKind::Io,
            "trace stream is in a failed state before parsing"));
    }
    char magic[4] = {0, 0, 0, 0};
    is_.read(magic, 4);
    const auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 4 && std::memcmp(magic, BinaryMagic, 4) == 0) {
        mode_ = Mode::Binary;
        const std::uint32_t version = getU32(is_);
        if (!is_)
            return fail(traceError("truncated binary trace header"));
        if (version != BinaryVersion) {
            return fail(traceError(cstr(
                "unsupported binary trace version ", version)));
        }
        binCount_ = getU64(is_);
        if (!is_)
            return fail(traceError("truncated binary trace header"));

        // The header's count is attacker-controlled: check it against
        // the bytes actually present when the stream can tell us
        // (pipes and FIFOs cannot seek; their per-record reads catch
        // truncation instead). The streaming sentinel declares no
        // length at all.
        if (binCount_ != kStreamingRecordCount) {
            const auto pos = is_.tellg();
            if (pos != std::istream::pos_type(-1)) {
                is_.seekg(0, std::ios::end);
                const auto end = is_.tellg();
                is_.seekg(pos);
                if (end != std::istream::pos_type(-1) && end >= pos) {
                    const auto remaining =
                        static_cast<std::uint64_t>(end - pos);
                    const std::uint64_t max_records =
                        remaining / BinaryRecordBytes;
                    if (binCount_ > max_records) {
                        return fail(traceError(cstr(
                            "binary trace header claims ", binCount_,
                            " records but only ", remaining,
                            " bytes (", max_records,
                            " records) remain")));
                    }
                }
            }
        }
        return Status::Record; // caller proceeds to nextBinary
    }
    // Not binary: the sniffed bytes are the head of a text trace.
    // Buffer them for replay instead of seeking, so non-seekable
    // streams (pipes, FIFOs) parse identically to files.
    mode_ = Mode::Text;
    carry_.assign(magic, got);
    return Status::Record; // caller proceeds to nextText
}

bool
TraceStreamParser::nextLine(std::string &line)
{
    if (!carry_.empty()) {
        const auto nl = carry_.find('\n');
        if (nl != std::string::npos) {
            line = carry_.substr(0, nl);
            carry_.erase(0, nl + 1);
            return true;
        }
        // The carry is an unterminated line head: splice it onto
        // whatever the stream yields next.
        line = carry_;
        carry_.clear();
        std::string rest;
        if (std::getline(is_, rest))
            line += rest;
        return true;
    }
    return static_cast<bool>(std::getline(is_, line));
}

TraceStreamParser::Status
TraceStreamParser::nextText(TraceRecord &rec)
{
    std::string line;
    while (nextLine(line)) {
        ++lineno_;
        TraceRecord r;
        auto parsed = parseTextLine(line, lineno_, r);
        if (!parsed)
            return fail(std::move(parsed.error()));
        if (!*parsed)
            continue; // blank or comment-only line
        rec = r;
        ++recordsRead_;
        return Status::Record;
    }
    done_ = true;
    return Status::Eof;
}

TraceStreamParser::Status
TraceStreamParser::nextBinary(TraceRecord &rec)
{
    const bool open_ended = binCount_ == kStreamingRecordCount;
    if (!open_ended && binIndex_ >= binCount_) {
        done_ = true;
        return Status::Eof;
    }
    std::array<unsigned char, BinaryRecordBytes> b{};
    is_.read(reinterpret_cast<char *>(b.data()), BinaryRecordBytes);
    const auto got = static_cast<std::uint64_t>(is_.gcount());
    if (got == 0 && open_ended) {
        // EOF on a record boundary: a clean end of stream.
        done_ = true;
        return Status::Eof;
    }
    if (got != BinaryRecordBytes) {
        if (open_ended) {
            return fail(traceError(cstr(
                "truncated binary trace (record ", binIndex_,
                " of open-ended stream)")));
        }
        return fail(traceError(cstr("truncated binary trace (record ",
                                    binIndex_, " of ", binCount_,
                                    ")")));
    }
    std::uint64_t addr = 0;
    for (int i = 7; i >= 0; --i)
        addr = (addr << 8) | b[i];
    std::uint32_t gap = 0;
    for (int i = 11; i >= 8; --i)
        gap = (gap << 8) | b[i];
    std::uint32_t meta = 0;
    for (int i = 15; i >= 12; --i)
        meta = (meta << 8) | b[i];

    const std::uint32_t op = (meta >> 16) & 0xff;
    if (op > static_cast<std::uint32_t>(MemOp::IFetch)) {
        return fail(traceError(cstr("binary trace record ", binIndex_,
                                    ": bad op encoding ", op)));
    }
    if ((meta >> 24) != 0) {
        return fail(traceError(cstr("binary trace record ", binIndex_,
                                    ": reserved meta bits set (0x",
                                    std::hex, meta, std::dec, ")")));
    }
    rec.addr = addr;
    rec.gap = gap;
    rec.tid = static_cast<ThreadId>(meta & 0xffff);
    rec.op = static_cast<MemOp>(op);
    ++binIndex_;
    ++recordsRead_;
    return Status::Record;
}

TraceStreamParser::Status
TraceStreamParser::next(TraceRecord &rec)
{
    if (done_)
        return failed_ ? Status::Error : Status::Eof;
    if (mode_ == Mode::Unsniffed) {
        const Status s = sniff();
        if (s == Status::Error)
            return s;
    }
    return mode_ == Mode::Binary ? nextBinary(rec) : nextText(rec);
}

Expected<std::vector<TraceRecord>>
readTrace(std::istream &is)
{
    TraceStreamParser parser(is);
    std::vector<TraceRecord> out;
    TraceRecord r;
    for (;;) {
        switch (parser.next(r)) {
          case TraceStreamParser::Status::Record:
            out.push_back(r);
            break;
          case TraceStreamParser::Status::Eof:
            return out;
          case TraceStreamParser::Status::Error:
            return parser.error();
        }
    }
}

Expected<std::vector<TraceRecord>>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return SimError(SimErrorKind::Io,
                        cstr("cannot open trace file '", path, "'"));
    }
    return readTrace(is);
}

} // namespace cmpcache
