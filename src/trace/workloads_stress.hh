/**
 * @file
 * Synthetic stress patterns for testing and calibration -- the
 * directed-tester analogue of the commercial stand-ins. Each pattern
 * isolates one behaviour of the memory system:
 *
 *  - uniform:  uniform random over a configurable footprint
 *              (capacity-miss stress, no reuse locality)
 *  - streaming: pure sequential walks (cold misses, one-shot write
 *              backs, zero redundancy)
 *  - pingpong: all threads hammer one small shared region with
 *              stores (invalidation/upgrade storms, intervention
 *              stress)
 *  - thrash:   private sets sized just over the L2 share (maximum
 *              write-back volume and L3 redundancy -- the WBHT's
 *              best case)
 *
 * The chaos harness (docs/robustness.md) adds three adversarial
 * sharing generators tuned to maximize the transaction interleavings
 * where stale-copy bugs hide:
 *
 *  - producer_consumer: a store-heavy shared region read back by
 *              every thread (supplier handoffs, dirty interventions,
 *              write backs racing demand refetches)
 *  - migratory: a tiny fully shared region where nearly every touch
 *              is a store (continuous M-ownership migration through
 *              Upgrade/ReadExcl storms)
 *  - false_sharing: a handful of shared lines under mixed
 *              load/store pressure (maximum same-line concurrency
 *              per combine window)
 */

#ifndef CMPCACHE_TRACE_WORKLOADS_STRESS_HH
#define CMPCACHE_TRACE_WORKLOADS_STRESS_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace cmpcache
{
namespace workloads
{

WorkloadParams uniformStress(std::uint64_t records_per_thread,
                             std::uint64_t seed,
                             std::uint64_t footprint_lines = 1u << 18);

WorkloadParams streamingStress(std::uint64_t records_per_thread,
                               std::uint64_t seed);

WorkloadParams pingpongStress(std::uint64_t records_per_thread,
                              std::uint64_t seed,
                              std::uint64_t shared_lines = 512);

WorkloadParams thrashStress(std::uint64_t records_per_thread,
                            std::uint64_t seed,
                            std::uint64_t lines_per_thread = 5120);

WorkloadParams
producerConsumerStress(std::uint64_t records_per_thread,
                       std::uint64_t seed,
                       std::uint64_t shared_lines = 256);

WorkloadParams migratoryStress(std::uint64_t records_per_thread,
                               std::uint64_t seed,
                               std::uint64_t shared_lines = 64);

WorkloadParams falseSharingStress(std::uint64_t records_per_thread,
                                  std::uint64_t seed,
                                  std::uint64_t shared_lines = 16);

/** Names of the stress patterns ("uniform", "streaming", ...). */
const std::vector<std::string> &stressNames();

/** Lookup by name; fatal() if unknown. */
WorkloadParams stressByName(const std::string &name,
                            std::uint64_t records_per_thread,
                            std::uint64_t seed);

} // namespace workloads
} // namespace cmpcache

#endif // CMPCACHE_TRACE_WORKLOADS_STRESS_HH
