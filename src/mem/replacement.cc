#include "mem/replacement.hh"

#include <bit>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cmpcache
{

namespace
{

/** Lowest set way of a non-zero mask. */
inline unsigned
lowestWay(WayMask m)
{
    return static_cast<unsigned>(std::countr_zero(m));
}

} // namespace

// ---------------------------------------------------------------- LRU

void
LruPolicy::init(unsigned sets, unsigned ways)
{
    ways_ = ways;
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
    clock_ = 0;
}

unsigned
LruPolicy::rank(unsigned set, unsigned way) const
{
    const auto mine = stamp_[static_cast<std::size_t>(set) * ways_ + way];
    unsigned r = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (w != way
            && stamp_[static_cast<std::size_t>(set) * ways_ + w] < mine) {
            ++r;
        }
    }
    return r;
}

// ----------------------------------------------------------- TreePLRU

void
TreePlruPolicy::init(unsigned sets, unsigned ways)
{
    cmp_assert(isPowerOf2(ways), "tree-plru needs power-of-two ways");
    ways_ = ways;
    bits_.assign(static_cast<std::size_t>(sets) * (ways - 1), 0);
}

void
TreePlruPolicy::promote(unsigned set, unsigned way)
{
    // Walk from the root; flip each node to point *away* from the
    // accessed way.
    auto *b = &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool right = way >= mid;
        b[node] = right ? 0 : 1; // 0 = LRU side is left
        node = 2 * node + 1 + (right ? 1 : 0);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

void
TreePlruPolicy::touch(unsigned set, unsigned way)
{
    promote(set, way);
}

void
TreePlruPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    if (pos == InsertPos::Mru)
        promote(set, way);
    // Lru insertion: leave the tree pointing at this way.
}

unsigned
TreePlruPolicy::victim(unsigned set, WayMask candidates)
{
    cmp_assert(candidates != 0, "no replacement candidates");
    // Follow the tree; if the chosen way is not a candidate, fall back
    // to the lowest candidate (approximation consistent with hardware
    // way-masking).
    const auto *b = &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool go_right = b[node] != 0;
        node = 2 * node + 1 + (go_right ? 1 : 0);
        if (go_right)
            lo = mid;
        else
            hi = mid;
    }
    const unsigned chosen = lo;
    if (candidates >> chosen & 1)
        return chosen;
    return lowestWay(candidates);
}

// ------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

void
RandomPolicy::init(unsigned sets, unsigned ways)
{
    (void)sets;
    (void)ways;
}

void
RandomPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    (void)set;
    (void)way;
    (void)pos;
}

unsigned
RandomPolicy::victim(unsigned set, WayMask candidates)
{
    (void)set;
    cmp_assert(candidates != 0, "no replacement candidates");
    // Consume exactly one below(count) draw, like the old vector API,
    // so the RNG stream (and thus every simulated figure) is
    // unchanged.
    const auto count =
        static_cast<std::uint64_t>(std::popcount(candidates));
    std::uint64_t idx = rng_.below(count);
    WayMask m = candidates;
    while (idx--)
        m &= m - 1;
    return lowestWay(m);
}

// ---------------------------------------------------------------- NRU

void
NruPolicy::init(unsigned sets, unsigned ways)
{
    ways_ = ways;
    refBit_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
NruPolicy::touch(unsigned set, unsigned way)
{
    auto *bits = &refBit_[static_cast<std::size_t>(set) * ways_];
    bits[way] = 1;
    // If every bit is set, clear all others (aging sweep).
    bool all = true;
    for (unsigned w = 0; w < ways_; ++w)
        all = all && bits[w];
    if (all) {
        for (unsigned w = 0; w < ways_; ++w)
            bits[w] = (w == way) ? 1 : 0;
    }
}

void
NruPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    refBit_[static_cast<std::size_t>(set) * ways_ + way] =
        pos == InsertPos::Mru ? 1 : 0;
}

unsigned
NruPolicy::victim(unsigned set, WayMask candidates)
{
    cmp_assert(candidates != 0, "no replacement candidates");
    for (WayMask m = candidates; m; m &= m - 1) {
        const unsigned w = lowestWay(m);
        if (!refBit_[static_cast<std::size_t>(set) * ways_ + w])
            return w;
    }
    return lowestWay(candidates);
}

// -------------------------------------------------------------- factory

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "tree-plru")
        return std::make_unique<TreePlruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>();
    if (name == "nru")
        return std::make_unique<NruPolicy>();
    cmp_fatal("unknown replacement policy '", name, "'");
}

} // namespace cmpcache
