#include "mem/replacement.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cmpcache
{

// ---------------------------------------------------------------- LRU

void
LruPolicy::init(unsigned sets, unsigned ways)
{
    ways_ = ways;
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
    clock_ = 0;
}

void
LruPolicy::touch(unsigned set, unsigned way)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
LruPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    auto &s = stamp_[static_cast<std::size_t>(set) * ways_ + way];
    if (pos == InsertPos::Mru) {
        s = ++clock_;
    } else {
        // Insert colder than everything currently resident.
        s = 0;
    }
}

unsigned
LruPolicy::victim(unsigned set,
                  const std::vector<unsigned> &candidate_ways)
{
    cmp_assert(!candidate_ways.empty(), "no replacement candidates");
    unsigned best = candidate_ways.front();
    std::uint64_t best_stamp = MaxTick;
    for (const unsigned w : candidate_ways) {
        const auto s = stamp_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < best_stamp) {
            best_stamp = s;
            best = w;
        }
    }
    return best;
}

unsigned
LruPolicy::rank(unsigned set, unsigned way) const
{
    const auto mine = stamp_[static_cast<std::size_t>(set) * ways_ + way];
    unsigned r = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (w != way
            && stamp_[static_cast<std::size_t>(set) * ways_ + w] < mine) {
            ++r;
        }
    }
    return r;
}

// ----------------------------------------------------------- TreePLRU

void
TreePlruPolicy::init(unsigned sets, unsigned ways)
{
    cmp_assert(isPowerOf2(ways), "tree-plru needs power-of-two ways");
    ways_ = ways;
    bits_.assign(static_cast<std::size_t>(sets) * (ways - 1), 0);
}

void
TreePlruPolicy::promote(unsigned set, unsigned way)
{
    // Walk from the root; flip each node to point *away* from the
    // accessed way.
    auto *b = &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool right = way >= mid;
        b[node] = right ? 0 : 1; // 0 = LRU side is left
        node = 2 * node + 1 + (right ? 1 : 0);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

void
TreePlruPolicy::touch(unsigned set, unsigned way)
{
    promote(set, way);
}

void
TreePlruPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    if (pos == InsertPos::Mru)
        promote(set, way);
    // Lru insertion: leave the tree pointing at this way.
}

unsigned
TreePlruPolicy::victim(unsigned set,
                       const std::vector<unsigned> &candidate_ways)
{
    cmp_assert(!candidate_ways.empty(), "no replacement candidates");
    // Follow the tree; if the chosen way is not a candidate, fall back
    // to the first candidate (approximation consistent with hardware
    // way-masking).
    const auto *b = &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool go_right = b[node] != 0;
        node = 2 * node + 1 + (go_right ? 1 : 0);
        if (go_right)
            lo = mid;
        else
            hi = mid;
    }
    const unsigned chosen = lo;
    if (std::find(candidate_ways.begin(), candidate_ways.end(), chosen)
        != candidate_ways.end()) {
        return chosen;
    }
    return candidate_ways.front();
}

// ------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

void
RandomPolicy::init(unsigned sets, unsigned ways)
{
    (void)sets;
    (void)ways;
}

void
RandomPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    (void)set;
    (void)way;
    (void)pos;
}

unsigned
RandomPolicy::victim(unsigned set,
                     const std::vector<unsigned> &candidate_ways)
{
    (void)set;
    cmp_assert(!candidate_ways.empty(), "no replacement candidates");
    return candidate_ways[rng_.below(candidate_ways.size())];
}

// ---------------------------------------------------------------- NRU

void
NruPolicy::init(unsigned sets, unsigned ways)
{
    ways_ = ways;
    refBit_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
NruPolicy::touch(unsigned set, unsigned way)
{
    auto *bits = &refBit_[static_cast<std::size_t>(set) * ways_];
    bits[way] = 1;
    // If every bit is set, clear all others (aging sweep).
    bool all = true;
    for (unsigned w = 0; w < ways_; ++w)
        all = all && bits[w];
    if (all) {
        for (unsigned w = 0; w < ways_; ++w)
            bits[w] = (w == way) ? 1 : 0;
    }
}

void
NruPolicy::insert(unsigned set, unsigned way, InsertPos pos)
{
    refBit_[static_cast<std::size_t>(set) * ways_ + way] =
        pos == InsertPos::Mru ? 1 : 0;
}

unsigned
NruPolicy::victim(unsigned set,
                  const std::vector<unsigned> &candidate_ways)
{
    cmp_assert(!candidate_ways.empty(), "no replacement candidates");
    for (const unsigned w : candidate_ways) {
        if (!refBit_[static_cast<std::size_t>(set) * ways_ + w])
            return w;
    }
    return candidate_ways.front();
}

// -------------------------------------------------------------- factory

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "tree-plru")
        return std::make_unique<TreePlruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>();
    if (name == "nru")
        return std::make_unique<NruPolicy>();
    cmp_fatal("unknown replacement policy '", name, "'");
}

} // namespace cmpcache
