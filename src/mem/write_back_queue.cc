#include "mem/write_back_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{

WbEntry &
WriteBackQueue::push(Addr line_addr, bool dirty, Tick ready_at)
{
    cmp_assert(!full(), "push into a full write-back queue");
    q_.push_back(WbEntry{line_addr, dirty, false, ready_at, false, 0});
    return q_.back();
}

WbEntry *
WriteBackQueue::nextReady(Tick now)
{
    for (auto &e : q_) {
        if (!e.inFlight && e.readyAt <= now)
            return &e;
    }
    return nullptr;
}

WbEntry *
WriteBackQueue::findInFlight(Addr line_addr)
{
    for (auto &e : q_) {
        if (e.inFlight && e.lineAddr == line_addr)
            return &e;
    }
    return nullptr;
}

Tick
WriteBackQueue::earliestReady() const
{
    Tick best = MaxTick;
    for (const auto &e : q_) {
        if (!e.inFlight && e.readyAt < best)
            best = e.readyAt;
    }
    return best;
}

const WbEntry *
WriteBackQueue::find(Addr line_addr) const
{
    for (const auto &e : q_) {
        if (e.lineAddr == line_addr)
            return &e;
    }
    return nullptr;
}

void
WriteBackQueue::remove(const WbEntry *entry)
{
    const auto it = std::find_if(
        q_.begin(), q_.end(),
        [entry](const WbEntry &e) { return &e == entry; });
    cmp_assert(it != q_.end(), "removing foreign write-back entry");
    q_.erase(it);
}

} // namespace cmpcache
