#include "mem/write_back_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{

WbEntry &
WriteBackQueue::push(Addr line_addr, bool dirty, Tick ready_at)
{
    cmp_assert(!full(), "push into a full write-back queue");
    q_.push_back(WbEntry{line_addr, dirty, false, ready_at, false, 0});
    return q_.back();
}

void
WriteBackQueue::remove(const WbEntry *entry)
{
    const auto it = std::find_if(
        q_.begin(), q_.end(),
        [entry](const WbEntry &e) { return &e == entry; });
    cmp_assert(it != q_.end(), "removing foreign write-back entry");
    q_.erase(it);
}

} // namespace cmpcache
