/**
 * @file
 * Miss Status Holding Registers: track outstanding L2 misses, coalesce
 * secondary misses to the same line, and remember which hardware
 * threads wait on each fill.
 */

#ifndef CMPCACHE_MEM_MSHR_HH
#define CMPCACHE_MEM_MSHR_HH

#include <vector>

#include "coherence/bus.hh"
#include "common/types.hh"

namespace cmpcache
{

/** A thread reference parked on an MSHR awaiting the fill. */
struct MshrWaiter
{
    ThreadId tid = 0;
    bool isStore = false;
    Tick enqueued = 0;
};

/** One in-flight miss. */
struct Mshr
{
    Addr lineAddr = InvalidAddr;
    /** Strongest request needed: Read, or ReadExcl if any store
     * waits. */
    BusCmd cmd = BusCmd::Read;
    bool inService = false;   ///< request issued, awaiting response
    bool awaitingData = false;///< combined response seen, data pending
    unsigned retries = 0;     ///< times the bus answered Retry
    Tick allocated = 0;
    std::vector<MshrWaiter> waiters;

    bool valid() const { return lineAddr != InvalidAddr; }
};

/**
 * Fixed-capacity MSHR file. Full MSHRs block new misses at the cache
 * (back-pressuring the trace CPUs).
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity);

    unsigned capacity() const { return capacity_; }
    unsigned inUse() const { return inUse_; }
    bool full() const { return inUse_ >= capacity_; }

    /** Find the MSHR tracking @p line_addr, or nullptr. */
    Mshr *
    find(Addr line_addr)
    {
        // Checked once per reference, hit rarely: scan the dense tag
        // mirror (free slots hold InvalidAddr, which no line address
        // equals) instead of striding across 64-byte Mshr slots.
        if (inUse_ == 0)
            return nullptr;
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] == line_addr)
                return &slots_[i];
        }
        return nullptr;
    }

    /**
     * Allocate an MSHR for @p line_addr (must not already exist, must
     * not be full).
     */
    Mshr *allocate(Addr line_addr, BusCmd cmd, ThreadId tid,
                   bool is_store, Tick now);

    /** Add a coalesced waiter; upgrades Read->ReadExcl for stores that
     * arrive before the request is in service. */
    void addWaiter(Mshr *mshr, ThreadId tid, bool is_store, Tick now);

    /** Release an MSHR after its fill completes. */
    void deallocate(Mshr *mshr);

    /** Iterate over valid MSHRs. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &m : slots_)
            if (m.valid())
                fn(m);
    }

  private:
    unsigned capacity_;
    unsigned inUse_ = 0;
    std::vector<Mshr> slots_;
    /** slots_[i].lineAddr mirror, maintained by allocate/deallocate. */
    std::vector<Addr> tags_;
};

} // namespace cmpcache

#endif // CMPCACHE_MEM_MSHR_HH
