/**
 * @file
 * The per-L2 write-back queue.
 *
 * Victims evicted by fills wait here until the controller can issue
 * their write-back transaction on the ring. The paper notes the WBHT
 * is consulted *after* eviction, while the line sits in this queue --
 * off the miss critical path -- and that a modest depth of eight never
 * filled up in practice (we model the stall if it does).
 */

#ifndef CMPCACHE_MEM_WRITE_BACK_QUEUE_HH
#define CMPCACHE_MEM_WRITE_BACK_QUEUE_HH

#include <vector>

#include "common/types.hh"

namespace cmpcache
{

/** One victim awaiting write back. */
struct WbEntry
{
    Addr lineAddr = InvalidAddr;
    bool dirty = false;
    /** Snarf table predicted reuse: flag the bus transaction. */
    bool snarfHint = false;
    /** Earliest tick the entry may issue (models WBHT lookup time). */
    Tick readyAt = 0;
    /** Transaction currently on the bus awaiting a response. */
    bool inFlight = false;
    unsigned retries = 0;
};

class WriteBackQueue
{
  public:
    explicit WriteBackQueue(unsigned capacity) : capacity_(capacity)
    {
        // The backing store is bounded by the queue's capacity, so
        // one up-front reservation keeps the steady-state push/remove
        // churn allocation-free (a deque would recycle block nodes).
        q_.reserve(capacity);
    }

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Append a victim; queue must not be full. */
    WbEntry &push(Addr line_addr, bool dirty, Tick ready_at);

    /**
     * Oldest entry that is ready at @p now and not already on the
     * bus; nullptr if none.
     */
    WbEntry *
    nextReady(Tick now)
    {
        for (auto &e : q_) {
            if (!e.inFlight && e.readyAt <= now)
                return &e;
        }
        return nullptr;
    }

    /** Find the in-flight entry for @p line_addr (response routing). */
    WbEntry *
    findInFlight(Addr line_addr)
    {
        for (auto &e : q_) {
            if (e.inFlight && e.lineAddr == line_addr)
                return &e;
        }
        return nullptr;
    }

    /** Earliest readyAt among entries not on the bus; MaxTick if
     * none. */
    Tick
    earliestReady() const
    {
        Tick best = MaxTick;
        for (const auto &e : q_) {
            if (!e.inFlight && e.readyAt < best)
                best = e.readyAt;
        }
        return best;
    }

    /** Does any queued entry (any state) match this line? (Probed on
     * every snooped transaction; the queue is tiny and usually empty,
     * so the scan inlines to a few compares.) */
    const WbEntry *
    find(Addr line_addr) const
    {
        for (const auto &e : q_) {
            if (e.lineAddr == line_addr)
                return &e;
        }
        return nullptr;
    }

    /** Remove a completed/aborted entry. */
    void remove(const WbEntry *entry);

    /** Iterate over queued entries, oldest first (diagnostics). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &e : q_)
            fn(e);
    }

  private:
    unsigned capacity_;
    std::vector<WbEntry> q_;
};

} // namespace cmpcache

#endif // CMPCACHE_MEM_WRITE_BACK_QUEUE_HH
