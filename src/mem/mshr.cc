#include "mem/mshr.hh"

#include "common/logging.hh"

namespace cmpcache
{

MshrFile::MshrFile(unsigned capacity)
    : capacity_(capacity), slots_(capacity),
      tags_(capacity, InvalidAddr)
{
    cmp_assert(capacity > 0, "MSHR file needs at least one slot");
    // Waiter lists survive deallocate() (clear() keeps capacity), so
    // they only ever grow to their high-water mark -- but that growth
    // would land mid-run. Reserve a generous coalescing depth up front
    // to keep the steady state allocation-free.
    for (auto &m : slots_)
        m.waiters.reserve(16);
}

Mshr *
MshrFile::allocate(Addr line_addr, BusCmd cmd, ThreadId tid,
                   bool is_store, Tick now)
{
    cmp_assert(!full(), "allocating in a full MSHR file");
    cmp_assert(find(line_addr) == nullptr,
               "line already has an MSHR");
    for (auto &m : slots_) {
        if (m.valid())
            continue;
        m.lineAddr = line_addr;
        m.cmd = cmd;
        m.inService = false;
        m.awaitingData = false;
        m.retries = 0;
        m.allocated = now;
        m.waiters.clear();
        m.waiters.push_back(MshrWaiter{tid, is_store, now});
        tags_[static_cast<std::size_t>(&m - slots_.data())] = line_addr;
        ++inUse_;
        return &m;
    }
    cmp_panic("MSHR accounting out of sync");
}

void
MshrFile::addWaiter(Mshr *mshr, ThreadId tid, bool is_store, Tick now)
{
    cmp_assert(mshr && mshr->valid(), "waiter on invalid MSHR");
    mshr->waiters.push_back(MshrWaiter{tid, is_store, now});
    // A store joining a pending load upgrades the request if it has
    // not left the cache yet; once in service the store will issue an
    // Upgrade after the fill instead (handled by the controller).
    if (is_store && !mshr->inService && mshr->cmd == BusCmd::Read)
        mshr->cmd = BusCmd::ReadExcl;
}

void
MshrFile::deallocate(Mshr *mshr)
{
    cmp_assert(mshr && mshr->valid(), "deallocating invalid MSHR");
    mshr->lineAddr = InvalidAddr;
    mshr->waiters.clear();
    tags_[static_cast<std::size_t>(mshr - slots_.data())] = InvalidAddr;
    cmp_assert(inUse_ > 0, "MSHR accounting underflow");
    --inUse_;
}

} // namespace cmpcache
