#include "mem/tag_array.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

TagArray::TagArray(std::uint64_t size_bytes, unsigned assoc,
                   unsigned line_size,
                   std::unique_ptr<ReplacementPolicy> policy)
    : assoc_(assoc),
      lineSize_(line_size),
      lineShift_(floorLog2(line_size)),
      lineMask_(line_size - 1),
      policy_(std::move(policy))
{
    cmp_assert(isPowerOf2(line_size), "line size must be a power of 2");
    cmp_assert(assoc > 0, "associativity must be positive");
    cmp_assert(assoc <= 64, "way masks support at most 64 ways");
    cmp_assert(size_bytes % (static_cast<std::uint64_t>(assoc)
                             * line_size) == 0,
               "capacity must divide evenly into sets");
    const std::uint64_t sets =
        size_bytes / (static_cast<std::uint64_t>(assoc) * line_size);
    cmp_assert(isPowerOf2(sets), "number of sets must be a power of 2 "
               "(got ", sets, ")");
    numSets_ = static_cast<unsigned>(sets);
    entries_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    tags_.assign(entries_.size(), InvalidAddr);
    policy_->init(numSets_, assoc_);
    lru_ = dynamic_cast<LruPolicy *>(policy_.get());
}

unsigned
TagArray::wayOf(const TagEntry *e, unsigned set) const
{
    return static_cast<unsigned>(e - setBase(set));
}

void
TagArray::insert(TagEntry *victim, Addr addr, LineState state,
                 InsertPos pos)
{
    cmp_assert(victim != nullptr, "insert into null victim");
    const Addr line = lineAlign(addr);
    const unsigned set = setIndex(addr);
    cmp_assert(setIndex(victim->lineAddr == InvalidAddr
                            ? line
                            : victim->lineAddr) == set
                   || !victim->valid(),
               "victim belongs to a different set");
    victim->lineAddr = line;
    victim->state = state;
    victim->snarfed = false;
    victim->snarfUsedLocal = false;
    victim->snarfUsedIntervention = false;
    tags_[static_cast<std::size_t>(victim - entries_.data())] = line;
    if (lru_)
        lru_->insert(set, wayOf(victim, set), pos);
    else
        policy_->insert(set, wayOf(victim, set), pos);
}

void
TagArray::invalidate(TagEntry *entry)
{
    cmp_assert(entry != nullptr, "invalidating null entry");
    // Clearing the address keeps the lookup/peek invariant that a
    // matching lineAddr implies a valid entry (no line-aligned
    // address can equal InvalidAddr), so the scans skip the state
    // check.
    entry->lineAddr = InvalidAddr;
    entry->state = LineState::Invalid;
    entry->snarfed = false;
    entry->snarfUsedLocal = false;
    entry->snarfUsedIntervention = false;
    tags_[static_cast<std::size_t>(entry - entries_.data())] =
        InvalidAddr;
}

std::uint64_t
TagArray::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid())
            ++n;
    return n;
}

void
TagArray::forEach(const std::function<void(const TagEntry &)> &fn) const
{
    for (const auto &e : entries_)
        fn(e);
}

} // namespace cmpcache
