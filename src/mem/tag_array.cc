#include "mem/tag_array.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

TagArray::TagArray(std::uint64_t size_bytes, unsigned assoc,
                   unsigned line_size,
                   std::unique_ptr<ReplacementPolicy> policy)
    : assoc_(assoc),
      lineSize_(line_size),
      lineShift_(floorLog2(line_size)),
      lineMask_(line_size - 1),
      policy_(std::move(policy))
{
    cmp_assert(isPowerOf2(line_size), "line size must be a power of 2");
    cmp_assert(assoc > 0, "associativity must be positive");
    cmp_assert(size_bytes % (static_cast<std::uint64_t>(assoc)
                             * line_size) == 0,
               "capacity must divide evenly into sets");
    const std::uint64_t sets =
        size_bytes / (static_cast<std::uint64_t>(assoc) * line_size);
    cmp_assert(isPowerOf2(sets), "number of sets must be a power of 2 "
               "(got ", sets, ")");
    numSets_ = static_cast<unsigned>(sets);
    entries_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    policy_->init(numSets_, assoc_);
}

unsigned
TagArray::wayOf(const TagEntry *e, unsigned set) const
{
    const auto base =
        &entries_[static_cast<std::size_t>(set) * assoc_];
    return static_cast<unsigned>(e - base);
}

TagEntry *
TagArray::lookup(Addr addr, bool touch)
{
    const Addr line = lineAlign(addr);
    const unsigned set = setIndex(addr);
    auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        TagEntry &e = base[w];
        if (e.valid() && e.lineAddr == line) {
            if (touch)
                policy_->touch(set, w);
            return &e;
        }
    }
    return nullptr;
}

const TagEntry *
TagArray::peek(Addr addr) const
{
    const Addr line = lineAlign(addr);
    const unsigned set = setIndex(addr);
    const auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        const TagEntry &e = base[w];
        if (e.valid() && e.lineAddr == line)
            return &e;
    }
    return nullptr;
}

TagEntry *
TagArray::findVictim(Addr addr)
{
    const unsigned set = setIndex(addr);
    auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    // Invalid ways are free fills.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!base[w].valid())
            return &base[w];
    }
    std::vector<unsigned> all(assoc_);
    for (unsigned w = 0; w < assoc_; ++w)
        all[w] = w;
    return &base[policy_->victim(set, all)];
}

TagEntry *
TagArray::findVictimInformed(
    Addr addr, const std::function<bool(const TagEntry &)> &cheap)
{
    const unsigned set = setIndex(addr);
    auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    // Invalid ways always win.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!base[w].valid())
            return &base[w];
    }
    if (!policy_->hasRanks())
        return findVictim(addr);

    // Cheapest victim: a "cheap" entry in the colder half of the set,
    // coldest first.
    TagEntry *best = nullptr;
    unsigned best_rank = assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const unsigned r = policy_->rank(set, w);
        if (r < assoc_ / 2 && cheap(base[w]) && r < best_rank) {
            best_rank = r;
            best = &base[w];
        }
    }
    return best ? best : findVictim(addr);
}

TagEntry *
TagArray::findVictimAmong(
    Addr addr, const std::function<bool(const TagEntry &)> &pred)
{
    const unsigned set = setIndex(addr);
    auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    std::vector<unsigned> cands;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!base[w].valid() && pred(base[w]))
            return &base[w]; // invalid candidates win outright
        if (pred(base[w]))
            cands.push_back(w);
    }
    if (cands.empty())
        return nullptr;
    return &base[policy_->victim(set, cands)];
}

void
TagArray::insert(TagEntry *victim, Addr addr, LineState state,
                 InsertPos pos)
{
    cmp_assert(victim != nullptr, "insert into null victim");
    const Addr line = lineAlign(addr);
    const unsigned set = setIndex(addr);
    cmp_assert(setIndex(victim->lineAddr == InvalidAddr
                            ? line
                            : victim->lineAddr) == set
                   || !victim->valid(),
               "victim belongs to a different set");
    victim->lineAddr = line;
    victim->state = state;
    victim->snarfed = false;
    victim->snarfUsedLocal = false;
    victim->snarfUsedIntervention = false;
    policy_->insert(set, wayOf(victim, set), pos);
}

void
TagArray::invalidate(TagEntry *entry)
{
    cmp_assert(entry != nullptr, "invalidating null entry");
    entry->state = LineState::Invalid;
    entry->snarfed = false;
    entry->snarfUsedLocal = false;
    entry->snarfUsedIntervention = false;
}

bool
TagArray::anyInSet(
    Addr addr, const std::function<bool(const TagEntry &)> &pred) const
{
    const unsigned set = setIndex(addr);
    const auto *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (pred(base[w]))
            return true;
    }
    return false;
}

std::uint64_t
TagArray::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid())
            ++n;
    return n;
}

void
TagArray::forEach(const std::function<void(const TagEntry &)> &fn) const
{
    for (const auto &e : entries_)
        fn(e);
}

} // namespace cmpcache
