/**
 * @file
 * Set-associative tag array with coherence state and the metadata bits
 * the paper's mechanisms need (snarfed / snarf-used tracking).
 *
 * Timing lives in the controllers; the array is purely structural.
 */

#ifndef CMPCACHE_MEM_TAG_ARRAY_HH
#define CMPCACHE_MEM_TAG_ARRAY_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/state.hh"
#include "common/types.hh"
#include "mem/replacement.hh"

namespace cmpcache
{

/** One tag entry. */
struct TagEntry
{
    /** Line-aligned address (full address, not a truncated tag). */
    Addr lineAddr = InvalidAddr;
    LineState state = LineState::Invalid;
    /** Line was installed by snarfing a peer write back. */
    bool snarfed = false;
    /** Snarfed line was already counted as used locally. */
    bool snarfUsedLocal = false;
    /** Snarfed line was already counted as an intervention source. */
    bool snarfUsedIntervention = false;

    bool valid() const { return isValid(state); }
};

class TagArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc      associativity
     * @param line_size  line size in bytes (power of two)
     * @param policy     replacement policy (owned)
     */
    TagArray(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
             std::unique_ptr<ReplacementPolicy> policy);

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineSize() const { return lineSize_; }
    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(numSets_) * assoc_ * lineSize_;
    }

    /** Line-align an address. */
    Addr lineAlign(Addr addr) const { return addr & ~lineMask_; }

    /** Set index of an address. */
    unsigned setIndex(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_)
                                     & (numSets_ - 1));
    }

    /**
     * Look up a line.
     * @param addr  any address within the line
     * @param touch update replacement state on hit
     * @return the entry, or nullptr on miss
     */
    TagEntry *lookup(Addr addr, bool touch = true);
    const TagEntry *peek(Addr addr) const;

    /**
     * Pick a victim way for filling @p addr using the replacement
     * policy over all ways (invalid ways win automatically).
     * The returned entry still holds the victim's old contents.
     */
    TagEntry *findVictim(Addr addr);

    /**
     * Pick a victim restricted to entries satisfying @p pred (e.g.
     * "Invalid or Shared only" for snarfs). Returns nullptr if no way
     * qualifies.
     */
    TagEntry *findVictimAmong(
        Addr addr, const std::function<bool(const TagEntry &)> &pred);

    /**
     * Informed victim selection (the paper's future-work replacement
     * extension): among the *colder half* of the set, prefer entries
     * satisfying @p cheap (e.g. "the WBHT says this line is already
     * in the L3, so evicting it is nearly free"). Falls back to
     * findVictim() when the policy cannot rank ways or nothing cold
     * matches.
     */
    TagEntry *findVictimInformed(
        Addr addr, const std::function<bool(const TagEntry &)> &cheap);

    /**
     * Install @p addr into @p victim (obtained from findVictim*).
     * Resets the per-line metadata bits.
     */
    void insert(TagEntry *victim, Addr addr, LineState state,
                InsertPos pos = InsertPos::Mru);

    /** Invalidate an entry (keeps replacement metadata untouched). */
    void invalidate(TagEntry *entry);

    /** Does the set of @p addr contain an entry satisfying @p pred?
     * (Non-mutating; used by snarf-accept snooping.) */
    bool anyInSet(Addr addr,
                  const std::function<bool(const TagEntry &)> &pred)
        const;

    /** Count valid lines (test/analysis helper; O(capacity)). */
    std::uint64_t countValid() const;

    /** Iterate over all entries (analysis hooks). */
    void forEach(const std::function<void(const TagEntry &)> &fn) const;

  private:
    unsigned wayOf(const TagEntry *e, unsigned set) const;

    unsigned assoc_;
    unsigned lineSize_;
    unsigned lineShift_;
    Addr lineMask_;
    unsigned numSets_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<TagEntry> entries_; // numSets x assoc
};

} // namespace cmpcache

#endif // CMPCACHE_MEM_TAG_ARRAY_HH
