/**
 * @file
 * Set-associative tag array with coherence state and the metadata bits
 * the paper's mechanisms need (snarfed / snarf-used tracking).
 *
 * Timing lives in the controllers; the array is purely structural.
 *
 * The set-scan methods (lookup, peek, findVictim*, anyInSet) are the
 * per-reference hot path: they live in the header, take predicates as
 * template parameters so controller lambdas inline, and hand the
 * replacement policy a 64-bit candidate way mask instead of a
 * heap-allocated index vector. Only cold walks (forEach) keep the
 * type-erased std::function interface.
 */

#ifndef CMPCACHE_MEM_TAG_ARRAY_HH
#define CMPCACHE_MEM_TAG_ARRAY_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/state.hh"
#include "common/types.hh"
#include "mem/replacement.hh"

namespace cmpcache
{

/** One tag entry. */
struct TagEntry
{
    /** Line-aligned address (full address, not a truncated tag). */
    Addr lineAddr = InvalidAddr;
    LineState state = LineState::Invalid;
    /** Line was installed by snarfing a peer write back. */
    bool snarfed = false;
    /** Snarfed line was already counted as used locally. */
    bool snarfUsedLocal = false;
    /** Snarfed line was already counted as an intervention source. */
    bool snarfUsedIntervention = false;

    bool valid() const { return isValid(state); }
};

class TagArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc      associativity (<= 64, for way masks)
     * @param line_size  line size in bytes (power of two)
     * @param policy     replacement policy (owned)
     */
    TagArray(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
             std::unique_ptr<ReplacementPolicy> policy);

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineSize() const { return lineSize_; }
    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(numSets_) * assoc_ * lineSize_;
    }

    /** Line-align an address. */
    Addr lineAlign(Addr addr) const { return addr & ~lineMask_; }

    /** Set index of an address. */
    unsigned setIndex(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_)
                                     & (numSets_ - 1));
    }

    /**
     * Look up a line.
     * @param addr  any address within the line
     * @param touch update replacement state on hit
     * @return the entry, or nullptr on miss
     */
    TagEntry *
    lookup(Addr addr, bool touch = true)
    {
        const Addr line = lineAlign(addr);
        const unsigned set = setIndex(addr);
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        // Scan the dense tag mirror: a 16-way set spans two cache
        // lines instead of four. Invalid slots hold InvalidAddr
        // (enforced by invalidate()), which no aligned address
        // equals, so the tag compare alone decides the hit.
        const Addr *tags = &tags_[base];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (tags[w] == line) {
                if (touch)
                    touchPolicy(set, w);
                return &entries_[base + w];
            }
        }
        return nullptr;
    }

    const TagEntry *
    peek(Addr addr) const
    {
        const Addr line = lineAlign(addr);
        const unsigned set = setIndex(addr);
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const Addr *tags = &tags_[base]; // see lookup()
        for (unsigned w = 0; w < assoc_; ++w) {
            if (tags[w] == line)
                return &entries_[base + w];
        }
        return nullptr;
    }

    /**
     * Pick a victim way for filling @p addr using the replacement
     * policy over all ways (invalid ways win automatically).
     * The returned entry still holds the victim's old contents.
     */
    TagEntry *
    findVictim(Addr addr)
    {
        const unsigned set = setIndex(addr);
        auto *base = setBase(set);
        // Invalid ways are free fills.
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!base[w].valid())
                return &base[w];
        }
        return &base[victimPolicy(set, allWaysMask(assoc_))];
    }

    /**
     * Pick a victim restricted to entries satisfying @p pred (e.g.
     * "Invalid or Shared only" for snarfs). Returns nullptr if no way
     * qualifies. @p pred must be stateless with respect to scan order.
     */
    template <typename Pred>
    TagEntry *
    findVictimAmong(Addr addr, Pred &&pred)
    {
        const unsigned set = setIndex(addr);
        auto *base = setBase(set);
        WayMask cands = 0;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (pred(static_cast<const TagEntry &>(base[w]))) {
                if (!base[w].valid())
                    return &base[w]; // invalid candidates win outright
                cands |= WayMask{1} << w;
            }
        }
        if (!cands)
            return nullptr;
        return &base[victimPolicy(set, cands)];
    }

    /**
     * Informed victim selection (the paper's future-work replacement
     * extension): among the *colder half* of the set, prefer entries
     * satisfying @p cheap (e.g. "the WBHT says this line is already
     * in the L3, so evicting it is nearly free"). Falls back to
     * findVictim() when the policy cannot rank ways or nothing cold
     * matches.
     */
    template <typename Pred>
    TagEntry *
    findVictimInformed(Addr addr, Pred &&cheap)
    {
        const unsigned set = setIndex(addr);
        auto *base = setBase(set);
        // Invalid ways always win.
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!base[w].valid())
                return &base[w];
        }
        if (!policy_->hasRanks())
            return findVictim(addr);

        // Cheapest victim: a "cheap" entry in the colder half of the
        // set, coldest first.
        TagEntry *best = nullptr;
        unsigned best_rank = assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            const unsigned r = policy_->rank(set, w);
            if (r < assoc_ / 2
                && cheap(static_cast<const TagEntry &>(base[w]))
                && r < best_rank) {
                best_rank = r;
                best = &base[w];
            }
        }
        return best ? best : findVictim(addr);
    }

    /**
     * Install @p addr into @p victim (obtained from findVictim*).
     * Resets the per-line metadata bits.
     */
    void insert(TagEntry *victim, Addr addr, LineState state,
                InsertPos pos = InsertPos::Mru);

    /** Invalidate an entry (keeps replacement metadata untouched). */
    void invalidate(TagEntry *entry);

    /** Does the set of @p addr contain an entry satisfying @p pred?
     * (Non-mutating; used by snarf-accept snooping. Entries are
     * visited in ascending way order with early exit on true, so
     * stateful accumulator predicates behave deterministically.) */
    template <typename Pred>
    bool
    anyInSet(Addr addr, Pred &&pred) const
    {
        const unsigned set = setIndex(addr);
        const auto *base = setBase(set);
        for (unsigned w = 0; w < assoc_; ++w) {
            if (pred(base[w]))
                return true;
        }
        return false;
    }

    /** Count valid lines (test/analysis helper; O(capacity)). */
    std::uint64_t countValid() const;

    /** Iterate over all entries (analysis hooks; cold path). */
    void forEach(const std::function<void(const TagEntry &)> &fn) const;

  private:
    /**
     * Devirtualized policy fast path: the default policy is LRU, so
     * the constructor caches a concrete pointer (LruPolicy is final)
     * and the per-reference calls inline; other policies take the
     * virtual call.
     */
    void
    touchPolicy(unsigned set, unsigned way)
    {
        if (lru_)
            lru_->touch(set, way);
        else
            policy_->touch(set, way);
    }

    unsigned
    victimPolicy(unsigned set, WayMask candidates)
    {
        if (lru_)
            return lru_->victim(set, candidates);
        return policy_->victim(set, candidates);
    }

    TagEntry *
    setBase(unsigned set)
    {
        return &entries_[static_cast<std::size_t>(set) * assoc_];
    }

    const TagEntry *
    setBase(unsigned set) const
    {
        return &entries_[static_cast<std::size_t>(set) * assoc_];
    }

    unsigned wayOf(const TagEntry *e, unsigned set) const;

    unsigned assoc_;
    unsigned lineSize_;
    unsigned lineShift_;
    Addr lineMask_;
    unsigned numSets_;
    std::unique_ptr<ReplacementPolicy> policy_;
    LruPolicy *lru_ = nullptr; // set iff policy_ is an LruPolicy
    std::vector<TagEntry> entries_; // numSets x assoc
    /**
     * Dense mirror of entries_[i].lineAddr, kept in sync by insert()
     * and invalidate() (the only writers of lineAddr). lookup()/peek()
     * scan it instead of the 16-byte entries.
     */
    std::vector<Addr> tags_;
};

} // namespace cmpcache

#endif // CMPCACHE_MEM_TAG_ARRAY_HH
