/**
 * @file
 * Pluggable replacement policies for set-associative arrays.
 *
 * A policy owns per-(set, way) metadata; the array calls touch() on
 * hits, insert() on fills, and victim() to rank replacement
 * candidates. insert() takes an InsertPos so the snarf mechanism can
 * experiment with recipient-side LRU management (the paper calls out
 * "managing the LRU information at the recipient cache" explicitly).
 */

#ifndef CMPCACHE_MEM_REPLACEMENT_HH
#define CMPCACHE_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace cmpcache
{

/** Where a newly inserted line lands in the recency order. */
enum class InsertPos
{
    Mru, ///< normal fill
    Lru, ///< insert cold (ablation for snarfed lines)
};

class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Allocate metadata for @p sets x @p ways. */
    virtual void init(unsigned sets, unsigned ways) = 0;

    /** A hit on (set, way). */
    virtual void touch(unsigned set, unsigned way) = 0;

    /** A fill into (set, way). */
    virtual void insert(unsigned set, unsigned way, InsertPos pos) = 0;

    /**
     * Choose the replacement victim among @p candidate_ways (indices
     * into the set; non-empty).
     */
    virtual unsigned victim(unsigned set,
                            const std::vector<unsigned> &candidate_ways)
        = 0;

    /** Policies that can rank ways by recency expose it (0 = LRU). */
    virtual bool hasRanks() const { return false; }

    /** Recency rank of a way (only meaningful when hasRanks()). */
    virtual unsigned
    rank(unsigned set, unsigned way) const
    {
        (void)set;
        (void)way;
        return 0;
    }

    virtual std::string name() const = 0;
};

/** True least-recently-used via per-way timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    unsigned victim(unsigned set,
                    const std::vector<unsigned> &candidate_ways) override;
    std::string name() const override { return "lru"; }

    bool hasRanks() const override { return true; }

    /** Recency rank of a way: 0 = LRU ... ways-1 = MRU. */
    unsigned rank(unsigned set, unsigned way) const override;

  private:
    unsigned ways_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_; // sets x ways
};

/** Tree pseudo-LRU (power-of-two ways). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    unsigned victim(unsigned set,
                    const std::vector<unsigned> &candidate_ways) override;
    std::string name() const override { return "tree-plru"; }

  private:
    void promote(unsigned set, unsigned way);

    unsigned ways_ = 0;
    std::vector<std::uint8_t> bits_; // sets x (ways-1)
};

/** Deterministic pseudo-random replacement. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 7);

    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override {(void)set;(void)way;}
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    unsigned victim(unsigned set,
                    const std::vector<unsigned> &candidate_ways) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Not-recently-used: one reference bit per way, cleared in sweeps. */
class NruPolicy : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    unsigned victim(unsigned set,
                    const std::vector<unsigned> &candidate_ways) override;
    std::string name() const override { return "nru"; }

  private:
    unsigned ways_ = 0;
    std::vector<std::uint8_t> refBit_;
};

/** Factory: "lru", "tree-plru", "random", "nru". */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name);

} // namespace cmpcache

#endif // CMPCACHE_MEM_REPLACEMENT_HH
