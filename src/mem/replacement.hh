/**
 * @file
 * Pluggable replacement policies for set-associative arrays.
 *
 * A policy owns per-(set, way) metadata; the array calls touch() on
 * hits, insert() on fills, and victim() to rank replacement
 * candidates. insert() takes an InsertPos so the snarf mechanism can
 * experiment with recipient-side LRU management (the paper calls out
 * "managing the LRU information at the recipient cache" explicitly).
 */

#ifndef CMPCACHE_MEM_REPLACEMENT_HH
#define CMPCACHE_MEM_REPLACEMENT_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace cmpcache
{

/** Where a newly inserted line lands in the recency order. */
enum class InsertPos
{
    Mru, ///< normal fill
    Lru, ///< insert cold (ablation for snarfed lines)
};

/**
 * Candidate ways as a bit mask (bit w = way w eligible). Policies
 * scan candidates in ascending way order, so ties resolve exactly as
 * they did with the old ascending candidate vectors.
 */
using WayMask = std::uint64_t;

/** Mask with the low @p ways bits set (ways <= 64). */
constexpr WayMask
allWaysMask(unsigned ways)
{
    return ways >= 64 ? ~WayMask{0} : (WayMask{1} << ways) - 1;
}

class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Allocate metadata for @p sets x @p ways. */
    virtual void init(unsigned sets, unsigned ways) = 0;

    /** A hit on (set, way). */
    virtual void touch(unsigned set, unsigned way) = 0;

    /** A fill into (set, way). */
    virtual void insert(unsigned set, unsigned way, InsertPos pos) = 0;

    /**
     * Choose the replacement victim among the ways set in
     * @p candidates (non-zero).
     */
    virtual unsigned victim(unsigned set, WayMask candidates) = 0;

    /**
     * Convenience overload taking explicit way indices (tests,
     * analysis tools). The candidates are treated as a *set*: ties
     * break toward the lowest way index, matching the ascending
     * vectors every caller historically passed.
     */
    unsigned
    victim(unsigned set, const std::vector<unsigned> &candidate_ways)
    {
        WayMask m = 0;
        for (const unsigned w : candidate_ways)
            m |= WayMask{1} << w;
        return victim(set, m);
    }

    /** Policies that can rank ways by recency expose it (0 = LRU). */
    virtual bool hasRanks() const { return false; }

    /** Recency rank of a way (only meaningful when hasRanks()). */
    virtual unsigned
    rank(unsigned set, unsigned way) const
    {
        (void)set;
        (void)way;
        return 0;
    }

    virtual std::string name() const = 0;
};

/**
 * True least-recently-used via per-way timestamps.
 *
 * The class is final and its per-reference methods are defined inline
 * so TagArray's concrete-pointer fast path (the default policy is
 * LRU) devirtualizes and inlines them.
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;

    void
    touch(unsigned set, unsigned way) override
    {
        stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
    }

    void
    insert(unsigned set, unsigned way, InsertPos pos) override
    {
        auto &s = stamp_[static_cast<std::size_t>(set) * ways_ + way];
        // Lru insertion lands colder than everything resident.
        s = pos == InsertPos::Mru ? ++clock_ : 0;
    }

    using ReplacementPolicy::victim;

    unsigned
    victim(unsigned set, WayMask candidates) override
    {
        const auto *s = &stamp_[static_cast<std::size_t>(set) * ways_];
        if (candidates == allWaysMask(ways_)) {
            // Full-set scan (the common findVictim case): a plain
            // loop the compiler can unroll, visiting the same ways in
            // the same order as the mask walk below.
            unsigned best = 0;
            std::uint64_t best_stamp = s[0];
            for (unsigned w = 1; w < ways_; ++w) {
                if (s[w] < best_stamp) {
                    best_stamp = s[w];
                    best = w;
                }
            }
            return best;
        }
        unsigned best = static_cast<unsigned>(
            std::countr_zero(candidates));
        std::uint64_t best_stamp = MaxTick;
        for (WayMask m = candidates; m; m &= m - 1) {
            const auto w =
                static_cast<unsigned>(std::countr_zero(m));
            if (s[w] < best_stamp) {
                best_stamp = s[w];
                best = w;
            }
        }
        return best;
    }

    std::string name() const override { return "lru"; }

    bool hasRanks() const override { return true; }

    /** Recency rank of a way: 0 = LRU ... ways-1 = MRU. */
    unsigned rank(unsigned set, unsigned way) const override;

  private:
    unsigned ways_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_; // sets x ways
};

/** Tree pseudo-LRU (power-of-two ways). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    using ReplacementPolicy::victim;
    unsigned victim(unsigned set, WayMask candidates) override;
    std::string name() const override { return "tree-plru"; }

  private:
    void promote(unsigned set, unsigned way);

    unsigned ways_ = 0;
    std::vector<std::uint8_t> bits_; // sets x (ways-1)
};

/** Deterministic pseudo-random replacement. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 7);

    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override {(void)set;(void)way;}
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    using ReplacementPolicy::victim;
    unsigned victim(unsigned set, WayMask candidates) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Not-recently-used: one reference bit per way, cleared in sweeps. */
class NruPolicy : public ReplacementPolicy
{
  public:
    void init(unsigned sets, unsigned ways) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way, InsertPos pos) override;
    using ReplacementPolicy::victim;
    unsigned victim(unsigned set, WayMask candidates) override;
    std::string name() const override { return "nru"; }

  private:
    unsigned ways_ = 0;
    std::vector<std::uint8_t> refBit_;
};

/** Factory: "lru", "tree-plru", "random", "nru". */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name);

} // namespace cmpcache

#endif // CMPCACHE_MEM_REPLACEMENT_HH
