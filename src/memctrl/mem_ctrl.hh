/**
 * @file
 * The on-chip memory controller: fixed-latency, bandwidth-limited
 * DRAM behind its own pathway (distinct from the L3's).
 */

#ifndef CMPCACHE_MEMCTRL_MEM_CTRL_HH
#define CMPCACHE_MEMCTRL_MEM_CTRL_HH

#include <vector>

#include "ring/ring.hh"
#include "sim/sim_object.hh"

namespace cmpcache
{

struct MemParams
{
    Tick accessLatency = 376;  ///< array access when supplying a line
    Tick channelOccupancy = 6; ///< service interval per line
};

class MemCtrl : public SimObject, public BusAgent
{
  public:
    MemCtrl(stats::Group *parent, EventQueue &eq, AgentId id,
            RingStop ring_stop, const MemParams &p);

    /** A dirty L3 victim arrives over the dedicated path. */
    void writeFromL3();

    // BusAgent interface
    AgentId agentId() const override { return id_; }
    RingStop ringStop() const override { return stop_; }
    SnoopResponse snoop(const BusRequest &req) override;
    void observeCombined(const BusRequest &req,
                         const CombinedResult &res) override;
    Tick scheduleSupply(const BusRequest &req, Tick combine_time)
        override;

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }

  private:
    AgentId id_;
    RingStop stop_;
    MemParams params_;
    Tick channelFree_ = 0;
    /** Completion tick of each in-flight demand read; pruned lazily
     * on the next scheduleSupply, so it stays a handful of entries. */
    std::vector<Tick> inflight_;

    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Average queueWait_;
    /** Demand reads in flight right now (sampler probe). */
    stats::Formula outstandingNow_;
};

} // namespace cmpcache

#endif // CMPCACHE_MEMCTRL_MEM_CTRL_HH
