#include "memctrl/mem_ctrl.hh"

#include <algorithm>

namespace cmpcache
{

MemCtrl::MemCtrl(stats::Group *parent, EventQueue &eq, AgentId id,
                 RingStop ring_stop, const MemParams &p)
    : SimObject(parent, "mem", eq),
      id_(id),
      stop_(ring_stop),
      params_(p),
      reads_(this, "reads", "demand lines supplied from memory"),
      writes_(this, "writes", "lines written (dirty L3 victims)"),
      queueWait_(this, "queue_wait",
                 "cycles demand reads waited for the channel"),
      outstandingNow_(this, "outstanding_reads_now",
                      "demand reads in flight right now",
                      [this] {
                          const Tick now = curTick();
                          std::size_t n = 0;
                          for (const Tick done : inflight_)
                              n += done > now;
                          return static_cast<double>(n);
                      })
{
}

SnoopResponse
MemCtrl::snoop(const BusRequest &req)
{
    // Memory never retries demand requests and, in the modelled
    // protocol, never absorbs L2 write backs (the L3 retries instead).
    SnoopResponse resp;
    resp.responder = id_;
    (void)req;
    return resp;
}

void
MemCtrl::observeCombined(const BusRequest &req, const CombinedResult &res)
{
    (void)req;
    (void)res;
}

Tick
MemCtrl::scheduleSupply(const BusRequest &req, Tick combine_time)
{
    (void)req;
    const Tick start = std::max(combine_time, channelFree_);
    queueWait_.sample(static_cast<double>(start - combine_time));
    channelFree_ = start + params_.channelOccupancy;
    ++reads_;
    const Tick done = start + params_.accessLatency;
    std::erase_if(inflight_,
                  [now = curTick()](Tick t) { return t <= now; });
    inflight_.push_back(done);
    return done;
}

void
MemCtrl::writeFromL3()
{
    channelFree_ =
        std::max(channelFree_, curTick()) + params_.channelOccupancy;
    ++writes_;
}

} // namespace cmpcache
