/**
 * @file
 * The L2 cache controller.
 *
 * One L2 is shared by two cores (four hardware threads) and is a
 * point of coherence: it snoops the address ring, sources
 * interventions, issues write backs for every valid victim (the
 * baseline policy), and hosts the paper's two adaptive mechanisms:
 * the Write Back History Table (selective clean write backs) and the
 * snarf table / snarf-accept logic (L2-to-L2 write backs).
 */

#ifndef CMPCACHE_L2_L2_CACHE_HH
#define CMPCACHE_L2_L2_CACHE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "common/flat_map.hh"
#include "common/inplace_function.hh"
#include "core/policy.hh"
#include "core/retry_monitor.hh"
#include "core/snarf_table.hh"
#include "core/wbht.hh"
#include "mem/mshr.hh"
#include "mem/tag_array.hh"
#include "mem/write_back_queue.hh"
#include "ring/ring.hh"
#include "sim/sim_object.hh"
#include "trace/trace.hh"

namespace cmpcache
{

class FaultInjector;
class VersionOracle;

/** Structural and timing parameters of one L2 cache. */
struct L2Params
{
    std::uint64_t sizeBytes = 2 * 1024 * 1024; ///< 4 slices x 512 KB
    unsigned assoc = 8;
    unsigned lineSize = 128;
    unsigned slices = 4;
    std::string replPolicy = "lru";

    /**
     * Allow clean (SL/E) copies to source cache-to-cache transfers.
     * The paper's POWER4-style protocol supports interventions "for
     * all dirty lines and a subset of lines in the shared state";
     * disabling this ablates the shared-intervention capability the
     * snarf mechanism builds on (dirty interventions remain).
     */
    bool cleanInterventions = true;

    Tick hitLatency = 20;    ///< load-to-use on an L2 hit
    Tick supplyLatency = 23; ///< array access when sourcing data
    Tick supplyOccupancy = 8;///< slice bank busy time per supply
    Tick fillLatency = 10;   ///< data arrival -> waiter completion
    Tick wbhtLookupDelay = 4;///< extra WB-queue residency for lookup
    Tick retryBackoff = 40;  ///< wait after a Retry combined response
    unsigned mshrs = 32;
    unsigned wbqDepth = 8;
};

class L2Cache : public SimObject, public BusAgent
{
  public:
    /** Outcome of a CPU-side access. */
    enum class AccessResult
    {
        Hit,     ///< completes after hitLatency; no slot consumed
        Miss,    ///< outstanding-miss slot consumed; callback later
        Blocked, ///< resources full; retry the access later
    };

    L2Cache(stats::Group *parent, EventQueue &eq, const std::string &name,
            AgentId id, RingStop ring_stop, const L2Params &p,
            const PolicyConfig &policy, Ring &ring,
            RetryMonitor *retry_monitor);

    /** CPU-side access from a hardware thread. */
    AccessResult access(ThreadId tid, Addr addr, MemOp op);

    /**
     * Side-effect-free probe: would access() return Hit right now?
     * Mirrors exactly the hit condition (valid tags entry; stores
     * additionally need silent-store permission) without touching
     * replacement state, stats, or the coherence oracle. The CPU hit
     * fast path probes before committing to a batched access; the
     * subsequent access() performs every side effect at the exact
     * serial tick.
     */
    bool wouldHit(Addr addr, MemOp op) const
    {
        const TagEntry *entry = tags_.peek(tags_.lineAlign(addr));
        return entry
               && (op != MemOp::Store || canSilentStore(entry->state));
    }

    /** Invoked when an outstanding miss of @p tid completes. Stored
     * inline (no allocation); captures are limited to a few words. */
    using CompletionCallback = InplaceFunction<void(ThreadId), 32>;
    void setCompletionCallback(CompletionCallback cb)
    {
        cpuDone_ = std::move(cb);
    }

    /** Oracle used to score WBHT decisions (peeks the real L3). */
    using L3PeekFn = InplaceFunction<bool(Addr), 32>;
    void setL3Peek(L3PeekFn fn)
    {
        l3Peek_ = std::move(fn);
    }

    /**
     * Install the fault injector (null disables injection). The L2
     * consults it for the table-disable faults: DisableWbht forces
     * baseline write-back behaviour, DisableSnarf stops both snarf
     * flagging and snarf-accept offers while the window is open.
     */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /**
     * Conformance oracle (check.oracle; null disables reporting).
     * The L2 reports committed stores and every locally decided copy
     * drop -- losses the combined response cannot see (snarf-victim
     * reservations, dropped snarf data, WBHT aborts, write backs
     * resolving after the line was refetched).
     */
    void setConformance(VersionOracle *o) { oracle_ = o; }

    // BusAgent interface
    AgentId agentId() const override { return id_; }
    RingStop ringStop() const override { return stop_; }
    SnoopResponse snoop(const BusRequest &req) override;
    void observeCombined(const BusRequest &req,
                         const CombinedResult &res) override;
    Tick scheduleSupply(const BusRequest &req, Tick combine_time)
        override;
    void receiveData(const BusRequest &req,
                     const CombinedResult &res) override;
    void receiveWriteBack(const BusRequest &req) override;

    // Introspection (tests, experiment harness)
    TagArray &tags() { return tags_; }
    const L2Params &params() const { return params_; }
    WriteBackHistoryTable *wbht() { return wbht_.get(); }
    const WriteBackHistoryTable *wbht() const { return wbht_.get(); }
    SnarfTable *snarfTable() { return snarfTable_.get(); }
    const SnarfTable *snarfTable() const { return snarfTable_.get(); }
    const PolicyConfig &policy() const { return policy_; }

    std::uint64_t demandAccesses() const { return accesses_.value(); }
    std::uint64_t demandHits() const { return hits_.value(); }
    double hitRate() const;
    std::uint64_t wbIssued() const { return wbIssued_.value(); }
    std::uint64_t wbSnarfedOutCount() const
    {
        return wbSnarfedOut_.value();
    }
    std::uint64_t wbAbortedByWbht() const
    {
        return wbAbortedByWbht_.value();
    }
    std::uint64_t snarfedReceived() const
    {
        return snarfedReceived_.value();
    }
    std::uint64_t snarfedUsedLocally() const
    {
        return snarfLocalUse_.value();
    }
    std::uint64_t snarfedUsedForIntervention() const
    {
        return snarfInterventionUse_.value();
    }

    // Watchdog / diagnostics
    const WriteBackQueue &writeBackQueue() const { return wbq_; }
    MshrFile &mshrFile() { return mshrs_; }
    /** Snarf wins still awaiting their data (invariant checker: must
     * be zero once the machine has quiesced). */
    std::size_t pendingSnarfCount() const
    {
        return pendingSnarfs_.size();
    }
    /** Snarf buffer reservations held right now (ditto). */
    unsigned snarfInFlightCount() const { return snarfInFlight_; }
    /** TEST ONLY: forge a dangling snarf reservation so the
     * invariant checker's negative path can be exercised. */
    void forgePendingSnarfForTest(Addr line)
    {
        pendingSnarfs_[tags_.lineAlign(line)] = PendingSnarf{};
        ++snarfInFlight_;
    }
    /** Write backs resolved one way or another (forward-progress
     * signal: accepted by the L3, squashed, snarfed out, or aborted
     * by the WBHT). */
    std::uint64_t wbCompleted() const
    {
        return wbAcceptedL3_.value() + wbSquashed_.value()
               + wbSnarfedOut_.value() + wbAbortedByWbht_.value();
    }

  private:
    void tryIssue(Mshr *mshr);
    void scheduleWbDrain();
    void drainWriteBacks();
    void handleFill(const BusRequest &req, const CombinedResult &res);
    void completeWaiter(const MshrWaiter &w, Tick delay);
    /** Push a victim into the WB queue (caller checked capacity). */
    void queueWriteBack(const TagEntry &victim);
    /** Can the snarf algorithm find space for @p addr here? */
    bool snarfVictimAvailable(Addr addr);
    bool wbhtDecisionsActive() const;

    AgentId id_;
    RingStop stop_;
    L2Params params_;
    PolicyConfig policy_;
    Ring &ring_;
    RetryMonitor *retryMonitor_;
    FaultInjector *faults_ = nullptr;
    VersionOracle *oracle_ = nullptr;

    TagArray tags_;
    MshrFile mshrs_;
    WriteBackQueue wbq_;
    std::unique_ptr<WriteBackHistoryTable> wbht_;
    std::unique_ptr<SnarfTable> snarfTable_;

    CompletionCallback cpuDone_;
    L3PeekFn l3Peek_;

    /** Snarfed lines won on the bus, awaiting their data. */
    struct PendingSnarf
    {
        bool dirty = false;
        /** Clean sharers existed at combine time (Tagged install). */
        bool sharers = false;
    };
    FlatMap<PendingSnarf> pendingSnarfs_;
    unsigned snarfInFlight_ = 0;

    /** Reused fill-time buffer for waiters parked on an upgrade. */
    std::vector<MshrWaiter> storesPendingScratch_;

    /** Per-slice bank availability for sourcing data. */
    std::vector<Tick> sliceFree_;

    EventFunctionWrapper wbDrainEvent_;

    // --- statistics ---
    stats::Scalar accesses_;
    stats::Scalar loads_;
    stats::Scalar stores_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar upgradeRequests_;
    stats::Scalar coalescedMisses_;
    stats::Scalar blockedMshr_;
    stats::Scalar blockedWbq_;
    stats::Scalar busRetriesSeen_;
    stats::Histogram missLatency_;

    stats::Scalar wbEnqueued_;
    stats::Scalar wbIssued_;
    stats::Scalar wbIssuedClean_;
    stats::Scalar wbIssuedDirty_;
    stats::Scalar wbAbortedByWbht_;
    stats::Scalar wbSquashed_;
    stats::Scalar wbSnarfedOut_;
    stats::Scalar wbAcceptedL3_;

    stats::Scalar interventionsSupplied_;
    stats::Scalar snarfedReceived_;
    stats::Scalar snarfedDropped_;
    stats::Scalar snarfLocalUse_;
    stats::Scalar snarfInterventionUse_;

    // Instantaneous occupancy gauges (sampler probes).
    stats::Formula wbqDepthNow_;
    stats::Formula mshrOccupancyNow_;
    stats::Formula wbhtGateNow_;
};

} // namespace cmpcache

#endif // CMPCACHE_L2_L2_CACHE_HH
