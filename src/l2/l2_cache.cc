#include "l2/l2_cache.hh"

#include <algorithm>

#include "check/version_oracle.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace cmpcache
{

L2Cache::L2Cache(stats::Group *parent, EventQueue &eq,
                 const std::string &name, AgentId id, RingStop ring_stop,
                 const L2Params &p, const PolicyConfig &policy,
                 Ring &ring, RetryMonitor *retry_monitor)
    : SimObject(parent, name, eq),
      id_(id),
      stop_(ring_stop),
      params_(p),
      policy_(policy),
      ring_(ring),
      retryMonitor_(retry_monitor),
      tags_(p.sizeBytes, p.assoc, p.lineSize,
            makeReplacementPolicy(p.replPolicy)),
      mshrs_(p.mshrs),
      wbq_(p.wbqDepth),
      sliceFree_(p.slices, 0),
      wbDrainEvent_([this] { drainWriteBacks(); }, name + "-wb-drain"),
      accesses_(this, "accesses", "CPU-side demand accesses"),
      loads_(this, "loads", "demand loads and ifetches"),
      stores_(this, "stores", "demand stores"),
      hits_(this, "hits", "demand hits"),
      misses_(this, "misses", "demand misses (MSHR allocations)"),
      upgradeRequests_(this, "upgrade_requests",
                       "stores needing an Upgrade transaction"),
      coalescedMisses_(this, "coalesced_misses",
                       "misses folded into an existing MSHR"),
      blockedMshr_(this, "blocked_mshr",
                   "accesses rejected: MSHRs full"),
      blockedWbq_(this, "blocked_wbq",
                  "accesses rejected: write-back queue full"),
      busRetriesSeen_(this, "bus_retries_seen",
                      "own transactions answered with Retry"),
      missLatency_(this, "miss_latency",
                   "demand miss latency (cycles)", 0, 1200, 24),
      wbEnqueued_(this, "wb_enqueued", "victims entering the WB queue"),
      wbIssued_(this, "wb_issued",
                "write-back bus transactions issued (incl. retries)"),
      wbIssuedClean_(this, "wb_issued_clean",
                     "clean write-back transactions issued"),
      wbIssuedDirty_(this, "wb_issued_dirty",
                     "dirty write-back transactions issued"),
      wbAbortedByWbht_(this, "wb_aborted_by_wbht",
                       "clean write backs aborted by the WBHT"),
      wbSquashed_(this, "wb_squashed",
                  "own write backs squashed (copy already valid)"),
      wbSnarfedOut_(this, "wb_snarfed_out",
                    "own write backs absorbed by a peer L2"),
      wbAcceptedL3_(this, "wb_accepted_l3",
                    "own write backs accepted by the L3"),
      interventionsSupplied_(this, "interventions_supplied",
                             "lines sourced to peer L2 misses"),
      snarfedReceived_(this, "snarfed_received",
                       "peer write backs absorbed into this cache"),
      snarfedDropped_(this, "snarfed_dropped",
                      "won snarfs dropped (victim disappeared)"),
      snarfLocalUse_(this, "snarf_local_use",
                     "snarfed lines later hit by a local thread"),
      snarfInterventionUse_(this, "snarf_intervention_use",
                            "snarfed lines later sourced to peers"),
      wbqDepthNow_(this, "wbq_depth_now",
                   "write-back queue entries right now",
                   [this] {
                       return static_cast<double>(wbq_.size());
                   }),
      mshrOccupancyNow_(this, "mshr_occupancy_now",
                        "MSHRs in use right now",
                        [this] {
                            return static_cast<double>(mshrs_.inUse());
                        }),
      wbhtGateNow_(this, "wbht_gate_now",
                   "are WBHT decisions active right now (0/1)",
                   [this] {
                       return wbhtDecisionsActive() ? 1.0 : 0.0;
                   })
{
    if (policy_.usesWbht()) {
        auto wp = policy_.wbht;
        wp.lineSize = p.lineSize;
        wbht_ = std::make_unique<WriteBackHistoryTable>(this, wp);
    }
    if (policy_.usesSnarf()) {
        auto sp = policy_.snarf;
        sp.lineSize = p.lineSize;
        snarfTable_ = std::make_unique<SnarfTable>(this, sp);
    }
}

double
L2Cache::hitRate() const
{
    const auto a = accesses_.value();
    return a ? static_cast<double>(hits_.value())
                   / static_cast<double>(a)
             : 0.0;
}

bool
L2Cache::wbhtDecisionsActive() const
{
    if (!policy_.usesWbht())
        return false;
    if (faults_ && faults_->wbhtDisabled(curTick()))
        return false;
    if (!policy_.useRetrySwitch)
        return true;
    cmp_assert(retryMonitor_ != nullptr,
               "retry switch enabled without a monitor");
    return retryMonitor_->active(curTick());
}

// --------------------------------------------------------- CPU side

L2Cache::AccessResult
L2Cache::access(ThreadId tid, Addr addr, MemOp op)
{
    const Addr line = tags_.lineAlign(addr);
    const bool is_store = op == MemOp::Store;
    // Blocked attempts are re-issued by the CPU and must not inflate
    // the demand-access denominator; count on acceptance only.
    const auto count_access = [&] {
        ++accesses_;
        if (is_store)
            ++stores_;
        else
            ++loads_;
    };

    TagEntry *entry = tags_.lookup(line);
    if (entry) {
        // Loads and ifetches hit on any valid state; stores need
        // write permission.
        if (!is_store || canSilentStore(entry->state)) {
            count_access();
            ++hits_;
            if (is_store && entry->state == LineState::Exclusive)
                entry->state = LineState::Modified;
            if (is_store && oracle_)
                oracle_->onStore(id_, line, curTick());
            if (entry->snarfed && !entry->snarfUsedLocal) {
                entry->snarfUsedLocal = true;
                ++snarfLocalUse_;
            }
            return AccessResult::Hit;
        }
        // Store to S/SL/T: upgrade required.
        if (Mshr *m = mshrs_.find(line)) {
            mshrs_.addWaiter(m, tid, true, curTick());
            count_access();
            ++coalescedMisses_;
            return AccessResult::Miss;
        }
        if (mshrs_.full()) {
            ++blockedMshr_;
            return AccessResult::Blocked;
        }
        count_access();
        ++misses_;
        ++upgradeRequests_;
        Mshr *m = mshrs_.allocate(line, BusCmd::Upgrade, tid, true,
                                  curTick());
        tryIssue(m);
        return AccessResult::Miss;
    }

    // Tag miss.
    if (pendingSnarfs_.contains(line)) {
        // We already won this line's write back on the bus and its
        // data is in flight; issuing a demand fetch now would race it
        // (two installs of the same line). Hold the access off -- the
        // retried attempt hits the snarfed copy.
        ++blockedMshr_;
        return AccessResult::Blocked;
    }
    if (Mshr *m = mshrs_.find(line)) {
        mshrs_.addWaiter(m, tid, is_store, curTick());
        count_access();
        ++coalescedMisses_;
        return AccessResult::Miss;
    }
    if (mshrs_.full()) {
        ++blockedMshr_;
        return AccessResult::Blocked;
    }
    if (wbq_.full()) {
        // Fills need a WB-queue slot for the victim; conservatively
        // hold new misses off until one frees up (the paper's
        // "misses to the L2 will be blocked").
        ++blockedWbq_;
        return AccessResult::Blocked;
    }
    count_access();
    ++misses_;
    Mshr *m = mshrs_.allocate(
        line, is_store ? BusCmd::ReadExcl : BusCmd::Read, tid, is_store,
        curTick());
    tryIssue(m);
    return AccessResult::Miss;
}

void
L2Cache::tryIssue(Mshr *mshr)
{
    cmp_assert(!mshr->inService, "double issue of MSHR");
    mshr->inService = true;
    BusRequest req;
    req.lineAddr = mshr->lineAddr;
    req.cmd = mshr->cmd;
    req.requester = id_;
    ring_.issue(req);
}

// -------------------------------------------------- write-back path

void
L2Cache::queueWriteBack(const TagEntry &victim)
{
    cmp_assert(!wbq_.full(), "WB queue overflow");
    const bool dirty = isDirty(victim.state);
    Tick ready = curTick();
    if (!dirty && policy_.usesWbht())
        ready += params_.wbhtLookupDelay;
    wbq_.push(victim.lineAddr, dirty, ready);
    ++wbEnqueued_;
    scheduleWbDrain();
}

void
L2Cache::scheduleWbDrain()
{
    if (wbDrainEvent_.scheduled())
        return;
    const Tick earliest = wbq_.earliestReady();
    if (earliest == MaxTick)
        return;
    eventq().schedule(&wbDrainEvent_, std::max(earliest, curTick()));
}

void
L2Cache::drainWriteBacks()
{
    const Tick now = curTick();
    while (WbEntry *e = wbq_.nextReady(now)) {
        if (!e->dirty && policy_.usesWbht() && wbhtDecisionsActive()) {
            const bool in_l3 = l3Peek_ ? l3Peek_(e->lineAddr) : false;
            if (wbht_->shouldAbort(e->lineAddr, in_l3)) {
                ++wbAbortedByWbht_;
                // Unless we refetched the line in the meantime --
                // installed in the tags already, or still in flight
                // behind a demand MSHR (the self-refetch race) -- the
                // queued victim was our last copy: let the oracle
                // check a newer version survives elsewhere.
                if (oracle_
                    && !tags_.lookup(e->lineAddr, /*touch=*/false)
                    && !mshrs_.find(e->lineAddr))
                    oracle_->onLocalSquash(id_, e->lineAddr, now);
                wbq_.remove(e);
                continue;
            }
        }
        BusRequest req;
        req.lineAddr = e->lineAddr;
        req.cmd = e->dirty ? BusCmd::WbDirty : BusCmd::WbClean;
        req.requester = id_;
        if (policy_.usesSnarf()
            && !(faults_ && faults_->snarfDisabled(now)))
            req.snarfHint = snarfTable_->shouldFlagSnarf(e->lineAddr);
        e->snarfHint = req.snarfHint;
        e->inFlight = true;
        ++wbIssued_;
        if (e->dirty)
            ++wbIssuedDirty_;
        else
            ++wbIssuedClean_;
        ring_.issue(req);
    }
    scheduleWbDrain();
}

// ------------------------------------------------------- snoop side

bool
L2Cache::snarfVictimAvailable(Addr addr)
{
    // Invalid ways are free space.
    if (tags_.anyInSet(addr,
                       [](const TagEntry &e) { return !e.valid(); })) {
        return true;
    }
    if (!policy_.snarfSharedVictims)
        return false;
    // Accept over a Shared line when the set is not starved of them:
    // either the set's next replacement victim is Shared (so the
    // displacement was imminent anyway), or several Shared copies
    // coexist (another cache very likely holds a duplicate).
    const TagEntry *v = tags_.findVictim(addr);
    if (v && v->state == LineState::Shared)
        return true;
    unsigned shared_ways = 0;
    tags_.anyInSet(addr, [&shared_ways](const TagEntry &e) {
        shared_ways += e.state == LineState::Shared;
        return false;
    });
    return shared_ways >= 2;
}

SnoopResponse
L2Cache::snoop(const BusRequest &req)
{
    SnoopResponse resp;
    resp.responder = id_;
    const Addr line = req.lineAddr;

    // TEST ONLY (wb_blind_spot fault): pretend the transient copies
    // -- wbq victims, won snarfs, granted fills -- are invisible to
    // snoops, re-opening the PR-1 stale-data race so the conformance
    // oracle and the chaos minimizer have a real bug to catch.
    const bool blind = faults_ && faults_->wbBlindSpot(curTick());

    if (isWriteBack(req.cmd)) {
        // Peer L2s only examine their tags for snarf-flagged write
        // backs (pressure on L2 tags is why the snarf table exists).
        if (!policy_.usesSnarf() || !req.snarfHint)
            return resp;

        const TagEntry *entry = tags_.peek(line);
        if (entry) {
            // Valid copy here: the write back is redundant; squash it
            // via the special snoop reply.
            resp.hasLine = true;
            resp.hasDirty = isDirty(entry->state);
            return resp;
        }
        if (const WbEntry *queued = wbq_.find(line);
            queued && !blind) {
            // A victim parked in our write-back queue is still a copy
            // of the line: report it, or a concurrent peer write back
            // would see no sharers and its snarfer would install an
            // exclusive (Modified) copy next to the one our own write
            // back is about to hand to a third L2.
            resp.hasLine = true;
            resp.hasDirty = queued->dirty;
            return resp;
        }
        if (const PendingSnarf *ps = pendingSnarfs_.find(line);
            ps && !blind) {
            // Same story for a snarf we have already won: the copy is
            // in flight to us and will be installed, so a concurrent
            // write back of the line must count us as a sharer.
            resp.hasLine = true;
            resp.hasDirty = ps->dirty;
            return resp;
        }
        if (const Mshr *m = mshrs_.find(line);
            m && m->awaitingData && !blind) {
            // And for a demand fill the bus has already granted us:
            // the data is on its way and will be installed.
            resp.hasLine = true;
            resp.hasDirty = m->cmd == BusCmd::ReadExcl;
            return resp;
        }
        // Offer to absorb if we have buffers, a victim candidate, and
        // no conflicting activity on the line.
        if (snarfInFlight_ < policy_.snarfBuffers
            && !(faults_ && faults_->snarfDisabled(curTick()))
            && !mshrs_.find(line) && !wbq_.find(line)
            && !pendingSnarfs_.contains(line)
            && snarfVictimAvailable(line)) {
            resp.snarfAccept = true;
        }
        return resp;
    }

    // Demand request from a peer.
    // Address-collision serialization keeps concurrent misses to one
    // line from installing inconsistent states (the paper's protocol
    // counts such "race condition" retries in its retry-rate switch
    // input). We retry the peer when the line sits in our write-back
    // queue, or when our own transaction for it has already won the
    // bus (awaitingData). A merely-queued transaction of ours does
    // NOT retry -- otherwise two racing requesters would retry each
    // other forever; the one that combines first wins, the other
    // backs off.
    if (!blind && (wbq_.find(line) || pendingSnarfs_.contains(line))) {
        resp.retry = true;
        return resp;
    }
    if (const Mshr *m = mshrs_.find(line)) {
        if (m->awaitingData && !blind) {
            resp.retry = true;
            return resp;
        }
        // Our request lost the race; it will be retried/serviced
        // against the peer's installed copy later. Respond from the
        // tags below (nothing valid yet).
    }

    const TagEntry *entry = tags_.peek(line);
    if (entry) {
        resp = protocol::l2Snoop(entry->state, req.cmd, id_);
        if (!params_.cleanInterventions && !resp.hasDirty)
            resp.canSupply = false;
    }
    return resp;
}

Tick
L2Cache::scheduleSupply(const BusRequest &req, Tick combine_time)
{
    const unsigned slice =
        (req.lineAddr / params_.lineSize) % params_.slices;
    Tick start = std::max(combine_time, sliceFree_[slice]);
    sliceFree_[slice] = start + params_.supplyOccupancy;
    return start + params_.supplyLatency;
}

// --------------------------------------------- combined / data side

void
L2Cache::observeCombined(const BusRequest &req, const CombinedResult &res)
{
    const Addr line = req.lineAddr;
    const bool own = req.requester == id_;
    const bool effective = res.resp != CombinedResp::Retry;

    // ---- Observations every L2 makes on every transaction ----
    if (policy_.usesSnarf() && effective) {
        if (isWriteBack(req.cmd)) {
            snarfTable_->recordWriteBack(line);
        } else if (req.cmd == BusCmd::Read
                   || req.cmd == BusCmd::ReadExcl) {
            snarfTable_->recordMiss(line);
        }
    }
    if (policy_.globalWbhtAllocation() && req.cmd == BusCmd::WbClean
        && effective && res.l3HasLine) {
        wbht_->recordL3Valid(line);
    }

    if (!own) {
        if (!effective)
            return;

        if (isWriteBack(req.cmd)) {
            // Did we win the snarf arbitration?
            if (res.resp == CombinedResp::WbSnarfed
                && res.source == id_) {
                // Reserve the victim now (clean by construction, per
                // snarfVictimAvailable) so the slot is very likely
                // still there at data arrival.
                TagEntry *victim = tags_.findVictimAmong(
                    line,
                    [](const TagEntry &e) { return !e.valid(); });
                if (!victim && policy_.snarfSharedVictims) {
                    // LRU Shared way (mirrors snarfVictimAvailable).
                    victim = tags_.findVictimAmong(
                        line, [](const TagEntry &e) {
                            return e.state == LineState::Shared;
                        });
                }
                if (victim && victim->valid()) {
                    if (oracle_)
                        oracle_->onDropCopy(id_, victim->lineAddr,
                                            curTick());
                    tags_.invalidate(victim);
                }
                pendingSnarfs_[line] =
                    PendingSnarf{req.cmd == BusCmd::WbDirty,
                                 res.otherSharers};
                ++snarfInFlight_;
            }
            return;
        }

        // A snarf reservation cannot coexist with an effective peer
        // demand: our snoop retries demands while one is pending, and
        // the ring snoops and combines atomically per transaction.
        // (Unless the wb_blind_spot fault hid the reservation -- then
        // reaching this state *is* the injected bug, left for the
        // conformance oracle to flag at the stale supply.)
        cmp_assert(!pendingSnarfs_.contains(line)
                       || (faults_ && faults_->wbBlindSpot(curTick())),
                   "effective peer demand with a snarf reservation");

        // Apply our state transition.
        TagEntry *entry = tags_.lookup(line, /*touch=*/false);
        if (!entry)
            return;
        const LineState before = entry->state;
        entry->state = protocol::l2AfterSnoop(before, req.cmd);
        if (res.resp == CombinedResp::L2Data && res.source == id_) {
            ++interventionsSupplied_;
            if (entry->snarfed && !entry->snarfUsedIntervention) {
                entry->snarfUsedIntervention = true;
                ++snarfInterventionUse_;
            }
        }
        if (!isValid(entry->state))
            tags_.invalidate(entry);
        return;
    }

    // ---- Reactions to our own transaction ----
    if (isWriteBack(req.cmd)) {
        WbEntry *e = wbq_.findInFlight(line);
        cmp_assert(e != nullptr, "combined response for unknown WB");
        switch (res.resp) {
          case CombinedResp::Retry:
            ++busRetriesSeen_;
            e->inFlight = false;
            ++e->retries;
            // Deterministically staggered backoff: retried write
            // backs from different L2s (and successive retries of
            // the same line) must not re-collide in convoys.
            e->readyAt = curTick() + params_.retryBackoff
                         + 7u * id_ + 13u * (e->retries % 7u);
            scheduleWbDrain();
            return;
          case CombinedResp::WbSquashed:
            ++wbSquashed_;
            if (req.cmd == BusCmd::WbClean && res.l3HasLine
                && policy_.usesWbht()
                && !policy_.globalWbhtAllocation()) {
                wbht_->recordL3Valid(line);
            }
            // The squash drops our queued copy. Unless we refetched
            // the line meanwhile -- installed in the tags already, or
            // still in flight behind a demand MSHR (the self-refetch
            // race) -- that was our last one; the oracle checks a
            // newer version really does survive elsewhere.
            if (oracle_ && !tags_.lookup(line, /*touch=*/false)
                && !mshrs_.find(line))
                oracle_->onLocalSquash(id_, line, curTick());
            wbq_.remove(e);
            return;
          case CombinedResp::WbAcceptL3:
            ++wbAcceptedL3_;
            if (oracle_ && !tags_.lookup(line, /*touch=*/false)
                && !mshrs_.find(line))
                oracle_->onDropCopy(id_, line, curTick());
            wbq_.remove(e);
            return;
          case CombinedResp::WbSnarfed:
            ++wbSnarfedOut_;
            if (oracle_ && !tags_.lookup(line, /*touch=*/false)
                && !mshrs_.find(line))
                oracle_->onDropCopy(id_, line, curTick());
            wbq_.remove(e);
            return;
          default:
            cmp_panic("unexpected WB combined response ",
                      toString(res.resp));
        }
    }

    Mshr *m = mshrs_.find(line);
    cmp_assert(m != nullptr, "combined response for unknown miss");

    switch (res.resp) {
      case CombinedResp::Retry:
        ++busRetriesSeen_;
        m->inService = false;
        ++m->retries;
        // Re-find by address at fire time: the slot may have been
        // recycled for a different line by then.
        eventq().at(
            curTick() + params_.retryBackoff,
            [this, line] {
                Mshr *mm = mshrs_.find(line);
                if (mm && !mm->inService && !mm->awaitingData)
                    tryIssue(mm);
            },
            "l2-retry-backoff");
        return;

      case CombinedResp::Upgraded: {
        TagEntry *entry = tags_.lookup(line);
        if (entry && isValid(entry->state)) {
            entry->state = LineState::Modified;
            // Complete every waiter shortly (ownership granted).
            for (const auto &w : m->waiters) {
                if (w.isStore && oracle_)
                    oracle_->onStore(id_, line, curTick());
                completeWaiter(w, params_.fillLatency);
            }
            missLatency_.sample(
                static_cast<double>(curTick() - m->allocated));
            mshrs_.deallocate(m);
        } else {
            // Lost the line to a racing ReadExcl: refetch with intent
            // to modify.
            m->cmd = BusCmd::ReadExcl;
            m->inService = false;
            tryIssue(m);
        }
        return;
      }

      case CombinedResp::L2Data:
      case CombinedResp::L3Data:
      case CombinedResp::MemData:
        m->awaitingData = true;
        return;

      default:
        cmp_panic("unexpected miss combined response ",
                  toString(res.resp));
    }
}

void
L2Cache::completeWaiter(const MshrWaiter &w, Tick delay)
{
    if (!cpuDone_)
        return;
    const ThreadId tid = w.tid;
    eventq().at(curTick() + delay, [this, tid] { cpuDone_(tid); },
                "l2-cpu-done");
}

void
L2Cache::receiveData(const BusRequest &req, const CombinedResult &res)
{
    handleFill(req, res);
}

void
L2Cache::handleFill(const BusRequest &req, const CombinedResult &res)
{
    const Addr line = req.lineAddr;
    Mshr *m = mshrs_.find(line);
    cmp_assert(m && m->awaitingData, "fill without awaiting MSHR");

    TagEntry *entry = tags_.lookup(line);
    if (!entry) {
        TagEntry *victim;
        if (policy_.wbhtInformedReplacement && wbht_) {
            // Future-work extension: prefer evicting cold lines the
            // WBHT says are already in the L3 (their write back will
            // be aborted; a refetch costs only the L3 latency).
            victim = tags_.findVictimInformed(
                line, [this](const TagEntry &e) {
                    return wbht_->table().contains(e.lineAddr,
                                                   /*touch=*/false);
                });
        } else {
            victim = tags_.findVictim(line);
        }
        if (victim->valid() && protocol::needsWriteBack(victim->state)) {
            if (wbq_.full()) {
                // Hold the fill until a WB slot opens.
                eventq().at(
                    curTick() + 8,
                    [this, req, res] { handleFill(req, res); },
                    "l2-fill-stall");
                return;
            }
            queueWriteBack(*victim);
        }
        const LineState st = protocol::fillState(
            req.cmd, res.resp, res.otherSharers, res.dirtySource);
        tags_.insert(victim, line, st);
        entry = victim;
    } else if (req.cmd == BusCmd::ReadExcl) {
        // The line appeared while our fetch was in flight (e.g. via a
        // snarf); the combined response already invalidated peers.
        entry->state = LineState::Modified;
    }

    // Complete waiters. Stores can finish only with write permission;
    // otherwise convert the MSHR into an Upgrade and keep them parked.
    // (Member scratch: fills never nest, and the waiters are copied
    // back into the MSHR below without disturbing its capacity.)
    std::vector<MshrWaiter> &stores_pending = storesPendingScratch_;
    stores_pending.clear();
    for (const auto &w : m->waiters) {
        if (w.isStore && !canSilentStore(entry->state)
            && entry->state != LineState::Modified) {
            stores_pending.push_back(w);
            continue;
        }
        if (w.isStore && entry->state == LineState::Exclusive)
            entry->state = LineState::Modified;
        if (w.isStore && oracle_)
            oracle_->onStore(id_, line, curTick());
        completeWaiter(w, params_.fillLatency);
    }
    missLatency_.sample(static_cast<double>(curTick() - m->allocated));

    if (!stores_pending.empty()) {
        m->cmd = BusCmd::Upgrade;
        m->inService = false;
        m->awaitingData = false;
        m->waiters.assign(stores_pending.begin(),
                          stores_pending.end());
        ++upgradeRequests_;
        tryIssue(m);
    } else {
        mshrs_.deallocate(m);
    }
}

void
L2Cache::receiveWriteBack(const BusRequest &req)
{
    // Snarfed data arriving from a peer's write back.
    const Addr line = req.lineAddr;
    const PendingSnarf *ps = pendingSnarfs_.find(line);
    cmp_assert(ps != nullptr, "snarf data without reservation");
    const bool dirty = ps->dirty;
    const bool sharers = ps->sharers;
    pendingSnarfs_.erase(line);
    cmp_assert(snarfInFlight_ > 0, "snarf buffer underflow");
    --snarfInFlight_;

    if (tags_.lookup(line, /*touch=*/false)) {
        // We refetched the line ourselves in the meantime.
        ++snarfedDropped_;
        return;
    }

    TagEntry *victim = tags_.findVictimAmong(
        line, [this](const TagEntry &e) {
            return !e.valid()
                   || (policy_.snarfSharedVictims
                       && e.state == LineState::Shared);
        });
    bool victim_copy_queued = false;
    if (!victim) {
        if (!dirty) {
            // The won (clean) copy has nowhere to go: accounted drop.
            if (oracle_)
                oracle_->onDropCopy(id_, line, curTick());
            ++snarfedDropped_;
            return;
        }
        // Dirty data must not vanish: fall back to a full victim
        // search and, if that victim needs a write back, require a
        // queue slot (else drop and account).
        victim = tags_.findVictim(line);
        if (victim->valid()
            && protocol::needsWriteBack(victim->state)) {
            if (wbq_.full()) {
                if (oracle_)
                    oracle_->onDropCopy(id_, line, curTick());
                ++snarfedDropped_;
                return;
            }
            queueWriteBack(*victim);
            victim_copy_queued = true;
        }
    } else if (victim->valid()
               && protocol::needsWriteBack(victim->state)
               && isDirty(victim->state)) {
        cmp_panic("snarf victim selection chose a dirty line");
    }

    // A displaced Shared victim is silently dropped (peers very
    // likely hold duplicates); report it so the shadow model follows.
    if (oracle_ && victim->valid() && !victim_copy_queued)
        oracle_->onDropCopy(id_, victim->lineAddr, curTick());
    tags_.insert(victim, line,
                 protocol::snarfFillState(dirty, sharers),
                 policy_.snarfInsert);
    victim->snarfed = true;
    ++snarfedReceived_;
}

} // namespace cmpcache
