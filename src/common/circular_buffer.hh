/**
 * @file
 * Growable circular FIFO buffer.
 *
 * std::deque allocates and frees block nodes as elements churn, which
 * put the ring request queue on the per-transaction allocation path.
 * This buffer keeps one power-of-two array that only ever grows, so a
 * steady-state push/pop cycle touches no allocator.
 */

#ifndef CMPCACHE_COMMON_CIRCULAR_BUFFER_HH
#define CMPCACHE_COMMON_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cmpcache
{

template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 4;
        while (cap < initial_capacity)
            cap *= 2;
        buf_.resize(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    push_back(T value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
        ++size_;
    }

    T &
    front()
    {
        cmp_assert(size_ > 0, "front() on empty circular buffer");
        return buf_[head_];
    }

    const T &
    front() const
    {
        cmp_assert(size_ > 0, "front() on empty circular buffer");
        return buf_[head_];
    }

    void
    pop_front()
    {
        cmp_assert(size_ > 0, "pop_front() on empty circular buffer");
        buf_[head_] = T{};
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    /** Element @p i positions behind the front (0 = front). */
    T &
    operator[](std::size_t i)
    {
        cmp_assert(i < size_, "circular buffer index out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
        cmp_assert(i < size_, "circular buffer index out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            buf_[(head_ + i) & (buf_.size() - 1)] = T{};
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> next(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_CIRCULAR_BUFFER_HH
