/**
 * @file
 * Structured error handling for recoverable failures.
 *
 * The simulator distinguishes two failure families:
 *
 *  - Programming errors (broken invariants) stay on cmp_assert /
 *    cmp_panic: they abort, because continuing would corrupt state.
 *
 *  - Input and runtime errors -- malformed traces, nonsense configs,
 *    watchdog trips, tick-budget overruns -- are *recoverable* at the
 *    granularity of one simulation: a parallel sweep must report the
 *    failing cell and finish the rest of the grid. These travel as
 *    SimError values, either inside an Expected<T> return (parser-style
 *    APIs) or inside a SimException (failures that must unwind out of
 *    the event kernel mid-run).
 *
 * CLIs translate SimError kinds into exit codes at top level; library
 * code never calls exit().
 */

#ifndef CMPCACHE_COMMON_ERROR_HH
#define CMPCACHE_COMMON_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace cmpcache
{

/** Coarse failure category; names appear in results JSON and logs. */
enum class SimErrorKind
{
    Io,       ///< unreadable / unwritable file
    Trace,    ///< malformed trace input
    Config,   ///< unknown key, bad value, or cross-field inconsistency
    Result,   ///< malformed results JSON
    Watchdog, ///< forward-progress watchdog tripped (live/deadlock)
    Budget,   ///< tick or wall-clock budget exhausted
    Conformance, ///< coherence conformance oracle detected stale data
    Internal, ///< unexpected exception escaping a simulation
};

inline const char *
toString(SimErrorKind k)
{
    switch (k) {
      case SimErrorKind::Io:
        return "io";
      case SimErrorKind::Trace:
        return "trace";
      case SimErrorKind::Config:
        return "config";
      case SimErrorKind::Result:
        return "result";
      case SimErrorKind::Watchdog:
        return "watchdog";
      case SimErrorKind::Budget:
        return "budget";
      case SimErrorKind::Conformance:
        return "conformance";
      case SimErrorKind::Internal:
        return "internal";
    }
    return "unknown";
}

/** One recoverable failure: a category plus a human-readable cause. */
struct SimError
{
    SimErrorKind kind = SimErrorKind::Internal;
    std::string message;

    SimError() = default;
    SimError(SimErrorKind k, std::string msg)
        : kind(k), message(std::move(msg))
    {
    }
};

/**
 * A value or a SimError. Minimal expected-style result type: no
 * exceptions on the success path, and the error carries enough context
 * to be reported verbatim.
 *
 *     Expected<std::vector<TraceRecord>> r = readTrace(is);
 *     if (!r)
 *         return std::move(r.error());
 *     use(r.value());
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(SimError err) : v_(std::move(err)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T &value() { return std::get<T>(v_); }
    const T &value() const { return std::get<T>(v_); }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    SimError &error() { return std::get<SimError>(v_); }
    const SimError &error() const { return std::get<SimError>(v_); }

  private:
    std::variant<T, SimError> v_;
};

/** Expected<void>: success carries no value. */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(SimError err) : err_(std::move(err)), ok_(false) {}

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    SimError &error() { return err_; }
    const SimError &error() const { return err_; }

  private:
    SimError err_;
    bool ok_ = true;
};

/**
 * SimError as an exception, for failures that surface deep inside a
 * running simulation (config validation at system construction, the
 * watchdog, the maxTicks budget) and must unwind out of the event loop.
 * Sweep workers catch it per cell; CLIs catch it at top level.
 */
class SimException : public std::runtime_error
{
  public:
    explicit SimException(SimError err)
        : std::runtime_error(err.message), err_(std::move(err))
    {
    }

    SimException(SimErrorKind kind, const std::string &message)
        : SimException(SimError(kind, message))
    {
    }

    const SimError &error() const { return err_; }
    SimErrorKind kind() const { return err_.kind; }

  private:
    SimError err_;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_ERROR_HH
