/**
 * @file
 * Fundamental scalar types shared by every cmpcache subsystem.
 */

#ifndef CMPCACHE_COMMON_TYPES_HH
#define CMPCACHE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace cmpcache
{

/** Physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr InvalidAddr = std::numeric_limits<Addr>::max();

/** Hardware thread identifier (0..numThreads-1). */
using ThreadId = std::uint16_t;

/** Identifier of a bus agent (L2 caches, L3, memory controller). */
using AgentId = std::uint8_t;

constexpr AgentId InvalidAgent = 0xff;

/**
 * Physical ring-stop position, strongly typed so stop indices cannot
 * be silently mixed with AgentId arithmetic. The CmpTopology owns the
 * agent-to-stop mapping; nothing else computes stop numbers.
 */
struct RingStop
{
    constexpr RingStop() = default;
    constexpr explicit RingStop(unsigned v) : v_(v) {}

    constexpr unsigned value() const { return v_; }

    friend constexpr bool
    operator==(RingStop a, RingStop b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool
    operator!=(RingStop a, RingStop b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool
    operator<(RingStop a, RingStop b)
    {
        return a.v_ < b.v_;
    }

  private:
    unsigned v_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_TYPES_HH
