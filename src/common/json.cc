#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cmpcache
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "0"; // JSON has no NaN/Inf; results never produce them
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        if (!value(out, err))
            return false;
        skipWs();
        if (pos_ != s_.size()) {
            err = at("trailing characters after JSON value");
            return false;
        }
        return true;
    }

  private:
    std::string
    at(const std::string &msg) const
    {
        return msg + " (offset " + std::to_string(pos_) + ")";
    }

    void
    skipWs()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, std::string &err)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p) {
                err = at(std::string("expected '") + word + "'");
                return false;
            }
        }
        return true;
    }

    bool
    value(JsonValue &out, std::string &err)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            err = at("unexpected end of input");
            return false;
        }
        const char c = s_[pos_];
        if (c == '{')
            return object(out, err);
        if (c == '[')
            return array(out, err);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.string, err);
        }
        if (c == 't' || c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = c == 't';
            return literal(c == 't' ? "true" : "false", err);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null", err);
        }
        return number(out, err);
    }

    bool
    string(std::string &out, std::string &err)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                const char e = s_[pos_++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    err = at(std::string("unsupported escape '\\")
                             + e + "'");
                    return false;
                }
            } else {
                out += c;
            }
        }
        err = at("unterminated string");
        return false;
    }

    bool
    number(JsonValue &out, std::string &err)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '-'
                   || s_[pos_] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(s_[pos_]))
                      != 0;
            ++pos_;
        }
        if (!digits) {
            err = at("expected a JSON value");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = s_.substr(start, pos_ - start);
        // Validate the token parses as a double.
        char *end = nullptr;
        std::strtod(out.number.c_str(), &end);
        if (end != out.number.c_str() + out.number.size()) {
            err = at("malformed number '" + out.number + "'");
            return false;
        }
        return true;
    }

    bool
    object(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                err = at("expected object key");
                return false;
            }
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                err = at("expected ':' after key '" + key + "'");
                return false;
            }
            ++pos_;
            JsonValue v;
            if (!value(v, err))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            err = at("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    array(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v, err))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            err = at("expected ',' or ']' in array");
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    std::string err;
    JsonParser p(text);
    if (p.parse(out, err))
        return true;
    if (error)
        *error = err;
    return false;
}

bool
validateJson(const std::string &text, std::string *error)
{
    JsonValue v;
    return parseJson(text, v, error);
}

} // namespace cmpcache
