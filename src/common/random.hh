/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator never consumes randomness on its own: all stochastic
 * behaviour lives in the trace generators, so two runs with the same
 * seed and configuration are bit-identical.
 */

#ifndef CMPCACHE_COMMON_RANDOM_HH
#define CMPCACHE_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace cmpcache
{

/**
 * xoshiro256** generator seeded via splitmix64. Fast, high quality,
 * and fully deterministic across platforms.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t inRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Geometric-ish integer with given mean (>= 0). */
    std::uint64_t geometric(double mean);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(s) sampler over {0, ..., n-1} using an inverted-CDF table.
 *
 * Rank 0 is the hottest item. Used by the commercial-workload
 * generators to shape reuse distributions.
 *
 * The CDF is laid out in Eytzinger (BFS heap) order and searched with
 * a branchless descent: trace generation performs one such search per
 * reference across three samplers, and the sorted-array binary search
 * it replaces mispredicted on nearly every probe. The inversion is
 * exact -- identical double comparisons against identical CDF values
 * -- so sampled ranks are bit-identical to std::lower_bound on the
 * sorted table.
 */
class ZipfSampler
{
  public:
    /**
     * @param n        population size (> 0)
     * @param exponent Zipf exponent s (>= 0; 0 = uniform)
     */
    ZipfSampler(std::size_t n, double exponent);

    /** Draw one rank using randomness from @p rng. */
    std::size_t sample(Rng &rng) const { return sampleAt(rng.real()); }

    /**
     * Rank for the uniform draw @p u in [0, 1): the first rank whose
     * CDF value is >= u (the last rank if u exceeds them all).
     * Exposed so equivalence tests can drive exact u values.
     */
    std::size_t sampleAt(double u) const;

    std::size_t population() const { return n_; }
    double exponent() const { return exponent_; }

  private:
    std::size_t n_;
    /**
     * CDF values in Eytzinger order, 1-indexed (slot 0 unused),
     * padded with +infinity sentinels to a complete tree so a
     * descent's virtual-leaf offset is directly the sampled rank.
     */
    std::vector<double> eyt_;
    double exponent_;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_RANDOM_HH
