/**
 * @file
 * Minimal --key=value command-line option parsing for the example and
 * benchmark drivers.
 */

#ifndef CMPCACHE_COMMON_CLI_HH
#define CMPCACHE_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cmpcache
{

/**
 * Parses "--key=value" / "--flag" style arguments. Unknown positional
 * arguments are collected in order.
 */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Environment-variable integer override helper. */
    static std::int64_t envInt(const char *name, std::int64_t def);

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_CLI_HH
