/**
 * @file
 * Minimal --key=value command-line option parsing for the example and
 * benchmark drivers.
 */

#ifndef CMPCACHE_COMMON_CLI_HH
#define CMPCACHE_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cmpcache
{

/**
 * Parses "--key=value" / "--flag" style arguments. Unknown positional
 * arguments are collected in order.
 *
 * Multi-tool drivers (e.g. the `cmpcache` binary) can additionally
 * treat the first argument as a subcommand: when @p allow_subcommand
 * is set and argv[1] is a bare word (no "--" prefix, no '='), it is
 * consumed as the subcommand instead of a positional.
 */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv,
            bool allow_subcommand = false);

    /** Subcommand name; empty when none was given/allowed. */
    const std::string &subcommand() const { return subcommand_; }

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Environment-variable integer override helper. */
    static std::int64_t envInt(const char *name, std::int64_t def);

  private:
    std::string subcommand_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_CLI_HH
