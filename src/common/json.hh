/**
 * @file
 * Minimal JSON building blocks shared by the result writer/parser
 * (sim/result_json.cc), the time-series exporter (obs/) and tests.
 *
 * Emission helpers are deterministic: jsonDouble prints 17 significant
 * digits so a write/parse round trip reproduces doubles bit-for-bit.
 * The parser is strict (no comments, no trailing commas) and keeps
 * numbers as raw tokens so integers survive without a double round
 * trip.
 */

#ifndef CMPCACHE_COMMON_JSON_HH
#define CMPCACHE_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace cmpcache
{

/** JSON string escaping for emitters ("\"" -> "\\\"", etc.). */
std::string jsonEscape(const std::string &s);

/** Deterministic JSON representation of a double (17 sig. digits). */
std::string jsonDouble(double v);

/**
 * Minimal strict JSON value. Numbers keep their raw token so integer
 * fields can be converted without a double round trip.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string number; // raw token
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/**
 * Parse @p text into @p out. Strict: the whole input must be exactly
 * one JSON value.
 * @param error receives a diagnostic on failure (may be null)
 * @return true on success
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** parseJson without keeping the value (syntax check only). */
bool validateJson(const std::string &text, std::string *error = nullptr);

} // namespace cmpcache

#endif // CMPCACHE_COMMON_JSON_HH
