/**
 * @file
 * Small-buffer, non-allocating move-only callable.
 *
 * The event kernel and the L2/ring one-shot callbacks capture at most
 * a few pointers plus a BusRequest; std::function heap-allocates once
 * the capture exceeds its (implementation-defined, typically 16-byte)
 * inline buffer, which put an allocation on every transaction. An
 * InplaceFunction stores the callable inline and refuses — at compile
 * time — anything that does not fit, so the per-reference path stays
 * allocation-free by construction.
 */

#ifndef CMPCACHE_COMMON_INPLACE_FUNCTION_HH
#define CMPCACHE_COMMON_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cmpcache
{

template <typename Sig, std::size_t N = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t N>
class InplaceFunction<R(Args...), N>
{
  public:
    /** Does a callable of type F fit in this InplaceFunction? */
    template <typename F>
    static constexpr bool fits =
        sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t)
        && std::is_nothrow_move_constructible_v<F>;

    InplaceFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceFunction>>>
    InplaceFunction(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable signature mismatch");
        static_assert(sizeof(Fn) <= N,
                      "capture too large for this InplaceFunction; "
                      "raise N or capture less");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "capture over-aligned for the inline buffer");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "captures must be nothrow-movable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        invoke_ = [](void *b, Args... args) -> R {
            return (*static_cast<Fn *>(b))(
                std::forward<Args>(args)...);
        };
        manage_ = [](void *dst, void *src) {
            if (src) // move src into dst, then destroy src
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            Fn *victim = static_cast<Fn *>(src ? src : dst);
            victim->~Fn();
        };
    }

    InplaceFunction(InplaceFunction &&other) noexcept { steal(other); }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(buf_, std::forward<Args>(args)...);
    }

    void
    reset()
    {
        if (manage_) {
            manage_(buf_, nullptr); // destroy in place
            manage_ = nullptr;
            invoke_ = nullptr;
        }
    }

  private:
    void
    steal(InplaceFunction &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (other.manage_) {
            other.manage_(buf_, other.buf_); // move + destroy source
            other.manage_ = nullptr;
            other.invoke_ = nullptr;
        }
    }

    using Invoke = R (*)(void *, Args...);
    /** manage(dst, src): src != null → move src into dst and destroy
     *  src; src == null → destroy dst. */
    using Manage = void (*)(void *, void *);

    alignas(std::max_align_t) unsigned char buf_[N];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_INPLACE_FUNCTION_HH
