/**
 * @file
 * Integer math helpers used throughout the cache models.
 */

#ifndef CMPCACHE_COMMON_INTMATH_HH
#define CMPCACHE_COMMON_INTMATH_HH

#include <cstdint>

#include "common/logging.hh"

namespace cmpcache
{

/** True iff @p n is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** floor(log2(n)); n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** ceil(log2(n)); n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Round @p n up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Round @p n down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t n, std::uint64_t align)
{
    return n & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t m =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (val >> first) & m;
}

} // namespace cmpcache

#endif // CMPCACHE_COMMON_INTMATH_HH
