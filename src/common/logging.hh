/**
 * @file
 * Status and error reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  - an internal invariant was violated: a simulator bug.
 *            Aborts (may dump core).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, unreadable trace file, ...).
 *            Exits with status 1.
 * warn()   - something is questionable but the run can continue.
 * inform() - plain status output.
 */

#ifndef CMPCACHE_COMMON_LOGGING_HH
#define CMPCACHE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace cmpcache
{

/** Stream-concatenate any set of arguments into a std::string. */
template <typename... Args>
std::string
cstr(Args &&...args)
{
    std::ostringstream os;
    ((os << args), ...);
    return os.str();
}

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Redirect warn()/inform() output (tests use this); null = stderr. */
void setLogSink(std::ostream *sink);

} // namespace logging_detail

#define cmp_panic(...)                                                     \
    ::cmpcache::logging_detail::panicImpl(__FILE__, __LINE__,              \
                                          ::cmpcache::cstr(__VA_ARGS__))

#define cmp_fatal(...)                                                     \
    ::cmpcache::logging_detail::fatalImpl(__FILE__, __LINE__,              \
                                          ::cmpcache::cstr(__VA_ARGS__))

template <typename... Args>
void
warn(Args &&...args)
{
    logging_detail::warnImpl(cstr(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    logging_detail::informImpl(cstr(std::forward<Args>(args)...));
}

/** panic() if the condition does not hold. */
#define cmp_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::cmpcache::logging_detail::panicImpl(                         \
                __FILE__, __LINE__,                                        \
                ::cmpcache::cstr("assertion '" #cond "' failed. ",         \
                                 ##__VA_ARGS__));                          \
        }                                                                  \
    } while (0)

} // namespace cmpcache

#endif // CMPCACHE_COMMON_LOGGING_HH
