#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace cmpcache
{
namespace logging_detail
{

namespace
{
std::ostream *logSink = nullptr;

std::ostream &
sink()
{
    return logSink ? *logSink : std::cerr;
}
} // namespace

void
setLogSink(std::ostream *s)
{
    logSink = s;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    sink() << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    sink() << "info: " << msg << std::endl;
}

} // namespace logging_detail
} // namespace cmpcache
