#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace cmpcache
{
namespace logging_detail
{

namespace
{
// Sweep workers emit warn()/inform() concurrently: the sink pointer
// is atomic and each message is written under a lock so lines never
// interleave mid-message.
std::atomic<std::ostream *> logSink{nullptr};

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

std::ostream &
sink()
{
    auto *s = logSink.load(std::memory_order_acquire);
    return s ? *s : std::cerr;
}
} // namespace

void
setLogSink(std::ostream *s)
{
    logSink.store(s, std::memory_order_release);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sink() << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sink() << "info: " << msg << std::endl;
}

} // namespace logging_detail
} // namespace cmpcache
