/**
 * @file
 * Open-addressing hash containers keyed by line address.
 *
 * std::unordered_map allocates a node per insert, which put the
 * pending-snarf bookkeeping on the per-transaction allocation path.
 * These tables store slots in one flat power-of-two array with linear
 * probing and tombstone deletion, so steady-state insert/erase cycles
 * touch no allocator at all (the array only grows, like the MSHR and
 * write-back-queue containers).
 *
 * Keys are line addresses: the two top sentinel values (~0 and ~0-1)
 * are reserved and can never collide with a line-aligned address.
 */

#ifndef CMPCACHE_COMMON_FLAT_MAP_HH
#define CMPCACHE_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cmpcache
{

namespace flat_detail
{

constexpr Addr kEmpty = ~Addr{0};
constexpr Addr kTombstone = ~Addr{0} - 1;

/** Fibonacci multiply-shift: maps a 64-bit key to the top bits. */
inline std::size_t
hashSlot(Addr key, unsigned shift)
{
    return static_cast<std::size_t>(
        (key * 0x9E3779B97F4A7C15ull) >> shift);
}

} // namespace flat_detail

/** Open-addressing Addr -> V map. V must be default-constructible. */
template <typename V>
class FlatMap
{
  public:
    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap *= 2;
        rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    bool contains(Addr key) const { return findSlot(key) != nullptr; }

    /** Pointer to the mapped value, or nullptr. */
    V *
    find(Addr key)
    {
        Slot *s = const_cast<Slot *>(findSlot(key));
        return s ? &s->value : nullptr;
    }

    const V *
    find(Addr key) const
    {
        const Slot *s = findSlot(key);
        return s ? &s->value : nullptr;
    }

    /** Insert-or-assign. */
    void
    insert(Addr key, V value)
    {
        (*this)[key] = std::move(value);
    }

    /** Value for @p key, default-constructed on first touch. */
    V &
    operator[](Addr key)
    {
        checkKey(key);
        maybeGrow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = flat_detail::hashSlot(key, shift_);
        std::size_t first_tomb = slots_.size();
        while (true) {
            Slot &s = slots_[i];
            if (s.key == key)
                return s.value;
            if (s.key == flat_detail::kEmpty) {
                // Reuse the first tombstone crossed, if any.
                Slot &dst = first_tomb < slots_.size()
                                ? slots_[first_tomb]
                                : s;
                if (&dst == &s)
                    ++used_;
                dst.key = key;
                dst.value = V{};
                ++size_;
                return dst.value;
            }
            if (s.key == flat_detail::kTombstone
                && first_tomb == slots_.size()) {
                first_tomb = i;
            }
            i = (i + 1) & mask;
        }
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(Addr key)
    {
        Slot *s = const_cast<Slot *>(findSlot(key));
        if (!s)
            return false;
        s->key = flat_detail::kTombstone;
        s->value = V{};
        --size_;
        return true;
    }

    void
    clear()
    {
        for (auto &s : slots_) {
            s.key = flat_detail::kEmpty;
            s.value = V{};
        }
        size_ = 0;
        used_ = 0;
    }

    /** Visit every (key, value) pair; order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots_) {
            if (live(s.key))
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        Addr key = flat_detail::kEmpty;
        V value{};
    };

    static bool
    live(Addr key)
    {
        return key != flat_detail::kEmpty
               && key != flat_detail::kTombstone;
    }

    static void
    checkKey(Addr key)
    {
        cmp_assert(live(key),
                   "flat-map key collides with a reserved sentinel");
    }

    const Slot *
    findSlot(Addr key) const
    {
        checkKey(key);
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = flat_detail::hashSlot(key, shift_);
        while (true) {
            const Slot &s = slots_[i];
            if (s.key == key)
                return &s;
            if (s.key == flat_detail::kEmpty)
                return nullptr;
            i = (i + 1) & mask;
        }
    }

    void
    maybeGrow()
    {
        // Keep live + tombstone occupancy under ~70% so probes stay
        // short. Doubling clears tombstones as a side effect; when
        // tombstones (not live entries) drove the occupancy, rehash
        // at the same capacity instead.
        if ((used_ + 1) * 10 < slots_.size() * 7)
            return;
        rehash(size_ * 2 < slots_.size() ? slots_.size()
                                         : slots_.size() * 2);
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<Slot> old = std::move(slots_);
        unsigned log2 = 0;
        while ((std::size_t{1} << log2) < new_cap)
            ++log2;
        shift_ = 64 - log2;
        slots_.assign(std::size_t{1} << log2, Slot{});
        size_ = 0;
        used_ = 0;
        const std::size_t mask = slots_.size() - 1;
        for (auto &s : old) {
            if (!live(s.key))
                continue;
            std::size_t i = flat_detail::hashSlot(s.key, shift_);
            while (slots_[i].key != flat_detail::kEmpty)
                i = (i + 1) & mask;
            slots_[i].key = s.key;
            slots_[i].value = std::move(s.value);
            ++size_;
            ++used_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0; ///< live entries
    std::size_t used_ = 0; ///< live entries + tombstones
    unsigned shift_ = 64;  ///< 64 - log2(capacity)
};

/** Open-addressing set of line addresses. */
class FlatSet
{
  public:
    explicit FlatSet(std::size_t initial_capacity = 16)
        : map_(initial_capacity)
    {}

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    bool contains(Addr key) const { return map_.contains(key); }

    /** @return true if newly inserted. */
    bool
    insert(Addr key)
    {
        if (map_.contains(key))
            return false;
        map_[key] = true;
        return true;
    }

    /** @return 1 if erased, 0 if absent (std::set-style). */
    std::size_t erase(Addr key) { return map_.erase(key) ? 1 : 0; }

    void clear() { map_.clear(); }

  private:
    FlatMap<bool> map_;
};

} // namespace cmpcache

#endif // CMPCACHE_COMMON_FLAT_MAP_HH
