#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cmpcache
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 bool allow_subcommand)
{
    int first = 1;
    if (allow_subcommand && argc > 1) {
        const std::string arg = argv[1];
        if (arg.rfind("--", 0) != 0
            && arg.find('=') == std::string::npos) {
            subcommand_ = arg;
            first = 2;
        }
    }
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq == std::string::npos) {
                options_[arg.substr(2)] = "true";
            } else {
                options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positional_.push_back(std::move(arg));
        }
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return options_.count(key) > 0;
}

std::string
CliArgs::getString(const std::string &key, const std::string &def) const
{
    const auto it = options_.find(key);
    return it == options_.end() ? def : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = options_.find(key);
    if (it == options_.end())
        return def;
    try {
        return std::stoll(it->second);
    } catch (...) {
        cmp_fatal("option --", key, " expects an integer, got '",
                  it->second, "'");
    }
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    const auto it = options_.find(key);
    if (it == options_.end())
        return def;
    try {
        return std::stod(it->second);
    } catch (...) {
        cmp_fatal("option --", key, " expects a number, got '",
                  it->second, "'");
    }
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    const auto it = options_.find(key);
    if (it == options_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    cmp_fatal("option --", key, " expects a boolean, got '", v, "'");
}

std::int64_t
CliArgs::envInt(const char *name, std::int64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    try {
        return std::stoll(v);
    } catch (...) {
        warn("environment variable ", name, "='", v,
             "' is not an integer; using default ", def);
        return def;
    }
}

} // namespace cmpcache
