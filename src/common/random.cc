#include "common/random.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    cmp_assert(bound > 0, "Rng::below bound must be positive");
    // Lemire's unbiased multiply-shift rejection sampling ("Fast
    // Random Integer Generation in an Interval", ACM TOMACS 2019):
    // map a 64-bit draw onto [0, bound) via the high half of a
    // 128-bit product, rejecting the draws that would make some
    // residues appear one extra time. The rejection branch is taken
    // with probability < bound / 2^64, so it is essentially free for
    // the small bounds the simulator uses.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            m = static_cast<unsigned __int128>(next()) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::inRange(std::uint64_t lo, std::uint64_t hi)
{
    cmp_assert(lo <= hi, "Rng::inRange requires lo <= hi");
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    const double u = std::max(real(), 1e-12);
    const double v = -std::log(u) * mean;
    return static_cast<std::uint64_t>(v);
}

namespace
{

/**
 * Recursively place the sorted (padded) CDF into Eytzinger order: an
 * in-order walk of the implicit tree rooted at slot @p k visits
 * sorted ranks in ascending order.
 */
void
eytzingerize(const std::vector<double> &sorted, std::size_t &next,
             std::size_t k, std::vector<double> &eyt)
{
    if (k > sorted.size())
        return;
    eytzingerize(sorted, next, 2 * k, eyt);
    eyt[k] = sorted[next];
    ++next;
    eytzingerize(sorted, next, 2 * k + 1, eyt);
}

} // namespace

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : n_(n), exponent_(exponent)
{
    cmp_assert(n > 0, "ZipfSampler population must be positive");
    // Exact CDF construction, arithmetic unchanged from the original
    // sorted-table sampler (the values must stay bit-identical).
    std::vector<double> cdf(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf[i] = acc;
    }
    for (auto &c : cdf)
        c /= acc;

    // Pad to a complete tree (2^h - 1 slots) with +infinity
    // sentinels. Descents then always run to a virtual leaf and the
    // leaf index *is* the lower-bound rank, so no slot->rank table
    // (and no extra dependent load per draw) is needed. Sentinel
    // comparisons always descend left, leaving real results
    // untouched; draws landing in the padding clamp to the last rank,
    // matching the old it == end() fallback.
    const std::size_t slots = std::bit_ceil(n + 1) - 1;
    cdf.resize(slots, std::numeric_limits<double>::infinity());
    eyt_.assign(slots + 1, 0.0);
    std::size_t next = 0;
    eytzingerize(cdf, next, 1, eyt_);
}

std::size_t
ZipfSampler::sampleAt(double u) const
{
    // Branchless lower_bound over the Eytzinger tree: descend right
    // when the node's CDF value is < u (the same comparison the
    // sorted-array lower_bound performs, on the same doubles).
    //
    // The descent is a chain of data-dependent loads, so without help
    // it runs at memory latency per level -- slower on big cold
    // tables than a branchy binary search, whose speculated branches
    // overlap future loads. Prefetching the great-great-grandchildren
    // (16 descendants = two cache lines) restores the memory-level
    // parallelism explicitly; the top levels are shared by every draw
    // and stay cache-hot, and the last four levels skip the prefetch
    // via a perfectly predicted branch.
    const std::size_t slots = eyt_.size() - 1;
    std::size_t k = 1;
    while (k <= slots) {
        const std::size_t pf = k << 4;
        if (pf <= slots) {
            __builtin_prefetch(&eyt_[pf]);
            __builtin_prefetch(&eyt_[std::min(pf + 8, slots)]);
        }
        k = 2 * k + (eyt_[k] < u);
    }
    // The tree is complete, so the virtual leaf offset is the
    // lower-bound rank; padding hits clamp to the last real rank.
    const std::size_t idx = k - (slots + 1);
    return idx < n_ ? idx : n_ - 1;
}

} // namespace cmpcache
