#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    cmp_assert(bound > 0, "Rng::below bound must be positive");
    // Lemire's unbiased multiply-shift rejection sampling ("Fast
    // Random Integer Generation in an Interval", ACM TOMACS 2019):
    // map a 64-bit draw onto [0, bound) via the high half of a
    // 128-bit product, rejecting the draws that would make some
    // residues appear one extra time. The rejection branch is taken
    // with probability < bound / 2^64, so it is essentially free for
    // the small bounds the simulator uses.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            m = static_cast<unsigned __int128>(next()) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::inRange(std::uint64_t lo, std::uint64_t hi)
{
    cmp_assert(lo <= hi, "Rng::inRange requires lo <= hi");
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    const double u = std::max(real(), 1e-12);
    const double v = -std::log(u) * mean;
    return static_cast<std::uint64_t>(v);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_(exponent)
{
    cmp_assert(n > 0, "ZipfSampler population must be positive");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.real();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace cmpcache
