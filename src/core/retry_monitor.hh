/**
 * @file
 * The retry-rate "on/off switch" for the WBHT (paper section 2.2).
 *
 * With low memory pressure, filtering clean write backs only hurts
 * (no contention to relieve, and mispredictions cost a full memory
 * access). The paper therefore counts ring retry transactions in a
 * fixed window and disables WBHT *decisions* (the table stays
 * up-to-date) whenever the count falls below a threshold. "A common
 * threshold of two thousand retries every one million processor
 * cycles works well."
 */

#ifndef CMPCACHE_CORE_RETRY_MONITOR_HH
#define CMPCACHE_CORE_RETRY_MONITOR_HH

#include <functional>

#include "common/types.hh"
#include "stats/stats.hh"

namespace cmpcache
{

class RetryMonitor : public stats::Group
{
  public:
    struct Params
    {
        /** Window length in core cycles (paper: 1,000,000). */
        Tick windowCycles = 1000000;
        /** Retries per window required to enable the WBHT
         * (paper: 2,000). */
        std::uint64_t threshold = 2000;
        /** WBHT state before the first full window completes. */
        bool initiallyActive = false;
    };

    RetryMonitor(stats::Group *parent, const Params &p);

    /** A retry combined-response occurred at @p now. */
    void recordRetry(Tick now);

    /** Is the WBHT currently allowed to filter write backs? */
    bool active(Tick now);

    /**
     * Pure read-only answer to "would active(now) say?" -- replicates
     * the window-roll arithmetic without mutating any state. Used by
     * parallel in-flight queries (see setThreadQueryLog), whose rolls
     * are committed later, in serial order, via rollTo().
     */
    bool activeAt(Tick now) const;

    /** Commit window rolls up to @p now (idempotent, monotone). */
    void rollTo(Tick now) { rollWindows(now); }

    /**
     * Thread-local query-deferral slot. While @p slot is non-null on
     * the calling thread, active() on that thread answers via the
     * pure activeAt() and records the maximum queried tick in *slot
     * instead of rolling windows -- the domain scheduler's
     * coordinator later commits the logged roll with rollTo() at the
     * serial-order point. Pass null to restore direct rolling.
     */
    static void setThreadQueryLog(Tick *slot);

    /**
     * Give the monitor a way to read the current tick so its gauge
     * stats (wbht_active_now & friends) can roll windows before
     * reporting. Without one the gauges report last-known state.
     * Rolling is idempotent in the observed values, so a gauge read
     * never changes what the simulation itself would compute.
     */
    void setTimeSource(std::function<Tick()> now)
    {
        timeSource_ = std::move(now);
    }

    const Params &params() const { return params_; }

  private:
    /** Close any windows that ended before @p now. */
    void rollWindows(Tick now);

    /** Roll up to the time source's now (if any) and return @p v. */
    double gauge(const std::function<double()> &v);

    Params params_;
    Tick windowStart_ = 0;
    std::uint64_t windowCount_ = 0;
    /** Retry count of the most recently closed window. */
    std::uint64_t lastWindowCount_ = 0;
    bool active_ = false;
    std::function<Tick()> timeSource_;

    stats::Scalar retriesSeen_;
    stats::Scalar windowsOn_;
    stats::Scalar windowsOff_;
    stats::Scalar gateTransitions_;
    stats::Formula activeNow_;
    stats::Formula windowRetriesNow_;
    stats::Formula lastWindowRetries_;
    stats::Formula windowsElapsed_;
};

} // namespace cmpcache

#endif // CMPCACHE_CORE_RETRY_MONITOR_HH
