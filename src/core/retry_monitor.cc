#include "core/retry_monitor.hh"

namespace cmpcache
{

RetryMonitor::RetryMonitor(stats::Group *parent, const Params &p)
    : stats::Group(parent, "retry_monitor"),
      params_(p),
      active_(p.initiallyActive),
      retriesSeen_(this, "retries_seen", "retry responses observed"),
      windowsOn_(this, "windows_on",
                 "windows that enabled the WBHT"),
      windowsOff_(this, "windows_off",
                  "windows that disabled the WBHT")
{
}

void
RetryMonitor::rollWindows(Tick now)
{
    while (now >= windowStart_ + params_.windowCycles) {
        active_ = windowCount_ >= params_.threshold;
        if (active_)
            ++windowsOn_;
        else
            ++windowsOff_;
        windowStart_ += params_.windowCycles;
        windowCount_ = 0;
    }
}

void
RetryMonitor::recordRetry(Tick now)
{
    rollWindows(now);
    ++windowCount_;
    ++retriesSeen_;
}

bool
RetryMonitor::active(Tick now)
{
    rollWindows(now);
    return active_;
}

} // namespace cmpcache
