#include "core/retry_monitor.hh"

#include <algorithm>

namespace cmpcache
{

namespace
{

/** Per-thread deferred-query slot (see setThreadQueryLog). */
thread_local Tick *tlsQueryLog = nullptr;

} // namespace

void
RetryMonitor::setThreadQueryLog(Tick *slot)
{
    tlsQueryLog = slot;
}

RetryMonitor::RetryMonitor(stats::Group *parent, const Params &p)
    : stats::Group(parent, "retry_monitor"),
      params_(p),
      active_(p.initiallyActive),
      retriesSeen_(this, "retries_seen", "retry responses observed"),
      windowsOn_(this, "windows_on",
                 "windows that enabled the WBHT"),
      windowsOff_(this, "windows_off",
                  "windows that disabled the WBHT"),
      gateTransitions_(this, "gate_transitions",
                       "WBHT enable-bit flips at window boundaries"),
      activeNow_(this, "wbht_active_now",
                 "is the WBHT gate currently open (0/1)",
                 [this] {
                     return gauge(
                         [this] { return active_ ? 1.0 : 0.0; });
                 }),
      windowRetriesNow_(this, "window_retries_now",
                        "retries accumulated in the open window",
                        [this] {
                            return gauge([this] {
                                return static_cast<double>(
                                    windowCount_);
                            });
                        }),
      lastWindowRetries_(this, "last_window_retries",
                         "retry count of the last closed window",
                         [this] {
                             return gauge([this] {
                                 return static_cast<double>(
                                     lastWindowCount_);
                             });
                         }),
      windowsElapsed_(this, "windows_elapsed",
                      "windows closed so far",
                      [this] {
                          return gauge([this] {
                              return static_cast<double>(
                                  windowsOn_.value()
                                  + windowsOff_.value());
                          });
                      })
{
}

double
RetryMonitor::gauge(const std::function<double()> &v)
{
    if (timeSource_)
        rollWindows(timeSource_());
    return v();
}

void
RetryMonitor::rollWindows(Tick now)
{
    const Tick window = params_.windowCycles;
    if (now < windowStart_ + window)
        return;

    // Close the first elapsed window with the accumulated count.
    bool next = windowCount_ >= params_.threshold;
    if (next != active_)
        ++gateTransitions_;
    active_ = next;
    if (active_)
        ++windowsOn_;
    else
        ++windowsOff_;
    lastWindowCount_ = windowCount_;
    windowStart_ += window;
    windowCount_ = 0;

    // Any further elapsed windows saw zero retries; account for all
    // of them at once instead of iterating across a long idle gap.
    if (now >= windowStart_ + window) {
        const std::uint64_t gap = (now - windowStart_) / window;
        next = params_.threshold == 0;
        if (next != active_)
            ++gateTransitions_;
        active_ = next;
        if (active_)
            windowsOn_ += gap;
        else
            windowsOff_ += gap;
        lastWindowCount_ = 0;
        windowStart_ += gap * window;
    }
}

void
RetryMonitor::recordRetry(Tick now)
{
    rollWindows(now);
    ++windowCount_;
    ++retriesSeen_;
}

bool
RetryMonitor::active(Tick now)
{
    if (Tick *log = tlsQueryLog) {
        *log = std::max(*log, now);
        return activeAt(now);
    }
    rollWindows(now);
    return active_;
}

bool
RetryMonitor::activeAt(Tick now) const
{
    // rollWindows() without the side effects: the first elapsed
    // window closes with the accumulated count, every further elapsed
    // window closes with zero retries.
    const Tick window = params_.windowCycles;
    if (now < windowStart_ + window)
        return active_;
    if (now < windowStart_ + 2 * window)
        return windowCount_ >= params_.threshold;
    return params_.threshold == 0;
}

} // namespace cmpcache
