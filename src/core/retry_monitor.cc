#include "core/retry_monitor.hh"

namespace cmpcache
{

RetryMonitor::RetryMonitor(stats::Group *parent, const Params &p)
    : stats::Group(parent, "retry_monitor"),
      params_(p),
      active_(p.initiallyActive),
      retriesSeen_(this, "retries_seen", "retry responses observed"),
      windowsOn_(this, "windows_on",
                 "windows that enabled the WBHT"),
      windowsOff_(this, "windows_off",
                  "windows that disabled the WBHT")
{
}

void
RetryMonitor::rollWindows(Tick now)
{
    const Tick window = params_.windowCycles;
    if (now < windowStart_ + window)
        return;

    // Close the first elapsed window with the accumulated count.
    active_ = windowCount_ >= params_.threshold;
    if (active_)
        ++windowsOn_;
    else
        ++windowsOff_;
    windowStart_ += window;
    windowCount_ = 0;

    // Any further elapsed windows saw zero retries; account for all
    // of them at once instead of iterating across a long idle gap.
    if (now >= windowStart_ + window) {
        const std::uint64_t gap = (now - windowStart_) / window;
        active_ = params_.threshold == 0;
        if (active_)
            windowsOn_ += gap;
        else
            windowsOff_ += gap;
        windowStart_ += gap * window;
    }
}

void
RetryMonitor::recordRetry(Tick now)
{
    rollWindows(now);
    ++windowCount_;
    ++retriesSeen_;
}

bool
RetryMonitor::active(Tick now)
{
    rollWindows(now);
    return active_;
}

} // namespace cmpcache
