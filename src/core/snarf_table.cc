#include "core/snarf_table.hh"

namespace cmpcache
{

SnarfTable::SnarfTable(stats::Group *parent, const Params &p)
    : stats::Group(parent, "snarf_table"),
      table_(p.entries, p.assoc, p.lineSize, /*protect_used=*/true),
      wbRecorded_(this, "wb_recorded",
                  "write backs whose tag was entered"),
      missMarked_(this, "miss_marked",
                  "misses that set a use bit"),
      consulted_(this, "consulted",
                 "write backs that consulted the table"),
      flagged_(this, "flagged",
               "write backs flagged snarfable on the bus")
{
}

void
SnarfTable::recordWriteBack(Addr addr)
{
    table_.allocate(addr);
    ++wbRecorded_;
}

void
SnarfTable::recordMiss(Addr addr)
{
    if (table_.markUsed(addr))
        ++missMarked_;
}

bool
SnarfTable::shouldFlagSnarf(Addr addr)
{
    ++consulted_;
    const bool flag = table_.useBitSet(addr);
    if (flag)
        ++flagged_;
    return flag;
}

} // namespace cmpcache
