#include "core/history_table.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

HistoryTable::HistoryTable(std::uint64_t num_entries, unsigned assoc,
                           unsigned line_size, bool protect_used)
    : assoc_(assoc),
      lineShift_(floorLog2(line_size)),
      protectUsed_(protect_used)
{
    cmp_assert(isPowerOf2(line_size), "line size must be 2^k");
    cmp_assert(assoc > 0 && num_entries % assoc == 0,
               "entries must divide into full sets");
    const std::uint64_t sets = num_entries / assoc;
    cmp_assert(isPowerOf2(sets), "history table sets must be 2^k (",
               num_entries, " entries / ", assoc, "-way)");
    numSets_ = static_cast<unsigned>(sets);
    tag_.assign(num_entries, InvalidAddr);
    stamp_.assign(num_entries, 0);
}

unsigned
HistoryTable::setOf(Addr line) const
{
    return static_cast<unsigned>((line >> lineShift_) & (numSets_ - 1));
}

std::size_t
HistoryTable::find(Addr addr) const
{
    const Addr line = (addr >> lineShift_) << lineShift_;
    const std::size_t base =
        static_cast<std::size_t>(setOf(line)) * assoc_;
    // Free slots hold InvalidAddr, which no line-aligned address can
    // equal, so a plain tag compare suffices.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (tag_[base + w] == line)
            return base + w;
    }
    return npos;
}

bool
HistoryTable::contains(Addr addr, bool touch)
{
    const std::size_t i = find(addr);
    if (i == npos)
        return false;
    if (touch)
        stamp_[i] = (++clock_ << 1) | (stamp_[i] & 1);
    return true;
}

bool
HistoryTable::useBitSet(Addr addr, bool touch)
{
    const std::size_t i = find(addr);
    if (i == npos)
        return false;
    if (touch)
        stamp_[i] = (++clock_ << 1) | (stamp_[i] & 1);
    return (stamp_[i] & 1) != 0;
}

bool
HistoryTable::allocate(Addr addr)
{
    const Addr line = (addr >> lineShift_) << lineShift_;
    if (const std::size_t i = find(line); i != npos) {
        stamp_[i] = (++clock_ << 1) | (stamp_[i] & 1);
        return false;
    }
    const std::size_t base =
        static_cast<std::size_t>(setOf(line)) * assoc_;
    std::size_t victim = npos;
    std::size_t unused_victim = npos;
    for (unsigned w = 0; w < assoc_; ++w) {
        const std::size_t i = base + w;
        if (tag_[i] == InvalidAddr) {
            victim = i;
            unused_victim = i;
            break;
        }
        if (victim == npos || stamp_[i] < stamp_[victim])
            victim = i;
        if (!(stamp_[i] & 1)
            && (unused_victim == npos
                || stamp_[i] < stamp_[unused_victim])) {
            unused_victim = i;
        }
    }
    if (protectUsed_ && unused_victim != npos)
        victim = unused_victim;
    const bool evicted = tag_[victim] != InvalidAddr;
    tag_[victim] = line;
    stamp_[victim] = ++clock_ << 1; // use bit clear
    return evicted;
}

bool
HistoryTable::markUsed(Addr addr)
{
    const std::size_t i = find(addr);
    if (i == npos)
        return false;
    stamp_[i] = (++clock_ << 1) | 1;
    return true;
}

bool
HistoryTable::erase(Addr addr)
{
    const std::size_t i = find(addr);
    if (i == npos)
        return false;
    tag_[i] = InvalidAddr;
    stamp_[i] &= ~std::uint64_t{1}; // clear the use bit
    return true;
}

std::uint64_t
HistoryTable::countValid() const
{
    std::uint64_t n = 0;
    for (const Addr t : tag_)
        if (t != InvalidAddr)
            ++n;
    return n;
}

void
HistoryTable::clear()
{
    tag_.assign(tag_.size(), InvalidAddr);
    stamp_.assign(stamp_.size(), 0);
}

} // namespace cmpcache
