#include "core/history_table.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

HistoryTable::HistoryTable(std::uint64_t num_entries, unsigned assoc,
                           unsigned line_size, bool protect_used)
    : assoc_(assoc),
      lineShift_(floorLog2(line_size)),
      protectUsed_(protect_used)
{
    cmp_assert(isPowerOf2(line_size), "line size must be 2^k");
    cmp_assert(assoc > 0 && num_entries % assoc == 0,
               "entries must divide into full sets");
    const std::uint64_t sets = num_entries / assoc;
    cmp_assert(isPowerOf2(sets), "history table sets must be 2^k (",
               num_entries, " entries / ", assoc, "-way)");
    numSets_ = static_cast<unsigned>(sets);
    entries_.resize(num_entries);
}

unsigned
HistoryTable::setOf(Addr line) const
{
    return static_cast<unsigned>((line >> lineShift_) & (numSets_ - 1));
}

HistoryTable::Entry *
HistoryTable::find(Addr addr)
{
    const Addr line = (addr >> lineShift_) << lineShift_;
    auto *base =
        &entries_[static_cast<std::size_t>(setOf(line)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid() && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

bool
HistoryTable::contains(Addr addr, bool touch)
{
    Entry *e = find(addr);
    if (!e)
        return false;
    if (touch)
        e->stamp = ++clock_;
    return true;
}

bool
HistoryTable::useBitSet(Addr addr, bool touch)
{
    Entry *e = find(addr);
    if (!e)
        return false;
    if (touch)
        e->stamp = ++clock_;
    return e->useBit;
}

bool
HistoryTable::allocate(Addr addr)
{
    const Addr line = (addr >> lineShift_) << lineShift_;
    if (Entry *e = find(line)) {
        e->stamp = ++clock_;
        return false;
    }
    auto *base =
        &entries_[static_cast<std::size_t>(setOf(line)) * assoc_];
    Entry *victim = nullptr;
    Entry *unused_victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!base[w].valid()) {
            victim = &base[w];
            unused_victim = victim;
            break;
        }
        if (!victim || base[w].stamp < victim->stamp)
            victim = &base[w];
        if (!base[w].useBit
            && (!unused_victim
                || base[w].stamp < unused_victim->stamp)) {
            unused_victim = &base[w];
        }
    }
    if (protectUsed_ && unused_victim)
        victim = unused_victim;
    const bool evicted = victim->valid();
    victim->tag = line;
    victim->stamp = ++clock_;
    victim->useBit = false;
    return evicted;
}

bool
HistoryTable::markUsed(Addr addr)
{
    Entry *e = find(addr);
    if (!e)
        return false;
    e->useBit = true;
    e->stamp = ++clock_;
    return true;
}

bool
HistoryTable::erase(Addr addr)
{
    Entry *e = find(addr);
    if (!e)
        return false;
    e->tag = InvalidAddr;
    e->useBit = false;
    return true;
}

std::uint64_t
HistoryTable::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid())
            ++n;
    return n;
}

void
HistoryTable::clear()
{
    for (auto &e : entries_) {
        e.tag = InvalidAddr;
        e.useBit = false;
        e.stamp = 0;
    }
}

} // namespace cmpcache
