#include "core/policy.hh"

#include "common/logging.hh"

namespace cmpcache
{

const char *
toString(WbPolicy p)
{
    switch (p) {
      case WbPolicy::Baseline:
        return "baseline";
      case WbPolicy::Wbht:
        return "wbht";
      case WbPolicy::WbhtGlobal:
        return "wbht-global";
      case WbPolicy::Snarf:
        return "snarf";
      case WbPolicy::Combined:
        return "combined";
    }
    return "?";
}

bool
tryWbPolicyFromString(const std::string &name, WbPolicy &out)
{
    if (name == "baseline")
        out = WbPolicy::Baseline;
    else if (name == "wbht")
        out = WbPolicy::Wbht;
    else if (name == "wbht-global")
        out = WbPolicy::WbhtGlobal;
    else if (name == "snarf")
        out = WbPolicy::Snarf;
    else if (name == "combined")
        out = WbPolicy::Combined;
    else
        return false;
    return true;
}

WbPolicy
wbPolicyFromString(const std::string &name)
{
    WbPolicy p;
    if (!tryWbPolicyFromString(name, p)) {
        cmp_fatal("unknown write-back policy '", name, "' (expected "
                  "baseline, wbht, wbht-global, snarf or combined)");
    }
    return p;
}

PolicyConfig
PolicyConfig::make(WbPolicy p)
{
    PolicyConfig c;
    c.policy = p;
    return c;
}

PolicyConfig
PolicyConfig::combinedDefault()
{
    PolicyConfig c;
    c.policy = WbPolicy::Combined;
    c.wbht.entries = 16384;
    c.snarf.entries = 16384;
    return c;
}

} // namespace cmpcache
