#include "core/policy.hh"

#include "common/logging.hh"

namespace cmpcache
{

const char *
toString(WbPolicy p)
{
    switch (p) {
      case WbPolicy::Baseline:
        return "baseline";
      case WbPolicy::Wbht:
        return "wbht";
      case WbPolicy::WbhtGlobal:
        return "wbht-global";
      case WbPolicy::Snarf:
        return "snarf";
      case WbPolicy::Combined:
        return "combined";
    }
    return "?";
}

WbPolicy
wbPolicyFromString(const std::string &name)
{
    if (name == "baseline")
        return WbPolicy::Baseline;
    if (name == "wbht")
        return WbPolicy::Wbht;
    if (name == "wbht-global")
        return WbPolicy::WbhtGlobal;
    if (name == "snarf")
        return WbPolicy::Snarf;
    if (name == "combined")
        return WbPolicy::Combined;
    cmp_fatal("unknown write-back policy '", name, "' (expected "
              "baseline, wbht, wbht-global, snarf or combined)");
}

PolicyConfig
PolicyConfig::make(WbPolicy p)
{
    PolicyConfig c;
    c.policy = p;
    return c;
}

PolicyConfig
PolicyConfig::combinedDefault()
{
    PolicyConfig c;
    c.policy = WbPolicy::Combined;
    c.wbht.entries = 16384;
    c.snarf.entries = 16384;
    return c;
}

} // namespace cmpcache
