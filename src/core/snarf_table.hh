/**
 * @file
 * The L2-to-L2 transfer ("snarf") table (paper section 3).
 *
 * A second history table, separate from the WBHT, that tracks lines
 * with reuse potential:
 *
 *  - the tag is entered when *any* L2 writes the line back (every L2
 *    snoops write-back transactions on the address ring);
 *  - the "use bit" is set when the line is missed on again (locally
 *    or by another L2) while its entry is still present;
 *  - when a line is written back and its entry has the use bit set,
 *    the write back is flagged "snarfable" on the bus, triggering the
 *    snarf algorithm at peer L2 caches.
 */

#ifndef CMPCACHE_CORE_SNARF_TABLE_HH
#define CMPCACHE_CORE_SNARF_TABLE_HH

#include "core/history_table.hh"
#include "stats/stats.hh"

namespace cmpcache
{

class SnarfTable : public stats::Group
{
  public:
    struct Params
    {
        std::uint64_t entries = 32768;
        unsigned assoc = 16;
        unsigned lineSize = 128;
    };

    SnarfTable(stats::Group *parent, const Params &p);

    /** A write back of @p addr was observed on the bus (any L2). */
    void recordWriteBack(Addr addr);

    /** A miss to @p addr was observed; set the use bit if present. */
    void recordMiss(Addr addr);

    /**
     * Consulted when this L2 writes @p addr back: flag the bus
     * transaction snarfable?
     */
    bool shouldFlagSnarf(Addr addr);

    HistoryTable &table() { return table_; }

  private:
    HistoryTable table_;

    stats::Scalar wbRecorded_;
    stats::Scalar missMarked_;
    stats::Scalar consulted_;
    stats::Scalar flagged_;
};

} // namespace cmpcache

#endif // CMPCACHE_CORE_SNARF_TABLE_HH
