/**
 * @file
 * The Write Back History Table (paper section 2).
 *
 * One WBHT sits next to each L2 cache. It records lines whose clean
 * write back drew an "already valid in L3" snoop response, and is
 * consulted when a clean victim sits in the write-back queue: a hit
 * predicts the line is still in the L3, so the write back is aborted.
 * A wrong prediction costs performance only (a later miss pays full
 * memory latency), never correctness.
 */

#ifndef CMPCACHE_CORE_WBHT_HH
#define CMPCACHE_CORE_WBHT_HH

#include "core/history_table.hh"
#include "stats/stats.hh"

namespace cmpcache
{

class WriteBackHistoryTable : public stats::Group
{
  public:
    struct Params
    {
        /** Table entries; the paper's default is 32 K (~9% of the L2
         * size in tag terms). */
        std::uint64_t entries = 32768;
        unsigned assoc = 16;
        unsigned lineSize = 128;
        /**
         * Cache lines covered by one entry (power of two). The
         * paper's future-work proposal for shrinking the WBHT:
         * coarser entries give greater coverage at the risk of more
         * mispredictions (one line's L3-validity stands in for its
         * whole group's).
         */
        unsigned linesPerEntry = 1;
    };

    WriteBackHistoryTable(stats::Group *parent, const Params &p);

    /**
     * Record that the combined response for a clean write back of
     * @p addr reported the line valid in the L3.
     */
    void recordL3Valid(Addr addr);

    /**
     * Should this clean write back be aborted? (Consulted in the
     * write-back queue, off the miss critical path.)
     *
     * @param actually_in_l3 oracle input used *only* to score the
     *        decision (the paper "peeks into the L3 cache in the
     *        simulator" to report prediction accuracy, Table 4)
     */
    bool shouldAbort(Addr addr, bool actually_in_l3);

    /** The L3 dropped / replaced this line (optional invalidation
     * hook; the paper's design tolerates divergence instead). */
    void invalidate(Addr addr);

    HistoryTable &table() { return table_; }

    std::uint64_t aborts() const { return aborted_.value(); }
    std::uint64_t correct() const { return correct_.value(); }
    std::uint64_t decisions() const { return consulted_.value(); }

    /** Prediction accuracy so far (Table 4's "WBHT Correct"). */
    double correctFraction() const;

  private:
    HistoryTable table_;

    stats::Scalar allocated_;
    stats::Scalar consulted_;
    stats::Scalar hits_;
    stats::Scalar aborted_;
    stats::Scalar correct_;
    stats::Scalar falseAbort_;  ///< aborted but line was NOT in L3
    stats::Scalar missedAbort_; ///< sent but line WAS in L3
};

} // namespace cmpcache

#endif // CMPCACHE_CORE_WBHT_HH
