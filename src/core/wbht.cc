#include "core/wbht.hh"

namespace cmpcache
{

WriteBackHistoryTable::WriteBackHistoryTable(stats::Group *parent,
                                             const Params &p)
    : stats::Group(parent, "wbht"),
      // Coarse-grained entries simply widen the alignment granule:
      // one tag then covers linesPerEntry consecutive lines.
      table_(p.entries, p.assoc, p.lineSize * p.linesPerEntry),
      allocated_(this, "allocated", "entries allocated on L3-valid "
                 "combined responses"),
      consulted_(this, "consulted", "clean write backs that consulted "
                 "the table"),
      hits_(this, "hits", "table hits while consulting"),
      aborted_(this, "aborted", "clean write backs aborted"),
      correct_(this, "correct", "decisions matching L3 contents "
               "(oracle-scored)"),
      falseAbort_(this, "false_aborts", "aborts of lines not actually "
                  "in the L3"),
      missedAbort_(this, "missed_aborts", "write backs sent although "
                   "the line was already in the L3")
{
}

void
WriteBackHistoryTable::recordL3Valid(Addr addr)
{
    table_.allocate(addr);
    ++allocated_;
}

bool
WriteBackHistoryTable::shouldAbort(Addr addr, bool actually_in_l3)
{
    ++consulted_;
    const bool hit = table_.contains(addr);
    if (hit)
        ++hits_;

    const bool abort = hit;
    if (abort == actually_in_l3)
        ++correct_;
    if (abort && !actually_in_l3)
        ++falseAbort_;
    if (!abort && actually_in_l3)
        ++missedAbort_;
    if (abort)
        ++aborted_;
    return abort;
}

void
WriteBackHistoryTable::invalidate(Addr addr)
{
    table_.erase(addr);
}

double
WriteBackHistoryTable::correctFraction() const
{
    const auto n = consulted_.value();
    return n ? static_cast<double>(correct_.value())
                   / static_cast<double>(n)
             : 0.0;
}

} // namespace cmpcache
