/**
 * @file
 * Write-back management policy configuration.
 *
 * Bundles every knob of the paper's two mechanisms so a whole
 * experiment row is one PolicyConfig value:
 *
 *  - Baseline:    all clean and dirty victims go to the L3 (which
 *                 still squashes redundant clean write backs itself).
 *  - Wbht:        + selective clean write backs via the per-L2 WBHT
 *                 (section 2), gated by the retry-rate switch.
 *  - WbhtGlobal:  Wbht, but every L2 allocates a WBHT entry when the
 *                 combined response shows an L3-valid line
 *                 (section 2.2 / Figure 3).
 *  - Snarf:       + L2-to-L2 write backs via the snarf table
 *                 (section 3 / Figure 5).
 *  - Combined:    both mechanisms; the paper halves both tables to
 *                 16 K entries to keep total space constant
 *                 (section 5.3 / Figure 7).
 */

#ifndef CMPCACHE_CORE_POLICY_HH
#define CMPCACHE_CORE_POLICY_HH

#include <string>

#include "core/retry_monitor.hh"
#include "core/snarf_table.hh"
#include "core/wbht.hh"
#include "mem/replacement.hh"

namespace cmpcache
{

enum class WbPolicy
{
    Baseline,
    Wbht,
    WbhtGlobal,
    Snarf,
    Combined,
};

const char *toString(WbPolicy p);
/** fatal() on unknown names (CLI convenience). */
WbPolicy wbPolicyFromString(const std::string &name);
/** Non-fatal parse; returns false and leaves @p out alone on
 * unknown names. */
bool tryWbPolicyFromString(const std::string &name, WbPolicy &out);

struct PolicyConfig
{
    WbPolicy policy = WbPolicy::Baseline;

    WriteBackHistoryTable::Params wbht;
    SnarfTable::Params snarf;
    RetryMonitor::Params retry;

    /** Gate WBHT decisions with the retry-rate switch. */
    bool useRetrySwitch = true;

    /** Snarf victim choice: Invalid first, then Shared (paper);
     * false = Invalid only (ablation). */
    bool snarfSharedVictims = true;

    /** Recency position of snarfed fills at the recipient. */
    InsertPos snarfInsert = InsertPos::Mru;

    /** Per-L2 buffers reserved for in-flight snarf accepts; with none
     * free the L2 conservatively declines (never retries). */
    unsigned snarfBuffers = 8;

    /**
     * The paper's future-work replacement extension: when choosing an
     * L2 victim, prefer (among the colder half of the set) lines the
     * WBHT believes are already valid in the L3 -- evicting them is
     * cheap since their write back will be aborted and a refetch only
     * pays the L3 latency. Requires a WBHT policy.
     */
    bool wbhtInformedReplacement = false;

    bool usesWbht() const
    {
        return policy == WbPolicy::Wbht || policy == WbPolicy::WbhtGlobal
               || policy == WbPolicy::Combined;
    }

    bool usesSnarf() const
    {
        return policy == WbPolicy::Snarf
               || policy == WbPolicy::Combined;
    }

    /** All L2s allocate WBHT entries from every combined response. */
    bool globalWbhtAllocation() const
    {
        return policy == WbPolicy::WbhtGlobal;
    }

    /**
     * The paper's Combined configuration: both mechanisms with
     * 16 K-entry tables (half of the 32 K defaults).
     */
    static PolicyConfig combinedDefault();

    /** Policy with paper-default table sizes. */
    static PolicyConfig make(WbPolicy p);
};

} // namespace cmpcache

#endif // CMPCACHE_CORE_POLICY_HH
