/**
 * @file
 * The set-associative tag history table underlying both of the
 * paper's adaptive mechanisms.
 *
 * "The proposed selective write back mechanism uses a small lookup
 *  table [...] organized and accessed just like a cache tag array."
 *
 * The table stores only line tags (no data), is managed LRU within
 * each set, and carries one optional payload bit per entry (the snarf
 * table's "use bit"). The default geometry matches the paper: 32 K
 * entries, 16-way.
 */

#ifndef CMPCACHE_CORE_HISTORY_TABLE_HH
#define CMPCACHE_CORE_HISTORY_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cmpcache
{

class HistoryTable
{
  public:
    /**
     * @param num_entries  total entries (power of two)
     * @param assoc        associativity (divides num_entries)
     * @param line_size    cache line size for address alignment
     * @param protect_used prefer evicting entries whose use bit is
     *        clear; entries with demonstrated reuse survive the
     *        allocation churn of unproven lines (the snarf table
     *        enables this, the WBHT does not use payload bits)
     */
    HistoryTable(std::uint64_t num_entries, unsigned assoc,
                 unsigned line_size, bool protect_used = false);

    std::uint64_t numEntries() const
    {
        return static_cast<std::uint64_t>(numSets_) * assoc_;
    }
    unsigned assoc() const { return assoc_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Is the line present?
     * @param touch refresh the entry's LRU position on hit
     */
    bool contains(Addr addr, bool touch = true);

    /** Present with the payload ("use") bit set? */
    bool useBitSet(Addr addr, bool touch = true);

    /**
     * Insert the line (LRU-evicting within its set if needed). An
     * existing entry is refreshed; its use bit is left untouched.
     * @return true if the insertion evicted a valid entry
     */
    bool allocate(Addr addr);

    /** Set the payload bit if the line is present.
     * @return true if the entry existed */
    bool markUsed(Addr addr);

    /** Drop the line if present. @return true if it existed */
    bool erase(Addr addr);

    /** Number of currently valid entries (O(size); tests/analysis). */
    std::uint64_t countValid() const;

    /** Remove every entry. */
    void clear();

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    /** Entry index of @p addr's line, or npos. */
    std::size_t find(Addr addr) const;
    unsigned setOf(Addr line) const;

    unsigned assoc_;
    unsigned lineShift_;
    unsigned numSets_;
    bool protectUsed_;
    std::uint64_t clock_ = 0;
    // Structure-of-arrays: find() is called a couple of times per
    // simulated reference and only needs the tags, so keeping them
    // densely packed (a 16-way set spans two cache lines instead of
    // six) matters more than entry locality. InvalidAddr tags mark
    // free slots; a line-aligned probe can never equal it.
    //
    // stamp_ packs (clock << 1) | useBit: clocks are unique, so
    // ordering packed stamps orders clocks, and the victim scan
    // touches one array instead of two.
    std::vector<Addr> tag_;
    std::vector<std::uint64_t> stamp_;
};

} // namespace cmpcache

#endif // CMPCACHE_CORE_HISTORY_TABLE_HH
