/**
 * @file
 * Cache-line coherence states.
 *
 * The protocol is a POWER4-flavoured snooping MESI extension with two
 * extra states the paper's mechanisms rely on:
 *
 *  - SL ("Shared Last"): a shared copy designated to source
 *    cache-to-cache interventions ("a subset of lines in the shared
 *    state" can intervene in the paper's words).
 *  - T ("Tagged"): a dirty line that has been read by another cache;
 *    the owner still sources interventions and is responsible for the
 *    eventual dirty write back.
 */

#ifndef CMPCACHE_COHERENCE_STATE_HH
#define CMPCACHE_COHERENCE_STATE_HH

#include <cstdint>

namespace cmpcache
{

enum class LineState : std::uint8_t
{
    Invalid = 0,
    Shared,     ///< clean, other copies may exist, cannot intervene
    SharedLast, ///< clean, designated intervention source (SL)
    Exclusive,  ///< clean, only cached copy
    Tagged,     ///< dirty, shared with other caches, owner (T)
    Modified,   ///< dirty, only cached copy
};

constexpr bool
isValid(LineState s)
{
    return s != LineState::Invalid;
}

constexpr bool
isDirty(LineState s)
{
    return s == LineState::Modified || s == LineState::Tagged;
}

/** Can this copy source a cache-to-cache transfer? */
constexpr bool
canIntervene(LineState s)
{
    return s == LineState::Modified || s == LineState::Tagged
           || s == LineState::SharedLast || s == LineState::Exclusive;
}

/** Is a store hit allowed without a bus transaction? Tagged lines are
 * dirty but *shared*: a store must first invalidate the other copies
 * with an Upgrade. */
constexpr bool
canSilentStore(LineState s)
{
    return s == LineState::Modified || s == LineState::Exclusive;
}

const char *toString(LineState s);

} // namespace cmpcache

#endif // CMPCACHE_COHERENCE_STATE_HH
