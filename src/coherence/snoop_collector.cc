#include "coherence/snoop_collector.hh"

#include "common/logging.hh"

namespace cmpcache
{

SnoopCollector::SnoopCollector(stats::Group *parent,
                               const CmpTopology &topo)
    : stats::Group(parent, "snoop_collector"),
      topo_(topo),
      combines_(this, "combines", "combined responses produced"),
      retries_(this, "retries", "transactions answered with Retry"),
      interventions_(this, "interventions",
                     "reads serviced by L2-to-L2 transfer"),
      dirtyInterventions_(this, "dirty_interventions",
                          "interventions sourced from M/T copies"),
      l3Supplies_(this, "l3_supplies", "reads serviced by the L3"),
      memSupplies_(this, "mem_supplies", "reads serviced by memory"),
      upgrades_(this, "upgrades", "granted upgrade transactions"),
      wbAccepts_(this, "wb_accepts", "write backs accepted by the L3"),
      wbSquashes_(this, "wb_squashes",
                  "write backs squashed (valid copy already present)"),
      wbSnarfs_(this, "wb_snarfs",
                "write backs absorbed by a peer L2 (snarfed)")
{
}

CombinedResult
SnoopCollector::combine(const BusRequest &req,
                        const std::vector<SnoopResponse> &responses)
{
    ++combines_;
    CombinedResult res = isWriteBack(req.cmd)
                             ? combineWriteBack(req, responses)
                             : combineAccess(req, responses);
    if (res.resp == CombinedResp::Retry)
        ++retries_;
    return res;
}

CombinedResult
SnoopCollector::combineAccess(const BusRequest &req,
                              const std::vector<SnoopResponse> &rs)
{
    CombinedResult out;

    bool retry = false;
    const SnoopResponse *supplier = nullptr;
    const SnoopResponse *dirty_supplier = nullptr;
    for (const auto &r : rs) {
        retry = retry || r.retry;
        out.l3HasLine = out.l3HasLine || r.l3Hit;
        if (r.hasLine && !r.l3Hit)
            out.otherSharers = true;
        if (r.canSupply && !r.l3Hit && !supplier)
            supplier = &r;
        if (r.hasDirty)
            dirty_supplier = &r;
    }

    if (retry) {
        out.resp = CombinedResp::Retry;
        return out;
    }

    // A dirty copy must win arbitration over clean interventions.
    if (dirty_supplier)
        supplier = dirty_supplier;

    switch (req.cmd) {
      case BusCmd::Read:
      case BusCmd::ReadExcl:
        if (supplier) {
            out.resp = CombinedResp::L2Data;
            out.source = supplier->responder;
            out.dirtySource = supplier->hasDirty;
            ++interventions_;
            if (supplier->hasDirty)
                ++dirtyInterventions_;
        } else if (out.l3HasLine) {
            out.resp = CombinedResp::L3Data;
            ++l3Supplies_;
        } else {
            out.resp = CombinedResp::MemData;
            ++memSupplies_;
        }
        return out;

      case BusCmd::Upgrade:
        // Serialized at the collector: the upgrade wins and all other
        // copies invalidate.
        out.resp = CombinedResp::Upgraded;
        ++upgrades_;
        return out;

      default:
        cmp_panic("combineAccess on write back");
    }
}

CombinedResult
SnoopCollector::combineWriteBack(const BusRequest &req,
                                 const std::vector<SnoopResponse> &rs)
{
    CombinedResult out;

    bool l3_retry = false;
    bool l3_accept = false;
    bool peer_has_clean_copy = false;
    bool any_snarfer = false;
    for (const auto &r : rs) {
        out.l3HasLine = out.l3HasLine || r.l3Hit;
        if (r.l3Hit || r.wbAccept) {
            l3_retry = l3_retry || r.retry;
        } else if (r.hasLine && !r.hasDirty) {
            peer_has_clean_copy = true;
        }
        if (r.retry && !r.hasLine && !r.l3Hit && !r.wbAccept
            && !r.snarfAccept) {
            // Retry from the agent that would have to process the
            // write back (the L3 with full queues).
            l3_retry = true;
        }
        l3_accept = l3_accept || r.wbAccept;
        any_snarfer = any_snarfer || r.snarfAccept;
        if (r.hasLine && !r.l3Hit)
            out.otherSharers = true;
    }

    // Squash wins when the L3 could actually process the snoop: a
    // valid copy already exists and the data transfer is cancelled
    // outright (baseline behaviour for the L3; peer-L2 squash only
    // arises for snarf-flagged write backs, which are the only ones
    // peers snoop their tags for).
    if (req.cmd == BusCmd::WbClean
        && ((out.l3HasLine && !l3_retry) || peer_has_clean_copy)) {
        out.resp = CombinedResp::WbSquashed;
        ++wbSquashes_;
        return out;
    }

    // A peer willing to absorb the line keeps it on chip; preferred
    // over the L3 since subsequent L2-to-L2 transfers are >2x faster.
    if (any_snarfer) {
        out.resp = CombinedResp::WbSnarfed;
        out.source = pickSnarfWinner(rs);
        ++wbSnarfs_;
        return out;
    }

    if (l3_accept) {
        out.resp = CombinedResp::WbAcceptL3;
        ++wbAccepts_;
        return out;
    }

    // Resource conflict everywhere: retry (the modelled protocol; the
    // alternative of dumping to memory is not modelled, per the
    // paper).
    out.resp = CombinedResp::Retry;
    return out;
}

AgentId
SnoopCollector::pickSnarfWinner(const std::vector<SnoopResponse> &rs)
{
    // Fair round-robin over L2 agent ids, starting after the last
    // winner.
    const unsigned n = topo_.numL2s();
    for (unsigned k = 0; k < n; ++k) {
        const AgentId cand = topo_.l2Agent((rrNext_ + k) % n);
        for (const auto &r : rs) {
            if (r.snarfAccept && r.responder == cand) {
                rrNext_ = (cand + 1u) % n;
                return cand;
            }
        }
    }
    cmp_panic("pickSnarfWinner called with no willing snarfer");
}

} // namespace cmpcache
