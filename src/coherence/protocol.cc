#include "coherence/protocol.hh"

#include "common/logging.hh"

namespace cmpcache
{

const char *
toString(LineState s)
{
    switch (s) {
      case LineState::Invalid:
        return "I";
      case LineState::Shared:
        return "S";
      case LineState::SharedLast:
        return "SL";
      case LineState::Exclusive:
        return "E";
      case LineState::Tagged:
        return "T";
      case LineState::Modified:
        return "M";
    }
    return "?";
}

const char *
toString(BusCmd cmd)
{
    switch (cmd) {
      case BusCmd::Read:
        return "Read";
      case BusCmd::ReadExcl:
        return "ReadExcl";
      case BusCmd::Upgrade:
        return "Upgrade";
      case BusCmd::WbClean:
        return "WbClean";
      case BusCmd::WbDirty:
        return "WbDirty";
    }
    return "?";
}

const char *
toString(CombinedResp r)
{
    switch (r) {
      case CombinedResp::Retry:
        return "Retry";
      case CombinedResp::MemData:
        return "MemData";
      case CombinedResp::L3Data:
        return "L3Data";
      case CombinedResp::L2Data:
        return "L2Data";
      case CombinedResp::Upgraded:
        return "Upgraded";
      case CombinedResp::WbAcceptL3:
        return "WbAcceptL3";
      case CombinedResp::WbSnarfed:
        return "WbSnarfed";
      case CombinedResp::WbSquashed:
        return "WbSquashed";
    }
    return "?";
}

namespace protocol
{

SnoopResponse
l2Snoop(LineState state, BusCmd cmd, AgentId self)
{
    cmp_assert(!isWriteBack(cmd),
               "l2Snoop does not handle write backs");
    SnoopResponse r;
    r.responder = self;
    if (state == LineState::Invalid)
        return r;

    r.hasLine = true;
    r.hasDirty = isDirty(state);

    switch (cmd) {
      case BusCmd::Read:
      case BusCmd::ReadExcl:
        // Dirty owners must supply; clean intervention is offered by
        // designated copies (SL / E).
        r.canSupply = canIntervene(state);
        break;
      case BusCmd::Upgrade:
        // Upgrades carry no data; sharers just invalidate.
        break;
      default:
        break;
    }
    return r;
}

LineState
l2AfterSnoop(LineState state, BusCmd cmd)
{
    if (state == LineState::Invalid)
        return state;

    switch (cmd) {
      case BusCmd::Read:
        switch (state) {
          case LineState::Modified:
            // Dirty data now shared; owner keeps intervention and
            // write-back responsibility (POWER4-style T).
            return LineState::Tagged;
          case LineState::Tagged:
            return LineState::Tagged;
          case LineState::Exclusive:
            // Requester takes the SL role; we drop to plain Shared.
            return LineState::Shared;
          case LineState::SharedLast:
            return LineState::Shared;
          case LineState::Shared:
            return LineState::Shared;
          default:
            break;
        }
        break;

      case BusCmd::ReadExcl:
      case BusCmd::Upgrade:
        // Ownership moves to the requester; every other copy dies.
        return LineState::Invalid;

      case BusCmd::WbClean:
      case BusCmd::WbDirty:
        // Peer write backs do not change our copy's state.
        return state;
    }
    cmp_panic("unhandled l2AfterSnoop(", toString(state), ", ",
              toString(cmd), ")");
}

LineState
fillState(BusCmd cmd, CombinedResp from, bool sharers,
          bool dirty_source)
{
    switch (cmd) {
      case BusCmd::Read:
        switch (from) {
          case CombinedResp::MemData:
            // Sole cached copy, clean.
            return sharers ? LineState::SharedLast
                           : LineState::Exclusive;
          case CombinedResp::L3Data:
            // The L3 retains its copy but cannot intervene as fast as
            // an L2; the requester, as last reader, takes the SL role
            // (any previous SL would have intervened itself).
            return LineState::SharedLast;
          case CombinedResp::L2Data:
            // A dirty supplier stays the owner (Tagged) and keeps the
            // intervention role; a clean SL/E supplier hands the role
            // to us.
            return dirty_source ? LineState::Shared
                                : LineState::SharedLast;
          default:
            break;
        }
        break;
      case BusCmd::ReadExcl:
        return LineState::Modified;
      case BusCmd::Upgrade:
        return LineState::Modified;
      default:
        break;
    }
    cmp_panic("unhandled fillState(", toString(cmd), ", ",
              toString(from), ")");
}

LineState
snarfFillState(bool dirty, bool sharers)
{
    // A snarfed clean line was just evicted by its writer and any
    // peer holding a copy would have squashed the (flagged) write
    // back, so the recipient becomes the clean intervention source.
    // A snarfed dirty line is the dirty owner -- Tagged if clean
    // sharers remain (a Tagged writer's victim), Modified if it is
    // the only copy.
    if (!dirty)
        return LineState::SharedLast;
    return sharers ? LineState::Tagged : LineState::Modified;
}

bool
needsWriteBack(LineState state)
{
    // In the studied system *all* valid victims produce write backs
    // (clean ones to cut the memory latency of refetches); the
    // WBHT's whole purpose is to skip the redundant clean ones.
    return isValid(state);
}

} // namespace protocol
} // namespace cmpcache
