/**
 * @file
 * The Snoop Collector: the central entity that combines per-agent
 * snoop responses into the final bus response.
 *
 * Besides the baseline combining rules (intervention > L3 > memory;
 * retry on resource conflicts; squash of redundant clean write backs)
 * it implements the paper's snarf extension: when several L2 caches
 * signal that they can absorb a write back, a winner is chosen in a
 * fair round-robin fashion so the snarfed-write-back load is spread
 * across recipients.
 */

#ifndef CMPCACHE_COHERENCE_SNOOP_COLLECTOR_HH
#define CMPCACHE_COHERENCE_SNOOP_COLLECTOR_HH

#include <vector>

#include "coherence/bus.hh"
#include "sim/topology.hh"
#include "stats/stats.hh"

namespace cmpcache
{

class SnoopCollector : public stats::Group
{
  public:
    /**
     * @param parent    stats parent
     * @param topo      the machine shape; snarf arbitration rotates
     *                  over its L2 agents
     */
    SnoopCollector(stats::Group *parent, const CmpTopology &topo);

    /**
     * Combine all snoop responses for @p req.
     *
     * @param req       the request on the address ring
     * @param responses one response per snooping agent (the requester
     *                  itself does not respond); the L3's response has
     *                  its l3Hit/wbAccept fields filled in
     */
    CombinedResult combine(const BusRequest &req,
                           const std::vector<SnoopResponse> &responses);

    /** Retries observed so far (input to the WBHT RetryMonitor). */
    std::uint64_t totalRetries() const { return retries_.value(); }

  private:
    CombinedResult combineAccess(const BusRequest &req,
                                 const std::vector<SnoopResponse> &rs);
    CombinedResult combineWriteBack(const BusRequest &req,
                                    const std::vector<SnoopResponse> &rs);

    /** Round-robin selection among willing snarfers. */
    AgentId pickSnarfWinner(const std::vector<SnoopResponse> &rs);

    CmpTopology topo_;
    /** Next round-robin starting position for snarf arbitration. */
    unsigned rrNext_ = 0;

    stats::Scalar combines_;
    stats::Scalar retries_;
    stats::Scalar interventions_;
    stats::Scalar dirtyInterventions_;
    stats::Scalar l3Supplies_;
    stats::Scalar memSupplies_;
    stats::Scalar upgrades_;
    stats::Scalar wbAccepts_;
    stats::Scalar wbSquashes_;
    stats::Scalar wbSnarfs_;
};

} // namespace cmpcache

#endif // CMPCACHE_COHERENCE_SNOOP_COLLECTOR_HH
