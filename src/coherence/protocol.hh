/**
 * @file
 * Pure state-transition functions of the snooping coherence protocol.
 *
 * Keeping the protocol as side-effect-free functions makes it
 * exhaustively testable: the unit tests sweep every (state, command)
 * pair and check the global invariants (single owner, no stale
 * exclusivity, dirty data never silently dropped).
 */

#ifndef CMPCACHE_COHERENCE_PROTOCOL_HH
#define CMPCACHE_COHERENCE_PROTOCOL_HH

#include "coherence/bus.hh"
#include "coherence/state.hh"

namespace cmpcache
{
namespace protocol
{

/**
 * Snoop response of a peer L2 cache that holds @p state for the
 * requested line. Write backs are handled separately (snarf logic
 * needs victim-buffer context); this covers Read/ReadExcl/Upgrade.
 */
SnoopResponse l2Snoop(LineState state, BusCmd cmd, AgentId self);

/**
 * Next state of a peer L2 copy after the transaction completes with
 * the given combined outcome.
 */
LineState l2AfterSnoop(LineState state, BusCmd cmd);

/**
 * State installed at the requester when the miss data arrives.
 *
 * @param cmd          the request that was issued
 * @param from         where the data came from
 * @param sharers      true if the combined response saw other L2 copies
 * @param dirty_source true if an L2 supplied from M/T (it keeps the
 *                     intervention role as Tagged)
 */
LineState fillState(BusCmd cmd, CombinedResp from, bool sharers,
                    bool dirty_source);

/**
 * State of a line absorbed via snarfing at the recipient.
 * @param dirty   true for a snarfed dirty write back
 * @param sharers other L2s held valid (clean) copies at combine time
 *                (possible for a Tagged writer's dirty victim)
 */
LineState snarfFillState(bool dirty, bool sharers);

/** Does evicting a line in @p state require a bus write back? */
bool needsWriteBack(LineState state);

} // namespace protocol
} // namespace cmpcache

#endif // CMPCACHE_COHERENCE_PROTOCOL_HH
