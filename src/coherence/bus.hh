/**
 * @file
 * Bus transaction types exchanged over the intrachip ring.
 */

#ifndef CMPCACHE_COHERENCE_BUS_HH
#define CMPCACHE_COHERENCE_BUS_HH

#include <cstdint>

#include "common/types.hh"

namespace cmpcache
{

/** Address-ring transaction commands. */
enum class BusCmd : std::uint8_t
{
    Read,     ///< load / instruction-fetch miss
    ReadExcl, ///< store miss (read with intent to modify)
    Upgrade,  ///< store hit on a Shared/SharedLast copy (DClaim)
    WbClean,  ///< clean victim write back towards the L3
    WbDirty,  ///< dirty victim write back
};

constexpr bool
isWriteBack(BusCmd cmd)
{
    return cmd == BusCmd::WbClean || cmd == BusCmd::WbDirty;
}

const char *toString(BusCmd cmd);

/** One address-ring request. */
struct BusRequest
{
    /** Line-aligned address. */
    Addr lineAddr = 0;
    BusCmd cmd = BusCmd::Read;
    AgentId requester = InvalidAgent;
    /**
     * Set on write backs whose line the snarf table predicts will be
     * reused: peer L2 caches snoop their tags and may absorb it.
     */
    bool snarfHint = false;
    /** Unique transaction id (assigned by the ring). */
    std::uint64_t txnId = 0;
};

/** One agent's snoop response to a request. */
struct SnoopResponse
{
    AgentId responder = InvalidAgent;
    /** Resource conflict: the transaction must be retried. */
    bool retry = false;
    /** Agent holds a valid copy (any valid state). */
    bool hasLine = false;
    /** Agent holds the line dirty (M/T). */
    bool hasDirty = false;
    /** Agent offers to source the data (M/T/SL/E intervention or L3
     * hit). */
    bool canSupply = false;
    /** L3 only: the directory hit (line valid in the L3). */
    bool l3Hit = false;
    /** L3 only: willing to absorb this write back. */
    bool wbAccept = false;
    /** L2 only: willing to absorb (snarf) this write back. */
    bool snarfAccept = false;
};

/** Final outcome of a transaction, computed by the Snoop Collector. */
enum class CombinedResp : std::uint8_t
{
    Retry,      ///< re-arbitrate later
    MemData,    ///< no cached copy: memory supplies the line
    L3Data,     ///< the L3 victim cache supplies the line
    L2Data,     ///< a peer L2 intervention supplies the line
    Upgraded,   ///< upgrade granted; sharers invalidated
    WbAcceptL3, ///< write back accepted by the L3
    WbSnarfed,  ///< write back absorbed by a peer L2
    WbSquashed, ///< redundant write back dropped (valid copy exists)
};

const char *toString(CombinedResp r);

/** Combined snoop response broadcast to every bus agent. */
struct CombinedResult
{
    CombinedResp resp = CombinedResp::Retry;
    /** Data source / snarf winner (valid for L2Data / WbSnarfed). */
    AgentId source = InvalidAgent;
    /** The L3 directory hit (visible to all agents; drives WBHT
     * allocation, including the global-allocation variant). */
    bool l3HasLine = false;
    /** Some peer L2 holds a valid copy. */
    bool otherSharers = false;
    /** The supplying cache held the line dirty (M/T): it keeps the
     * intervention role, so the requester installs plain Shared. */
    bool dirtySource = false;
};

} // namespace cmpcache

#endif // CMPCACHE_COHERENCE_BUS_HH
