#include "sim/experiment.hh"

#include <ostream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "sim/simulation.hh"
#include "stats/sink.hh"

namespace cmpcache
{

bool
operator==(const ExperimentResult &a, const ExperimentResult &b)
{
    return a.workload == b.workload && a.policy == b.policy
           && a.maxOutstanding == b.maxOutstanding
           && a.execTime == b.execTime
           && a.wbhtCorrectPct == b.wbhtCorrectPct
           && a.l3LoadHitRatePct == b.l3LoadHitRatePct
           && a.l2WbRequests == b.l2WbRequests
           && a.l3Retries == b.l3Retries
           && a.offChipAccesses == b.offChipAccesses
           && a.wbSnarfedPct == b.wbSnarfedPct
           && a.snarfedUsedLocallyPct == b.snarfedUsedLocallyPct
           && a.snarfedForInterventionPct == b.snarfedForInterventionPct
           && a.l2HitRatePct == b.l2HitRatePct
           && a.cleanWbRedundantPct == b.cleanWbRedundantPct
           && a.wbReusedTotalPct == b.wbReusedTotalPct
           && a.wbReusedAcceptedPct == b.wbReusedAcceptedPct
           && a.wbAborted == b.wbAborted && a.memReads == b.memReads
           && a.interventions == b.interventions
           && a.busRetries == b.busRetries;
}

bool
operator!=(const ExperimentResult &a, const ExperimentResult &b)
{
    return !(a == b);
}

double
improvementPct(const ExperimentResult &base, const ExperimentResult &other)
{
    cmp_assert(base.execTime > 0, "baseline has zero runtime");
    return 100.0
           * (static_cast<double>(base.execTime)
              - static_cast<double>(other.execTime))
           / static_cast<double>(base.execTime);
}

ExperimentResult
collectResult(CmpSystem &sys, Tick exec_time,
              const std::string &workload_name)
{
    ExperimentResult r;
    r.workload = workload_name;
    r.policy = toString(sys.config().policy.policy);
    r.maxOutstanding = sys.config().cpu.maxOutstanding;
    r.execTime = exec_time;

    r.wbhtCorrectPct = 100.0 * sys.wbhtCorrectFraction();
    r.l3LoadHitRatePct = 100.0 * sys.l3().loadHitRate();
    r.l2WbRequests = sys.totalL2WbIssued();
    r.l3Retries = sys.l3().retriesIssued();

    r.offChipAccesses = sys.offChipAccesses();
    const auto snarfed = sys.totalSnarfedReceived();
    r.wbSnarfedPct =
        r.l2WbRequests
            ? 100.0 * static_cast<double>(snarfed)
                  / static_cast<double>(r.l2WbRequests)
            : 0.0;
    r.snarfedUsedLocallyPct =
        snarfed ? 100.0 * static_cast<double>(sys.totalSnarfLocalUse())
                      / static_cast<double>(snarfed)
                : 0.0;
    r.snarfedForInterventionPct =
        snarfed
            ? 100.0
                  * static_cast<double>(sys.totalSnarfInterventionUse())
                  / static_cast<double>(snarfed)
            : 0.0;
    r.l2HitRatePct = 100.0 * sys.l2HitRate();

    const auto clean_seen = sys.l3().cleanWbSeen();
    r.cleanWbRedundantPct =
        clean_seen
            ? 100.0 * static_cast<double>(sys.l3().cleanWbAlreadyValid())
                  / static_cast<double>(clean_seen)
            : 0.0;

    if (const auto *rt = sys.reuseTracker()) {
        r.wbReusedTotalPct = rt->reusedTotalPct();
        r.wbReusedAcceptedPct = rt->reusedAcceptedPct();
    }

    for (unsigned i = 0; i < sys.numL2s(); ++i)
        r.wbAborted += sys.l2(i).wbAbortedByWbht();
    r.memReads = sys.mem().reads();
    r.interventions = 0;
    r.busRetries = sys.ring().collector().totalRetries();
    return r;
}

ExperimentResult
runExperiment(const SystemConfig &cfg, const WorkloadParams &workload,
              std::ostream *dump_stats,
              const std::function<void(CmpSystem &)> &inspect)
{
    Simulation sim(cfg, workload);
    const ExperimentResult r = sim.run();
    if (dump_stats)
        stats::writeText(sim.system(), *dump_stats);
    if (inspect)
        inspect(sim.system());
    return r;
}

std::uint64_t
benchRecordsPerThread(std::uint64_t def)
{
    const auto v = CliArgs::envInt("CMPCACHE_REFS", 0);
    return v > 0 ? static_cast<std::uint64_t>(v) : def;
}

} // namespace cmpcache
