/**
 * @file
 * Simulation: the one front door to running cmpcache.
 *
 * Owns the whole lifecycle -- configuration, system construction,
 * warmup, the timed run, result collection -- plus the observability
 * layer (periodic sampler, coherence-transaction tracer) when
 * cfg.obs asks for it. The CLI sweep runner and the examples all run
 * through this class, so every entry point gets identical semantics:
 *
 *     Simulation sim(cfg, workloadParams);
 *     ExperimentResult r = sim.run();
 *     stats::writeText(sim.system(), std::cout);
 *     if (sim.sampled()) ... sim.samples() ...
 */

#ifndef CMPCACHE_SIM_SIMULATION_HH
#define CMPCACHE_SIM_SIMULATION_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "obs/sampler.hh"
#include "obs/trace_export.hh"
#include "sim/cmp_system.hh"
#include "sim/experiment.hh"
#include "sim/system_config.hh"
#include "sim/watchdog.hh"
#include "trace/trace_source.hh"
#include "trace/workload.hh"

namespace cmpcache
{

class Simulation
{
  public:
    /**
     * Synthetic-workload run: resolves the workload's line size into
     * the cache configs, builds the system, and (if cfg.warmupPass)
     * functionally pre-warms the caches with one workload pass.
     */
    Simulation(const SystemConfig &cfg, const WorkloadParams &workload);

    /**
     * Pre-built trace run (e.g. trace files). The bundle is consumed;
     * @p warmup, when non-null, feeds a functional warmup pass first.
     * The config is taken as-is (line sizes must already be set).
     */
    Simulation(const SystemConfig &cfg, TraceBundle traces,
               std::string input_name,
               TraceBundle *warmup = nullptr);

    /**
     * Streaming run (`cmpcache serve`): records are decoded from
     * @p stream by a reader thread and consumed online through a
     * bounded queue + demux, so resident memory stays bounded no
     * matter how long the stream is (docs/serving.md). Warmup is
     * forced off -- a stream can only be consumed once. When
     * cfg.obs.ingestGauges is set, live ingest.* gauges (queue
     * depth, ingested/dropped, producer waits) are registered and
     * sampled alongside the default probes.
     */
    Simulation(const SystemConfig &cfg,
               std::unique_ptr<std::istream> stream,
               std::string input_name);

    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * Run the traces to completion and collect the result. Idempotent:
     * later calls return the first run's result.
     */
    const ExperimentResult &run();

    bool ran() const { return ran_; }

    CmpSystem &system() { return *sys_; }
    const CmpSystem &system() const { return *sys_; }
    const SystemConfig &config() const { return sys_->config(); }

    /** Was the periodic sampler enabled (cfg.obs.sampleEvery > 0)? */
    bool sampled() const { return sampler_ != nullptr; }
    /** The captured time series (empty when not sampled). */
    const SampleSeries &samples() const;

    /** Was transaction tracing enabled (cfg.obs.traceEnabled)? */
    bool traced() const { return tracer_ != nullptr; }
    const TraceRecorder *tracer() const { return tracer_.get(); }
    /** The surviving trace events (empty when not traced). */
    std::vector<TraceEvent> traceEvents() const;

    /** Non-null when cfg.watchdog.every > 0. */
    Watchdog *watchdog() { return watchdog_.get(); }

    /** Non-null on streaming runs. */
    StreamIngest *ingest() { return ingest_.get(); }

    /**
     * Where the watchdog flushes a Chrome/Perfetto trace on a trip
     * (only when tracing is enabled); empty disables the flush.
     */
    void setWatchdogFlushPath(std::string path)
    {
        watchdogFlushPath_ = std::move(path);
    }

  private:
    /** Attach sampler / tracer / watchdog per the system's config. */
    void initObservability();
    /**
     * One online conformance sweep (check.invariants_every): run the
     * structural coherence invariants plus the oracle's violation
     * flush mid-run, then reschedule while the machine is still busy.
     */
    void invariantSweep();
    /** Register live ingest.* gauges (streaming + obs.ingest only). */
    void initIngestGauges();
    /** Register live sched.* gauges (parallel kernel + obs.sched
     * only). */
    void initSchedGauges();

    std::string inputName_;
    /**
     * Declared before sys_: the CPUs hold DemuxSources into the
     * ingest pipeline, so it must be destroyed after them.
     */
    std::unique_ptr<StreamIngest> ingest_;
    std::unique_ptr<CmpSystem> sys_;
    /** ingest.* gauge stats; child of sys_'s group, reads ingest_. */
    struct IngestStats;
    std::unique_ptr<IngestStats> ingestStats_;
    /** sched.* gauge stats; child of sys_'s group, reads the domain
     * scheduler's phase accounting. */
    struct SchedStats;
    std::unique_ptr<SchedStats> schedStats_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<TraceRecorder> tracer_;
    std::unique_ptr<Watchdog> watchdog_;
    /** Online invariant sweep; built when check.invariants_every > 0.
     * Like the watchdog, it never keeps the event queue alive. */
    std::unique_ptr<EventFunctionWrapper> invariantEvent_;
    std::string watchdogFlushPath_;
    ExperimentResult result_;
    bool ran_ = false;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_SIMULATION_HH
