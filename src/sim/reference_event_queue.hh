/**
 * @file
 * Reference discrete-event kernel: the pre-overhaul implementation
 * (std::priority_queue plus a cancelled-sequence hash set), preserved
 * verbatim in its own namespace.
 *
 * This is NOT used by the simulator. It exists so that
 *  - the randomized differential test
 *    (tests/sim/test_event_queue_differential.cc) can pit the
 *    production bucketed kernel against an independent, obviously
 *    correct ordering oracle, and
 *  - bench/kernel_throughput.cpp can measure the production kernel
 *    against the committed baseline it replaced (the "reference-heap"
 *    rows of bench/BENCH_kernel.json).
 *
 * The ordering contract is identical to the production kernel: events
 * execute in (tick, priority, insertion-sequence) order. See
 * docs/kernel.md.
 */

#ifndef CMPCACHE_SIM_REFERENCE_EVENT_QUEUE_HH
#define CMPCACHE_SIM_REFERENCE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cmpcache
{
namespace ref
{

class RefEventQueue;

/** Reference counterpart of cmpcache::Event. */
class RefEvent
{
  public:
    using Priority = std::int8_t;

    static constexpr Priority DefaultPri = 0;
    static constexpr Priority CombinePri = 10;
    static constexpr Priority StatPri = 100;

    explicit RefEvent(Priority prio = DefaultPri) : priority_(prio) {}
    virtual ~RefEvent();

    RefEvent(const RefEvent &) = delete;
    RefEvent &operator=(const RefEvent &) = delete;

    virtual void process() = 0;
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    Priority priority() const { return priority_; }

  private:
    friend class RefEventQueue;

    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    Priority priority_;
    RefEventQueue *queue_ = nullptr;
};

/** Reference counterpart of cmpcache::EventFunctionWrapper. */
class RefEventFunctionWrapper : public RefEvent
{
  public:
    RefEventFunctionWrapper(std::function<void()> fn, std::string name,
                            Priority prio = DefaultPri)
        : RefEvent(prio), fn_(std::move(fn)), name_(std::move(name))
    {
    }

    void process() override { fn_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * The pre-overhaul kernel: a binary heap of (tick, priority,
 * sequence) entries with lazy cancellation through an unordered_set
 * of dead sequence numbers, probed once per executed event.
 */
class RefEventQueue
{
  public:
    RefEventQueue() = default;

    Tick curTick() const { return curTick_; }

    void
    schedule(RefEvent *ev, Tick when)
    {
        cmp_assert(ev != nullptr, "scheduling null event");
        cmp_assert(!ev->scheduled_, "event '", ev->name(),
                   "' is already scheduled");
        cmp_assert(when >= curTick_, "event '", ev->name(),
                   "' scheduled in the past (", when, " < ", curTick_,
                   ")");

        ev->scheduled_ = true;
        ev->when_ = when;
        ev->sequence_ = nextSequence_++;
        ev->queue_ = this;
        heap_.push(Entry{when, ev->priority_, ev->sequence_, ev});
        ++liveEvents_;
    }

    void
    deschedule(RefEvent *ev)
    {
        cmp_assert(ev != nullptr && ev->scheduled_,
                   "descheduling an unscheduled event");
        cmp_assert(ev->queue_ == this, "event belongs to another queue");
        cancelled_.insert(ev->sequence_);
        ev->scheduled_ = false;
        ev->queue_ = nullptr;
        --liveEvents_;
    }

    void
    reschedule(RefEvent *ev, Tick when)
    {
        if (ev->scheduled_)
            deschedule(ev);
        schedule(ev, when);
    }

    bool empty() const { return liveEvents_ == 0; }
    std::size_t numPending() const { return liveEvents_; }

    void
    step()
    {
        skimCancelled();
        cmp_assert(!heap_.empty(), "step() on an empty event queue");

        Entry top = heap_.top();
        heap_.pop();
        RefEvent *ev = top.event;
        cmp_assert(top.when >= curTick_, "time went backwards");
        curTick_ = top.when;
        ev->scheduled_ = false;
        ev->queue_ = nullptr;
        --liveEvents_;
        ++numExecuted_;
        ev->process();
    }

    Tick
    run(Tick max_tick = MaxTick)
    {
        while (!empty()) {
            skimCancelled();
            if (heap_.empty())
                break;
            if (heap_.top().when > max_tick) {
                curTick_ = max_tick;
                return curTick_;
            }
            step();
        }
        return curTick_;
    }

    std::uint64_t numExecuted() const { return numExecuted_; }

  private:
    struct Entry
    {
        Tick when;
        RefEvent::Priority priority;
        std::uint64_t sequence;
        RefEvent *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    void
    skimCancelled()
    {
        while (!heap_.empty()) {
            const auto it = cancelled_.find(heap_.top().sequence);
            if (it == cancelled_.end())
                return;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::size_t liveEvents_ = 0;
};

inline RefEvent::~RefEvent()
{
    if (scheduled_ && queue_)
        queue_->deschedule(this);
}

} // namespace ref
} // namespace cmpcache

#endif // CMPCACHE_SIM_REFERENCE_EVENT_QUEUE_HH
