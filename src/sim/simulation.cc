#include "sim/simulation.hh"

#include <fstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

/** Propagate the workload's line size into the cache configs. */
SystemConfig
resolveConfig(const SystemConfig &cfg, const WorkloadParams &workload)
{
    SystemConfig local = cfg;
    if (workload.numThreads != local.numThreads()) {
        throw SimException(SimError(
            SimErrorKind::Config,
            cstr("workload has ", workload.numThreads,
                 " threads but the system expects ",
                 local.numThreads())));
    }
    local.l2.lineSize = workload.lineSize;
    local.l3.lineSize = workload.lineSize;
    return local;
}

} // namespace

Simulation::Simulation(const SystemConfig &cfg,
                       const WorkloadParams &workload)
    : inputName_(workload.name)
{
    const SystemConfig local = resolveConfig(cfg, workload);
    const SyntheticWorkload synth(workload);
    sys_ = std::make_unique<CmpSystem>(local, synth.makeBundle());
    if (local.warmupPass)
        sys_->functionalWarmup(synth.makeBundle());
    initObservability();
}

Simulation::Simulation(const SystemConfig &cfg, TraceBundle traces,
                       std::string input_name, TraceBundle *warmup)
    : inputName_(std::move(input_name))
{
    sys_ = std::make_unique<CmpSystem>(cfg, std::move(traces));
    if (warmup)
        sys_->functionalWarmup(std::move(*warmup));
    initObservability();
}

Simulation::~Simulation() = default;

void
Simulation::initObservability()
{
    const ObsConfig &obs = sys_->config().obs;
    if (obs.sampleEvery > 0) {
        sampler_ = std::make_unique<Sampler>(
            sys_->eventq(), *sys_, obs.sampleEvery);
        sampler_->setPendingProbe(
            [this] { return sys_->totalPending(); });
        for (const auto &path : sys_->defaultProbePaths()) {
            const bool ok = sampler_->watch(path);
            cmp_assert(ok, "unresolvable probe path '", path, "'");
        }
        sampler_->start();
    }
    if (obs.traceEnabled) {
        tracer_ =
            std::make_unique<TraceRecorder>(obs.traceCapacity);
        sys_->ring().setTracer(tracer_.get());
    }
    const WatchdogConfig &wd = sys_->config().watchdog;
    if (wd.enabled()) {
        watchdog_ = std::make_unique<Watchdog>(*sys_, wd);
        watchdog_->setTripHook([this](const SimError &err) {
            warn("watchdog trip (", toString(err.kind), "): ",
                 err.message);
            if (tracer_ && !watchdogFlushPath_.empty()) {
                std::ofstream os(watchdogFlushPath_);
                if (os) {
                    writeChromeTrace(os, tracer_->events(),
                                     sampled() ? &samples() : nullptr);
                    inform("watchdog: flushed transaction trace to ",
                           watchdogFlushPath_);
                }
            }
        });
    }
}

const ExperimentResult &
Simulation::run()
{
    if (!ran_) {
        if (watchdog_)
            watchdog_->start();
        const Tick finish = sys_->run();
        result_ = collectResult(*sys_, finish, inputName_);
        ran_ = true;
    }
    return result_;
}

const SampleSeries &
Simulation::samples() const
{
    static const SampleSeries empty;
    return sampler_ ? sampler_->series() : empty;
}

std::vector<TraceEvent>
Simulation::traceEvents() const
{
    return tracer_ ? tracer_->events() : std::vector<TraceEvent>{};
}

} // namespace cmpcache
