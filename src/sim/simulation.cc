#include "sim/simulation.hh"

#include <fstream>
#include <istream>

#include "common/logging.hh"
#include "sim/domain_scheduler.hh"
#include "sim/invariants.hh"

namespace cmpcache
{

/**
 * Live gauges over the streaming-ingest pipeline. Formulas read the
 * reader thread's atomic counters, so sampled values depend on
 * wall-clock producer/consumer interleaving -- which is why they are
 * only registered when obs.ingest asks for them (deterministic
 * outputs must not include them; see ObsConfig::ingestGauges).
 */
struct Simulation::IngestStats
{
    IngestStats(stats::Group *parent, StreamIngest &ingest,
                EventQueue *eq)
        : group(parent, "ingest"),
          queueDepthNow(&group, "queue_depth_now",
                        "records in the ingest queue right now",
                        [&ingest] {
                            return double(ingest.queueDepth());
                        }),
          ingested(&group, "ingested",
                   "records accepted into the ingest queue",
                   [&ingest] {
                       return double(ingest.recordsIngested());
                   }),
          dropped(&group, "dropped",
                  "records shed by the drop overflow policy",
                  [&ingest] {
                      return double(ingest.recordsDropped());
                  }),
          producerWaits(&group, "producer_waits",
                        "times the producer blocked on a full queue",
                        [&ingest] {
                            return double(ingest.producerBlockedWaits());
                        }),
          demuxBufferedNow(&group, "demux_buffered_now",
                           "records buffered in the demux skew window",
                           [&ingest] {
                               return double(ingest.demuxBuffered());
                           }),
          ratePerKtick(&group, "rate_per_ktick",
                       "mean ingest rate, records per 1000 ticks",
                       [&ingest, &eq = *eq] {
                           const auto t = eq.curTick();
                           return t ? 1000.0
                                          * double(
                                              ingest.recordsIngested())
                                          / double(t)
                                    : 0.0;
                       })
    {
    }

    stats::Group group;
    stats::Formula queueDepthNow;
    stats::Formula ingested;
    stats::Formula dropped;
    stats::Formula producerWaits;
    stats::Formula demuxBufferedNow;
    stats::Formula ratePerKtick;
};

/**
 * Live gauges over the parallel domain scheduler's per-phase round
 * accounting (bench/scale.cpp reads these to publish the wall-time
 * breakdown). The seconds formulas read steady_clock accumulators,
 * so -- like the ingest gauges -- they are only registered when
 * obs.sched asks for them; byte-compared outputs never include them.
 */
struct Simulation::SchedStats
{
    SchedStats(stats::Group *parent, const DomainScheduler &sched)
        : group(parent, "sched"),
          rounds(&group, "rounds", "barrier rounds completed",
                 [&sched] {
                     return double(sched.phaseStats().rounds);
                 }),
          fanOutRounds(&group, "fan_out_rounds",
                       "rounds that woke the worker pool",
                       [&sched] {
                           return double(sched.phaseStats().fanOutRounds);
                       }),
          soloRounds(&group, "solo_rounds",
                     "rounds with exactly one active domain "
                     "(barriers elided)",
                     [&sched] {
                         return double(sched.phaseStats().soloRounds);
                     }),
          renumberSorts(&group, "renumber_sorts",
                        "rounds that needed the cross-queue birth sort",
                        [&sched] {
                            return double(
                                sched.phaseStats().renumberSorts);
                        }),
          birthRecords(&group, "birth_records",
                       "round-born events renumbered",
                       [&sched] {
                           return double(sched.phaseStats().birthRecords);
                       }),
          coreSecs(&group, "core_secs",
                   "wall seconds in phase 1 (domain execution)",
                   [&sched] {
                       return sched.phaseStats().coreSeconds;
                   }),
          barrierSecs(&group, "barrier_secs",
                      "wall seconds the coordinator waited at the "
                      "done barrier",
                      [&sched] {
                          return sched.phaseStats().barrierSeconds;
                      }),
          replaySecs(&group, "replay_secs",
                     "wall seconds replaying issues + uncore drain",
                     [&sched] {
                         return sched.phaseStats().replaySeconds;
                     }),
          globalSecs(&group, "global_secs",
                     "wall seconds in boundary global events",
                     [&sched] {
                         return sched.phaseStats().globalSeconds;
                     }),
          renumberSecs(&group, "renumber_secs",
                       "wall seconds renumbering round births",
                       [&sched] {
                           return sched.phaseStats().renumberSeconds;
                       })
    {
    }

    stats::Group group;
    stats::Formula rounds;
    stats::Formula fanOutRounds;
    stats::Formula soloRounds;
    stats::Formula renumberSorts;
    stats::Formula birthRecords;
    stats::Formula coreSecs;
    stats::Formula barrierSecs;
    stats::Formula replaySecs;
    stats::Formula globalSecs;
    stats::Formula renumberSecs;
};

namespace
{

/** Propagate the workload's line size into the cache configs. */
SystemConfig
resolveConfig(const SystemConfig &cfg, const WorkloadParams &workload)
{
    SystemConfig local = cfg;
    if (workload.numThreads != local.numThreads()) {
        throw SimException(SimError(
            SimErrorKind::Config,
            cstr("workload has ", workload.numThreads,
                 " threads but the system expects ",
                 local.numThreads())));
    }
    local.l2.lineSize = workload.lineSize;
    local.l3.lineSize = workload.lineSize;
    return local;
}

} // namespace

Simulation::Simulation(const SystemConfig &cfg,
                       const WorkloadParams &workload)
    : inputName_(workload.name)
{
    const SystemConfig local = resolveConfig(cfg, workload);
    const SyntheticWorkload synth(workload);
    sys_ = std::make_unique<CmpSystem>(local, synth.makeBundle());
    if (local.warmupPass)
        sys_->functionalWarmup(synth.makeBundle());
    initObservability();
}

Simulation::Simulation(const SystemConfig &cfg, TraceBundle traces,
                       std::string input_name, TraceBundle *warmup)
    : inputName_(std::move(input_name))
{
    sys_ = std::make_unique<CmpSystem>(cfg, std::move(traces));
    if (warmup)
        sys_->functionalWarmup(std::move(*warmup));
    initObservability();
}

Simulation::Simulation(const SystemConfig &cfg,
                       std::unique_ptr<std::istream> stream,
                       std::string input_name)
    : inputName_(std::move(input_name))
{
    SystemConfig local = cfg;
    // A stream is consumed exactly once: there is no second pass to
    // warm with, so the timed run starts cold.
    local.warmupPass = false;
    ingest_ = std::make_unique<StreamIngest>(
        std::move(stream), local.stream, local.numThreads());
    sys_ = std::make_unique<CmpSystem>(local, ingest_->makeBundle());
    initIngestGauges();
    initObservability();
}

Simulation::~Simulation() = default;

void
Simulation::initIngestGauges()
{
    if (!ingest_ || !sys_->config().obs.ingestGauges)
        return;
    ingestStats_ = std::make_unique<IngestStats>(sys_.get(), *ingest_,
                                                 &sys_->eventq());
}

void
Simulation::initSchedGauges()
{
    const DomainScheduler *sched = sys_->domainScheduler();
    if (!sched || !sys_->config().obs.schedGauges)
        return;
    schedStats_ = std::make_unique<SchedStats>(sys_.get(), *sched);
}

void
Simulation::initObservability()
{
    initSchedGauges();
    const ObsConfig &obs = sys_->config().obs;
    if (obs.sampleEvery > 0) {
        sampler_ = std::make_unique<Sampler>(
            sys_->eventq(), *sys_, obs.sampleEvery);
        sampler_->setPendingProbe(
            [this] { return sys_->totalPending(); });
        for (const auto &path : sys_->defaultProbePaths()) {
            const bool ok = sampler_->watch(path);
            cmp_assert(ok, "unresolvable probe path '", path, "'");
        }
        if (ingestStats_) {
            for (const char *path :
                 {"ingest.queue_depth_now", "ingest.ingested",
                  "ingest.dropped", "ingest.producer_waits",
                  "ingest.demux_buffered_now",
                  "ingest.rate_per_ktick"}) {
                const bool ok = sampler_->watch(path);
                cmp_assert(ok, "unresolvable probe path '", path,
                           "'");
            }
        }
        sampler_->start();
    }
    if (obs.traceEnabled) {
        tracer_ =
            std::make_unique<TraceRecorder>(obs.traceCapacity);
        sys_->ring().setTracer(tracer_.get());
    }
    if (sys_->config().check.invariantsEvery > 0) {
        invariantEvent_ = std::make_unique<EventFunctionWrapper>(
            [this] { invariantSweep(); }, "invariant-sweep",
            Event::StatPri);
        EventQueue &eq = sys_->eventq();
        eq.schedule(invariantEvent_.get(),
                    eq.curTick()
                        + sys_->config().check.invariantsEvery);
    }
    const WatchdogConfig &wd = sys_->config().watchdog;
    if (wd.enabled()) {
        watchdog_ = std::make_unique<Watchdog>(*sys_, wd);
        watchdog_->setTripHook([this](const SimError &err) {
            warn("watchdog trip (", toString(err.kind), "): ",
                 err.message);
            if (tracer_ && !watchdogFlushPath_.empty()) {
                std::ofstream os(watchdogFlushPath_);
                if (os) {
                    writeChromeTrace(os, tracer_->events(),
                                     sampled() ? &samples() : nullptr);
                    inform("watchdog: flushed transaction trace to ",
                           watchdogFlushPath_);
                }
            }
        });
    }
}

void
Simulation::invariantSweep()
{
    if (sys_->finished())
        return; // drained; never keep the queue alive

    CoherenceCheckOptions opts;
    const CoherenceCheck chk = checkCoherence(*sys_, opts);
    if (!chk.clean()) {
        throw SimException(SimError(
            SimErrorKind::Conformance,
            cstr("online invariant sweep found ", chk.violations,
                 " coherence violation(s) at tick ",
                 sys_->eventq().curTick(), ":\n", chk.report())));
    }
    if (VersionOracle *oracle = sys_->conformanceOracle())
        oracle->throwIfViolated();

    EventQueue &eq = sys_->eventq();
    eq.schedule(invariantEvent_.get(),
                eq.curTick() + sys_->config().check.invariantsEvery);
}

const ExperimentResult &
Simulation::run()
{
    if (!ran_) {
        if (watchdog_)
            watchdog_->start();
        const Tick finish = sys_->run();
        // With online checking on, re-verify the structural
        // invariants once more on the drained machine, where the
        // transient-bookkeeping (snarf reservation) rules apply too.
        if (sys_->config().check.invariantsEvery > 0) {
            CoherenceCheckOptions opts;
            opts.quiesced = true;
            const CoherenceCheck chk = checkCoherence(*sys_, opts);
            if (!chk.clean()) {
                throw SimException(SimError(
                    SimErrorKind::Conformance,
                    cstr("quiesced invariant check found ",
                         chk.violations,
                         " coherence violation(s):\n",
                         chk.report())));
            }
        }
        result_ = collectResult(*sys_, finish, inputName_);
        ran_ = true;
    }
    return result_;
}

const SampleSeries &
Simulation::samples() const
{
    static const SampleSeries empty;
    return sampler_ ? sampler_->series() : empty;
}

std::vector<TraceEvent>
Simulation::traceEvents() const
{
    return tracer_ ? tracer_->events() : std::vector<TraceEvent>{};
}

} // namespace cmpcache
