#include "sim/invariants.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"
#include "sim/cmp_system.hh"

namespace cmpcache
{

namespace
{

void
record(CoherenceCheck &out, std::size_t max_messages, Addr line,
       const std::string &what)
{
    ++out.violations;
    if (out.messages.size() >= max_messages)
        return;
    std::ostringstream os;
    os << what << ", line 0x" << std::hex << line;
    out.messages.push_back(os.str());
}

} // namespace

std::string
CoherenceCheck::report() const
{
    std::string s;
    for (const auto &m : messages) {
        s += m;
        s += '\n';
    }
    if (violations > messages.size())
        s += cstr("... and ", violations - messages.size(), " more\n");
    return s;
}

CoherenceCheck
checkCoherence(CmpSystem &sys, const CoherenceCheckOptions &opts)
{
    const std::size_t max_messages = opts.maxMessages;

    // Gather every valid L2 copy per line address.
    std::map<Addr, std::vector<LineState>> copies;
    for (unsigned i = 0; i < sys.numL2s(); ++i) {
        sys.l2(i).tags().forEach([&](const TagEntry &e) {
            if (e.valid())
                copies[e.lineAddr].push_back(e.state);
        });
    }

    CoherenceCheck out;
    for (const auto &[line, states] : copies) {
        // Functional warmup can seed one line writable into several
        // L2s -- states a running machine never produces. Skip them,
        // mirroring the conformance oracle's warmup taint.
        if (sys.isWarmupApproximate(line)) {
            ++out.linesSkipped;
            continue;
        }
        ++out.linesChecked;
        unsigned owners = 0;   // M or T
        unsigned modified = 0; // M specifically
        unsigned excl = 0;     // E
        unsigned sl = 0;       // SL
        for (const auto s : states) {
            owners += s == LineState::Modified
                      || s == LineState::Tagged;
            modified += s == LineState::Modified;
            excl += s == LineState::Exclusive;
            sl += s == LineState::SharedLast;
        }
        if (owners > 1)
            record(out, max_messages, line,
                   cstr(owners, " dirty owners (M/T)"));
        if (modified && states.size() > 1)
            record(out, max_messages, line,
                   "M alongside other copies");
        if (excl && states.size() > 1)
            record(out, max_messages, line,
                   "E alongside other copies");
        if (sl > 1)
            record(out, max_messages, line,
                   cstr(sl, " SL intervention sources"));
        // A store gaining ownership invalidates the L3 copy at
        // combine, so an owned L2 line must not still be valid off
        // chip. (Modified/Exclusive/Tagged; plain Shared copies
        // coexist with the L3 by design.)
        if (opts.checkL3 && (owners || excl)
            && sys.l3().hasLineValid(line))
            record(out, max_messages, line,
                   "stale L3 copy alongside an owned L2 copy");
    }

    // On a drained machine every snarf reservation must have been
    // consumed or aborted; a leftover entry means a transaction
    // leaked its bookkeeping.
    if (opts.quiesced) {
        for (unsigned i = 0; i < sys.numL2s(); ++i) {
            const auto pending = sys.l2(i).pendingSnarfCount();
            const auto inflight = sys.l2(i).snarfInFlightCount();
            if (pending || inflight) {
                ++out.violations;
                if (out.messages.size() < max_messages)
                    out.messages.push_back(cstr(
                        "dangling snarf bookkeeping in quiesced L2 ",
                        i, ": ", pending, " reservations, ", inflight,
                        " in flight"));
            }
        }
    }
    return out;
}

CoherenceCheck
checkCoherence(CmpSystem &sys, std::size_t max_messages)
{
    CoherenceCheckOptions opts;
    opts.maxMessages = max_messages;
    return checkCoherence(sys, opts);
}

} // namespace cmpcache
