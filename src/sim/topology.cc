#include "sim/topology.hh"

#include <sstream>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

const char *
toString(RingLayout layout)
{
    switch (layout) {
      case RingLayout::SingleRing:
        return "single_ring";
      case RingLayout::DualRing:
        return "dual_ring";
      case RingLayout::HierRing:
        return "hier_ring";
    }
    cmp_panic("bad RingLayout ", static_cast<int>(layout));
}

bool
tryRingLayoutFromString(const std::string &s, RingLayout &out)
{
    if (s == "single_ring") {
        out = RingLayout::SingleRing;
    } else if (s == "dual_ring") {
        out = RingLayout::DualRing;
    } else if (s == "hier_ring") {
        out = RingLayout::HierRing;
    } else {
        return false;
    }
    return true;
}

TopologyParams
TopologyParams::resolved() const
{
    if (!legacyKeysUsed())
        return *this;
    // The legacy keys described a flat machine of num_l2s clusters
    // with threads_per_l2 hardware threads each (both defaulting to
    // 4); SMT is folded into the per-cluster thread count.
    TopologyParams r = *this;
    r.l2s = legacyNumL2s ? legacyNumL2s : 4;
    const unsigned tpl = legacyThreadsPerL2 ? legacyThreadsPerL2 : 4;
    r.cores = r.l2s * tpl;
    r.smt = 1;
    if (legacyL3Slices)
        r.l3Slices = legacyL3Slices;
    return r;
}

TopologyParams
TopologyParams::flat(unsigned num_l2s, unsigned threads_per_l2)
{
    TopologyParams p;
    p.l2s = num_l2s;
    p.cores = num_l2s * threads_per_l2;
    p.smt = 1;
    return p;
}

std::vector<std::string>
validateTopology(const TopologyParams &raw)
{
    std::vector<std::string> errs;

    if (raw.canonicalKeysUsed && raw.legacyKeysUsed()) {
        errs.push_back(
            "legacy machine-shape keys (num_l2s, threads_per_l2, "
            "ring.num_stops, l3.slices) conflict with canonical "
            "topology.* keys; use one style only");
    }

    const TopologyParams p = raw.resolved();

    if (p.cores == 0)
        errs.push_back("topology.cores must be positive");
    if (p.smt == 0)
        errs.push_back("topology.smt must be positive");
    if (p.l2s == 0)
        errs.push_back("topology.l2s must be positive");

    // AgentId is 8 bits and the L3 and memory controller take the two
    // ids above the L2s; ThreadId is 16 bits.
    if (p.l2s > 253) {
        errs.push_back(cstr("topology.l2s (", p.l2s,
                            ") must be <= 253: agent ids are 8-bit "
                            "and the L3 and memory controller occupy "
                            "the two ids above the L2s"));
    }
    if (p.cores != 0 && p.smt != 0
        && p.threads() / p.smt != p.cores) {
        errs.push_back(cstr("topology.cores (", p.cores,
                            ") * topology.smt (", p.smt,
                            ") overflows the thread count"));
    } else if (p.threads() > 65535) {
        errs.push_back(cstr("topology.cores * topology.smt (",
                            p.threads(),
                            " threads) must be <= 65535: thread ids "
                            "are 16-bit"));
    }

    if (p.cores != 0 && p.smt != 0 && p.l2s != 0 && p.l2s <= 253
        && p.threads() % p.l2s != 0) {
        errs.push_back(cstr("topology.cores * topology.smt (",
                            p.threads(),
                            " threads) must divide evenly across "
                            "topology.l2s (", p.l2s, ")"));
    }

    if (p.l3Slices == 0 || !isPowerOf2(p.l3Slices)) {
        errs.push_back(cstr("topology.l3_slices (", p.l3Slices,
                            ") must be a positive power of two: the "
                            "slice hash is an address mask"));
    }

    if (p.layout == RingLayout::HierRing) {
        if (p.rings < 2) {
            errs.push_back(cstr("topology.rings (", p.rings,
                                ") must be >= 2 when topology.layout "
                                "is hier_ring"));
        } else if (p.l2s != 0 && p.l2s % p.rings != 0) {
            errs.push_back(cstr("topology.l2s (", p.l2s,
                                ") must divide evenly across "
                                "topology.rings (", p.rings,
                                ") when topology.layout is "
                                "hier_ring"));
        }
    }

    // The legacy stop count is derived now, but when the deprecated
    // key names a different machine than the L2 count implies, the
    // config is internally inconsistent and must say so (same
    // contract, and message, as before the topology API).
    if (p.legacyRingStops != 0 && p.l2s != 0
        && p.legacyRingStops != p.l2s + 2) {
        errs.push_back(cstr("ring.num_stops (", p.legacyRingStops,
                            ") must equal num_l2s + 2 (", p.l2s + 2,
                            ": L2s + L3 + memory)"));
    }

    return errs;
}

Expected<CmpTopology>
CmpTopology::build(const TopologyParams &raw)
{
    const auto errs = validateTopology(raw);
    if (!errs.empty()) {
        std::string msg = "invalid topology:";
        for (const auto &e : errs)
            msg += "\n  - " + e;
        return SimError(SimErrorKind::Config, msg);
    }
    return CmpTopology(raw.resolved());
}

CmpTopology
CmpTopology::flat(unsigned num_l2s, unsigned threads_per_l2)
{
    auto t = build(TopologyParams::flat(num_l2s, threads_per_l2));
    if (!t.ok())
        cmp_panic("CmpTopology::flat: ", t.error().message);
    return *t;
}

CmpTopology::CmpTopology(const TopologyParams &resolved) : p_(resolved)
{
    if (p_.layout == RingLayout::HierRing)
        perLocal_ = p_.l2s / p_.rings;
}

AgentId
CmpTopology::l2Agent(unsigned i) const
{
    cmp_assert(i < p_.l2s, "l2Agent(", i, ") of ", p_.l2s);
    return static_cast<AgentId>(i);
}

AgentId
CmpTopology::memAgent() const
{
    return static_cast<AgentId>(p_.l2s + 1);
}

unsigned
CmpTopology::l2OfThread(unsigned t) const
{
    cmp_assert(t < numThreads(), "thread ", t, " of ", numThreads());
    return t / threadsPerL2();
}

RingStop
CmpTopology::stopOfAgent(AgentId a) const
{
    cmp_assert(a < numAgents(), "agent ", unsigned{a}, " of ",
               numAgents());
    // Placement convention across every layout: agents own stops in
    // id order (L2s first, then L3, then memory). Which physical ring
    // a stop sits on is placeOf()'s business.
    return RingStop(a);
}

unsigned
CmpTopology::numRings() const
{
    switch (p_.layout) {
      case RingLayout::SingleRing:
        return 1;
      case RingLayout::DualRing:
        return 2;
      case RingLayout::HierRing:
        return p_.rings + 1;
    }
    cmp_panic("bad layout");
}

unsigned
CmpTopology::ringSize(unsigned r) const
{
    cmp_assert(r < numRings(), "ring ", r, " of ", numRings());
    if (p_.layout != RingLayout::HierRing)
        return numStops();
    // Local rings carry their L2 share plus the bridge stop; the
    // global ring (last index) carries the bridges, the L3 and the
    // memory controller.
    return r < p_.rings ? perLocal_ + 1 : p_.rings + 2;
}

unsigned
CmpTopology::numDataLanes() const
{
    return p_.layout == RingLayout::DualRing ? 2 : 1;
}

CmpTopology::Place
CmpTopology::placeOf(RingStop stop) const
{
    const unsigned s = stop.value();
    cmp_assert(s < numStops(), "stop ", s, " of ", numStops());
    if (p_.layout != RingLayout::HierRing)
        return Place{0, s};
    const unsigned global = p_.rings;
    if (s < p_.l2s)
        return Place{s / perLocal_, s % perLocal_};
    // L3 and memory sit on the global ring after the bridges.
    return Place{global, p_.rings + (s - p_.l2s)};
}

unsigned
CmpTopology::route(RingStop src, RingStop dst, DataLeg legs[3]) const
{
    if (src == dst)
        return 0;
    const Place a = placeOf(src);
    const Place b = placeOf(dst);
    if (a.ring == b.ring) {
        legs[0] = DataLeg{a.ring, a.pos, b.pos};
        return 1;
    }

    // Hierarchical cross-ring path: exit over the local bridge (the
    // last local position), cross the global ring between bridges
    // (bridge of local ring r sits at global position r), and enter
    // through the destination's bridge.
    const unsigned global = p_.rings;
    unsigned n = 0;
    unsigned src_global = a.pos;
    unsigned dst_global = b.pos;
    if (a.ring != global) {
        legs[n++] = DataLeg{a.ring, a.pos, perLocal_};
        src_global = a.ring;
    }
    if (b.ring != global)
        dst_global = b.ring;
    legs[n++] = DataLeg{global, src_global, dst_global};
    if (b.ring != global)
        legs[n++] = DataLeg{b.ring, perLocal_, b.pos};
    return n;
}

std::string
CmpTopology::describe() const
{
    std::ostringstream os;
    os << p_.cores << "c";
    if (p_.smt > 1)
        os << "x" << p_.smt << "smt";
    os << " " << p_.l2s << "xL2 " << p_.l3Slices << "xL3sl "
       << toString(p_.layout);
    if (p_.layout == RingLayout::HierRing) {
        os << "(" << p_.rings << "x" << (perLocal_ + 1) << "+"
           << (p_.rings + 2) << ")";
    } else {
        os << "(" << numStops() << ")";
    }
    return os.str();
}

} // namespace cmpcache
