#include "sim/system_config.hh"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

namespace
{

/**
 * Check a cache geometry: capacity must divide into a power-of-two
 * number of sets (the tag array indexes with a mask). @p prefix is
 * the config-key prefix ("l2" / "l3") used in messages.
 */
void
checkGeometry(std::vector<std::string> &errs, const char *prefix,
              std::uint64_t size_bytes, unsigned assoc,
              unsigned line_size)
{
    if (assoc == 0) {
        errs.push_back(cstr(prefix, ".assoc must be positive"));
        return;
    }
    if (line_size == 0 || !isPowerOf2(line_size)) {
        // Reported once for l2.line_size by the shared check; keep
        // the geometry math safe regardless.
        return;
    }
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(assoc) * line_size;
    if (size_bytes % way_bytes != 0) {
        errs.push_back(cstr(prefix, ".size_bytes (", size_bytes,
                            ") must be a multiple of ", prefix,
                            ".assoc * ", prefix, ".line_size (",
                            way_bytes, ")"));
        return;
    }
    const std::uint64_t sets = size_bytes / way_bytes;
    if (!isPowerOf2(sets)) {
        errs.push_back(cstr(prefix, ".size_bytes / (", prefix,
                            ".assoc * ", prefix,
                            ".line_size) must give a power-of-two "
                            "set count, got ", sets));
    }
}

} // namespace

L2Params
SystemConfig::effectiveL2() const
{
    L2Params p = l2;
    const TopologyParams t = shape();
    if (t.l2KbPerL2 != 0)
        p.sizeBytes = t.l2KbPerL2 * 1024;
    return p;
}

L3Params
SystemConfig::effectiveL3() const
{
    L3Params p = l3;
    const TopologyParams t = shape();
    p.slices = t.l3Slices;
    if (t.l3MbPerSlice != 0)
        p.sizeBytes = t.l3MbPerSlice * 1024 * 1024 * t.l3Slices;
    return p;
}

std::vector<std::string>
SystemConfig::validationErrors() const
{
    std::vector<std::string> errs;

    // The machine shape validates as a unit (topology.* keys plus any
    // legacy aliases parked on it by config parsing).
    for (auto &e : validateTopology(topology))
        errs.push_back(std::move(e));

    // Geometry checks run on the *effective* cache parameters, after
    // the topology's per-level sizing overrides are applied.
    const L2Params l2 = effectiveL2();
    const L3Params l3 = effectiveL3();

    if (l2.lineSize != l3.lineSize) {
        errs.push_back(cstr("l2.line_size (", l2.lineSize,
                            ") and l3.line_size (", l3.lineSize,
                            ") differ"));
    }
    if (l2.lineSize == 0 || !isPowerOf2(l2.lineSize))
        errs.push_back("l2.line_size must be a power of two");

    checkGeometry(errs, "l2", l2.sizeBytes, l2.assoc, l2.lineSize);
    checkGeometry(errs, "l3", l3.sizeBytes, l3.assoc, l3.lineSize);

    if (l2.slices == 0)
        errs.push_back("l2.slices must be positive");
    if (l2.mshrs == 0)
        errs.push_back("l2.mshrs must be positive");
    if (l2.wbqDepth == 0)
        errs.push_back("l2.wbq_depth must be positive");
    if (l3.wbQueueDepth == 0)
        errs.push_back("l3.wb_queue_depth must be positive");
    if (cpu.maxOutstanding == 0)
        errs.push_back("cpu.outstanding must be positive");

    if (policy.usesWbht()) {
        if (policy.wbht.assoc == 0)
            errs.push_back("wbht.assoc must be positive");
        else if (policy.wbht.entries % policy.wbht.assoc) {
            errs.push_back(cstr("wbht.entries (", policy.wbht.entries,
                                ") must divide into full wbht.assoc (",
                                policy.wbht.assoc, ") sets"));
        }
    }
    if (policy.usesSnarf()) {
        if (policy.snarf.assoc == 0)
            errs.push_back("snarf.assoc must be positive");
        else if (policy.snarf.entries % policy.snarf.assoc) {
            errs.push_back(cstr("snarf.entries (",
                                policy.snarf.entries,
                                ") must divide into full snarf.assoc (",
                                policy.snarf.assoc, ") sets"));
        }
    }
    if ((policy.usesWbht() || policy.useRetrySwitch)
        && policy.retry.windowCycles == 0) {
        errs.push_back("retry.window must be positive when the WBHT "
                       "or the retry switch is in use");
    }

    if (fault.enabled()) {
        auto plan = parseFaultPlan(fault.plan);
        if (!plan)
            errs.push_back(cstr("fault.plan: ", plan.error().message));
    }
    if (watchdog.enabled() && watchdog.stallChecks == 0)
        errs.push_back("watchdog.stall_checks must be positive");

    if (arrival.model == ArrivalModel::Open && arrival.rate <= 0.0) {
        errs.push_back(cstr(
            "arrival.rate must be positive when arrival.model is "
            "open, got ", arrival.rate));
    }
    if (arrival.burstFactor < 1.0) {
        errs.push_back(cstr("arrival.burst_factor must be >= 1, got ",
                            arrival.burstFactor));
    }
    if (stream.queueCapacity == 0)
        errs.push_back("stream.queue_capacity must be positive");
    if (stream.demuxCapacity == 0)
        errs.push_back("stream.demux_capacity must be positive");

    if (runThreads > 0) {
        // The parallel scheduler's conservative window is built from
        // the ring's cross-domain latencies; a zero-latency link
        // collapses it and no safe cut exists. "auto" may resolve to
        // the serial kernel on this host, but the config must be
        // valid on every host it could run on.
        const std::string rt = runThreads == RunThreadsAuto
                                   ? std::string("auto")
                                   : cstr(runThreads);
        if (ring.snoopLatency == 0) {
            errs.push_back(cstr(
                "ring.snoop_latency must be >= 1 when run.threads (",
                rt, ") enables the parallel kernel: a "
                "zero-latency link leaves no conservative lookahead "
                "window"));
        }
        if (ring.requesterOverhead == 0) {
            errs.push_back(cstr(
                "ring.requester_overhead must be >= 1 when "
                "run.threads (", rt, ") enables the parallel "
                "kernel: a zero-latency issue path leaves no "
                "conservative lookahead window"));
        }
        if (ring.addrSlotCycles == 0) {
            errs.push_back(cstr(
                "ring.addr_slot_cycles must be >= 1 when run.threads "
                "(", rt, ") enables the parallel kernel"));
        }
    }

    return errs;
}

unsigned
SystemConfig::resolvedRunThreads() const
{
    if (runThreads != RunThreadsAuto)
        return runThreads;
    // One worker per core domain saturates the claim loop; more only
    // park at the barrier. One hardware thread means fanning out is
    // pure overhead, so auto keeps the serial kernel there (the
    // explicit-N path is still available for differential testing).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (hw < 2)
        return 0;
    return std::min(hw, numL2s());
}

void
SystemConfig::validate() const
{
    const auto errs = validationErrors();
    if (errs.empty())
        return;
    std::string msg = "invalid configuration:";
    for (const auto &e : errs)
        msg += "\n  - " + e;
    throw SimException(SimError(SimErrorKind::Config, msg));
}

std::string
SystemConfig::summary() const
{
    const L2Params l2 = effectiveL2();
    const L3Params l3 = effectiveL3();
    const TopologyParams t = shape();
    std::ostringstream os;
    os << t.cores << "cx" << t.smt << "smt " << t.l2s << "xL2("
       << l2.sizeBytes / 1024 << "KB," << l2.assoc << "w) L3("
       << l3.sizeBytes / (1024 * 1024) << "MB," << l3.assoc << "w,"
       << l3.slices << "sl) " << toString(t.layout)
       << " policy=" << toString(policy.policy)
       << " outstanding=" << cpu.maxOutstanding;
    return os.str();
}

} // namespace cmpcache
