#include "sim/system_config.hh"

#include <sstream>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cmpcache
{

void
SystemConfig::validate() const
{
    if (numL2s == 0 || threadsPerL2 == 0)
        cmp_fatal("need at least one L2 and one thread per L2");
    if (ring.numStops != numL2s + 2)
        cmp_fatal("ring stops (", ring.numStops, ") must equal "
                  "numL2s + 2 (", numL2s + 2, ": L2s + L3 + memory)");
    if (l2.lineSize != l3.lineSize)
        cmp_fatal("L2 and L3 line sizes differ");
    if (!isPowerOf2(l2.lineSize))
        cmp_fatal("line size must be a power of two");
    if (policy.usesWbht() && policy.wbht.entries % policy.wbht.assoc)
        cmp_fatal("WBHT entries must divide into full sets");
    if (policy.usesSnarf() && policy.snarf.entries % policy.snarf.assoc)
        cmp_fatal("snarf table entries must divide into full sets");
}

std::string
SystemConfig::summary() const
{
    std::ostringstream os;
    os << numL2s << "xL2(" << l2.sizeBytes / 1024 << "KB," << l2.assoc
       << "w) L3(" << l3.sizeBytes / (1024 * 1024) << "MB," << l3.assoc
       << "w) policy=" << toString(policy.policy)
       << " outstanding=" << cpu.maxOutstanding;
    return os.str();
}

} // namespace cmpcache
