/**
 * @file
 * Base class for all simulated components.
 */

#ifndef CMPCACHE_SIM_SIM_OBJECT_HH
#define CMPCACHE_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cmpcache
{

/**
 * A named simulated component with its own stats group, bound to the
 * system's event queue.
 */
class SimObject : public stats::Group
{
  public:
    SimObject(stats::Group *parent, std::string name, EventQueue &eq);
    ~SimObject() override = default;

    EventQueue &eventq() { return eq_; }
    Tick curTick() const { return eq_.curTick(); }

    /** Schedule @p ev @p delta ticks from now. */
    void schedule(Event &ev, Tick delta);

    /** Called once after the whole system is wired, before run. */
    virtual void startup() {}

  private:
    EventQueue &eq_;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_SIM_OBJECT_HH
