/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events execute in (tick, priority, insertion-sequence) order, so two
 * runs of the same configuration and seed are bit-identical. All
 * component models in cmpcache are driven from one EventQueue; one
 * tick equals one core clock cycle (6 GHz in the paper's Table 3).
 *
 * The kernel is built for throughput on the simulator's actual event
 * mix, where almost every event lands within a few ticks of now:
 *
 *  - A bucketed near-future wheel (WheelSpan = 1024 ticks, power of
 *    two) makes schedule and fire O(1) for events inside the window;
 *    a binary far-heap absorbs the rare long-delay events and feeds
 *    them into the wheel as time advances.
 *  - Cancellation is zero-hash: every queue entry snapshots the
 *    event's schedule sequence number, which doubles as a generation
 *    counter. deschedule() just bumps the event's generation (by
 *    clearing scheduled_ and letting the next schedule() assign a
 *    fresh sequence); stale entries are recognized on pop by a single
 *    integer compare. No unordered_set, no hashing anywhere.
 *  - An intrusive free-list pool of one-shot callback events backs
 *    EventQueue::at(), eliminating the per-transaction new/delete
 *    churn of the L2/L3/ring models.
 *
 * See docs/kernel.md for the ordering contract and the design
 * rationale; src/sim/reference_event_queue.hh preserves the previous
 * heap+hash kernel as a differential-testing oracle and benchmark
 * baseline.
 */

#ifndef CMPCACHE_SIM_EVENT_QUEUE_HH
#define CMPCACHE_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/inplace_function.hh"
#include "common/types.hh"

namespace cmpcache
{

class Event;
class EventQueue;

/**
 * Sequencing policy plugged into a queue by an external scheduler
 * (src/sim/domain_scheduler.hh). When installed, schedule() asks the
 * hook for the entry's sequence number instead of drawing from the
 * queue's own counter, letting a multi-queue scheduler keep one
 * globally consistent (priority, sequence) order across queues. A
 * null hook (the default) leaves the serial kernel untouched.
 */
class SchedulerHook
{
  public:
    virtual ~SchedulerHook() = default;

    /** Sequence number for @p ev being scheduled at @p when. */
    virtual std::uint64_t
    nextSequence(EventQueue &q, Event *ev, Tick when) = 0;

    /**
     * A pending event was removed without executing (deschedule, or
     * a dying event purging its entries). Together with
     * nextSequence(), this lets the scheduler cache each queue's head
     * between rounds: the head can only change through a schedule, a
     * removal, or a pop the scheduler itself performed.
     */
    virtual void onMutation(EventQueue &q) { (void)q; }
};

/**
 * A schedulable unit of work. Derive and implement process(), or use
 * EventFunctionWrapper for lambda-based events.
 *
 * An Event may be scheduled on at most one queue at a time; it may be
 * rescheduled freely once it has fired or been descheduled.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    using Priority = std::int8_t;

    static constexpr Priority DefaultPri = 0;
    /** Snoop-response combining runs after same-cycle requests. */
    static constexpr Priority CombinePri = 10;
    /** Stat/bookkeeping events run last in a cycle. */
    static constexpr Priority StatPri = 100;

    explicit Event(Priority prio = DefaultPri) : priority_(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback executed when the event fires. */
    virtual void process() = 0;

    /** Debug name (used in panic messages). */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    Priority priority() const { return priority_; }

    /** Sequence number of the current (or latest) schedule. */
    std::uint64_t sequence() const { return sequence_; }

    /**
     * Opaque per-schedule cookie owned by a SchedulerHook (the domain
     * scheduler stores its birth-record pointer here). Unused -- and
     * untouched -- by the serial kernel.
     */
    void *hookCookie() const { return hookCookie_; }
    void setHookCookie(void *c) { hookCookie_ = c; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /**
     * Sequence number of the current (or most recent) schedule. Each
     * schedule() assigns a fresh, globally unique sequence, so the
     * pair (scheduled_, sequence_) acts as the event's generation:
     * a queue entry is live iff the event is still scheduled under
     * the very sequence the entry was created with.
     */
    std::uint64_t sequence_ = 0;
    /** Queue entries (live or stale) still referencing this event. */
    std::uint32_t liveEntries_ = 0;
    /** Last queue this event was scheduled on (for safe teardown). */
    EventQueue *queue_ = nullptr;
    /** SchedulerHook scratch (see hookCookie()). */
    void *hookCookie_ = nullptr;
    Priority priority_;
    bool scheduled_ = false;
};

/** Event that invokes a bound callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, std::string name,
                         Priority prio = DefaultPri)
        : Event(prio), fn_(std::move(fn)), name_(std::move(name))
    {
    }

    void process() override { fn_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * Pooled one-shot callback event. Users never see these directly:
 * EventQueue::at() acquires one from the queue's free list, and
 * process() returns it before running the callback, so a steady
 * stream of fire-and-forget transactions recycles a handful of
 * objects instead of hitting the allocator per event.
 */
class PooledEvent final : public Event
{
  public:
    /**
     * Inline capture budget for one-shot callbacks. The largest hot
     * captures are [this, BusRequest, Tick] / [agent, BusRequest,
     * CombinedResult] at ~40 bytes; anything bigger fails to compile
     * instead of silently heap-allocating.
     */
    static constexpr std::size_t FnCapacity = 48;

    PooledEvent() = default;

    void process() override;
    std::string
    name() const override
    {
        return what_ ? what_ : "pooled";
    }

  private:
    friend class EventQueue;

    InplaceFunction<void(), FnCapacity> fn_;
    PooledEvent *nextFree_ = nullptr;
    EventQueue *home_ = nullptr;
    /** Static debug label supplied by the at() caller. */
    const char *what_ = nullptr;
};

/**
 * The event queue. Not thread-safe by design: cmpcache simulations are
 * single-threaded and deterministic (parallel sweeps give every job
 * its own queue).
 */
class EventQueue
{
  public:
    /** Near-future window covered by the wheel, in ticks. */
    static constexpr Tick WheelSpan = 1024;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event without executing it. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /**
     * Run @p fn once at absolute tick @p when (>= curTick()) on a
     * pooled one-shot event. @p what must point to storage outliving
     * the event (string literals). The callable is stored inline
     * (PooledEvent::FnCapacity bytes) -- no allocation per event.
     */
    template <typename Fn>
    void
    at(Tick when, Fn &&fn, const char *what = "one-shot")
    {
        PooledEvent *ev = acquirePooled();
        ev->fn_ = std::forward<Fn>(fn);
        ev->home_ = this;
        ev->what_ = what;
        schedule(ev, when);
    }

    bool empty() const { return liveEvents_ == 0; }
    std::size_t numPending() const { return liveEvents_; }

    /** Execute the single next event. Queue must not be empty. */
    void step();

    /**
     * Run until the queue drains or the next event lies beyond
     * @p max_tick.
     * @return the final current tick.
     */
    Tick run(Tick max_tick = MaxTick);

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /**
     * Count one unit of work executed without an event behind it (the
     * CPU hit fast path batches references inside one event; counting
     * each batched reference keeps numExecuted() identical to the
     * unbatched kernel's event count, which the differential suites
     * compare across modes).
     */
    void countVirtualExecuted() { ++numExecuted_; }

    /**
     * The tick bound of the innermost run() in progress, MaxTick
     * outside run(). Inline batching (the CPU hit fast path) must not
     * advance time past this bound: run(max_tick) promises that no
     * work beyond max_tick has happened when it returns.
     */
    Tick runBudget() const { return runBudget_; }

    /** One-shot pool objects ever allocated (pool growth metric). */
    std::size_t poolSize() const { return poolAllocated_; }

    /** Low 56 bits of the packed key hold the sequence number. */
    static constexpr std::uint64_t SeqMask =
        (std::uint64_t{1} << 56) - 1;

    /**
     * Same-tick ordering key: sign-flipped priority in the top byte,
     * schedule sequence in the low 56 bits. A single unsigned compare
     * orders entries by (priority, sequence).
     */
    static std::uint64_t
    makeKey(Event::Priority prio, std::uint64_t seq)
    {
        const auto p = static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(prio) ^ 0x80u);
        return (p << 56) | (seq & SeqMask);
    }

    /** Position + identity of a pending event (see peekNext()). */
    struct PeekResult
    {
        Tick when = 0;
        std::uint64_t key = 0;
        Event *ev = nullptr;
    };

    /**
     * Locate the next live event without executing it or advancing
     * time. Stale (descheduled) entries encountered on the way are
     * reclaimed. @return false when the queue is drained.
     */
    bool peekNext(PeekResult &out);

    /**
     * Lower bound on the tick of the next pending entry, without
     * sorting buckets, validating liveness or reclaiming anything --
     * one occupancy-bitmap scan, the same primitive a pop pays.
     * Stale (descheduled) entries count, so the result can be
     * earlier than the true next live event; callers that only need
     * "nothing can run before tick T" (TraceCpu::batchHits) stay
     * conservative. MaxTick when the queue is drained.
     */
    Tick
    nextPendingTick() const
    {
        if (wheelCount_ != 0)
            return curTick_
                   + static_cast<Tick>(nextOccupied(curTick_));
        if (!far_.empty())
            return far_.front().when;
        return MaxTick;
    }

    /**
     * Remove and return the next live event whose position
     * (tick, key) is strictly before (@p max_tick, @p max_key),
     * advancing curTick_ to its tick and counting it as executed --
     * the caller runs process(). Returns nullptr, with time left
     * untouched, when the queue is drained or the next live event
     * lies at or beyond the bound.
     */
    Event *popNextBefore(Tick max_tick, std::uint64_t max_key);

    /** Advance time to @p t; no-op when @p t <= curTick(). */
    void
    syncTo(Tick t)
    {
        if (t > curTick_)
            advanceTo(t);
    }

    /**
     * Replace the sequence number of a still-scheduled event (the
     * domain scheduler's end-of-round renumbering). The old queue
     * entry turns stale and is lazily reclaimed, exactly like a
     * deschedule+reschedule, but the event's tick and priority are
     * preserved.
     */
    void rekey(Event *ev, std::uint64_t seq);

    /** Install (or clear) the external sequencing policy. */
    void setSchedulerHook(SchedulerHook *hook) { hook_ = hook; }

    /** The installed sequencing policy, or null. */
    SchedulerHook *schedulerHook() const { return hook_; }

  private:
    friend class Event;
    friend class PooledEvent;

    static constexpr Tick WheelMask = WheelSpan - 1;
    static constexpr unsigned BitmapWords =
        static_cast<unsigned>(WheelSpan / 64);
    static constexpr std::size_t PoolChunk = 64;

    /** Entry in a wheel bucket; the bucket's tick is implicit. */
    struct WheelEntry
    {
        std::uint64_t key;
        Event *ev;
    };

    /**
     * One tick's worth of events, consumed front-to-back through a
     * cursor. Appends are always O(1); keys arrive almost always in
     * increasing order (same priority, rising sequence), and the rare
     * out-of-order append (an urgent-priority latecomer) just marks
     * the bucket dirty. The pending range [head, end) is sorted
     * lazily, when the bucket is drained -- a stable O(n) counting
     * sort on the priority byte (see sortBucket) -- so a burst of
     * mixed-priority same-tick schedules costs one linear pass
     * instead of n vector inserts.
     */
    struct Bucket
    {
        std::vector<WheelEntry> entries;
        std::size_t head = 0;
        bool dirty = false;
        /**
         * The counting sort's within-priority stability argument no
         * longer holds: an in-place rekey() rewrote a key inside an
         * already-dirty pending range, so same-priority entries may
         * be out of sequence order. Drain with a full key sort.
         */
        bool full = false;
    };

    struct FarEntry
    {
        Tick when;
        std::uint64_t key;
        Event *ev;
    };

    /** Is this entry still the event's current schedule? */
    static bool
    isLive(const Event *ev, std::uint64_t key)
    {
        return ev && ev->scheduled_
               && ((ev->sequence_ ^ key) & SeqMask) == 0;
    }

    /** First tick no longer coverable by the wheel from @p now. */
    static Tick
    horizonOf(Tick now)
    {
        return now >= MaxTick - WheelSpan ? MaxTick : now + WheelSpan;
    }

    void setBit(unsigned b) { bits_[b >> 6] |= std::uint64_t{1} << (b & 63); }
    void clearBit(unsigned b) { bits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63)); }

    /** Sort the pending range of a dirty bucket (lazy, on drain). */
    void sortBucket(Bucket &b);

    /**
     * Distance (in ticks) from @p start_tick to the nearest occupied
     * bucket, or -1 if the wheel is empty.
     */
    int nextOccupied(Tick start_tick) const;

    void pushWheel(Tick when, std::uint64_t key, Event *ev);
    void pushFar(Tick when, std::uint64_t key, Event *ev);
    FarEntry popFarMin();

    /** Advance time to @p t, migrating far events into the wheel. */
    void advanceTo(Tick t);

    /**
     * Remove and return the next live event at or before
     * @p max_tick, advancing curTick_ to its tick. Returns nullptr
     * when the queue is drained (time untouched) or when the next
     * live event lies beyond the bound (time advanced to
     * @p max_tick).
     */
    Event *popNext(Tick max_tick);

    /** Null every entry referencing @p ev (dying with stale refs). */
    void purge(Event *ev);

    PooledEvent *acquirePooled();
    void releasePooled(PooledEvent *ev);

    std::array<Bucket, WheelSpan> wheel_;
    std::array<std::uint64_t, BitmapWords> bits_{};
    /** Entries (live or stale) currently in the wheel. */
    std::size_t wheelCount_ = 0;
    /** Min-heap on (when, key) of events at or beyond the horizon. */
    std::vector<FarEntry> far_;
    /** Reused scatter buffer for sortBucket's counting sort. */
    std::vector<WheelEntry> scratch_;

    Tick curTick_ = 0;
    Tick runBudget_ = MaxTick;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::size_t liveEvents_ = 0;
    SchedulerHook *hook_ = nullptr;

    PooledEvent *freeHead_ = nullptr;
    std::vector<std::unique_ptr<PooledEvent[]>> poolChunks_;
    std::size_t poolAllocated_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_EVENT_QUEUE_HH
