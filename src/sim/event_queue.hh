/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events execute in (tick, priority, insertion-sequence) order, so two
 * runs of the same configuration and seed are bit-identical. All
 * component models in cmpcache are driven from one EventQueue; one
 * tick equals one core clock cycle (6 GHz in the paper's Table 3).
 */

#ifndef CMPCACHE_SIM_EVENT_QUEUE_HH
#define CMPCACHE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace cmpcache
{

class EventQueue;

/**
 * A schedulable unit of work. Derive and implement process(), or use
 * EventFunctionWrapper for lambda-based events.
 *
 * An Event may be scheduled on at most one queue at a time; it may be
 * rescheduled freely once it has fired or been descheduled.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    using Priority = std::int8_t;

    static constexpr Priority DefaultPri = 0;
    /** Snoop-response combining runs after same-cycle requests. */
    static constexpr Priority CombinePri = 10;
    /** Stat/bookkeeping events run last in a cycle. */
    static constexpr Priority StatPri = 100;

    explicit Event(Priority prio = DefaultPri) : priority_(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback executed when the event fires. */
    virtual void process() = 0;

    /** Debug name (used in panic messages). */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    Priority priority() const { return priority_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    Priority priority_;
    EventQueue *queue_ = nullptr;
};

/** Event that invokes a bound callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, std::string name,
                         Priority prio = DefaultPri)
        : Event(prio), fn_(std::move(fn)), name_(std::move(name))
    {
    }

    void process() override { fn_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * The event queue. Not thread-safe by design: cmpcache simulations are
 * single-threaded and deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulation time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event without executing it. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    bool empty() const { return liveEvents_ == 0; }
    std::size_t numPending() const { return liveEvents_; }

    /** Execute the single next event. Queue must not be empty. */
    void step();

    /**
     * Run until the queue drains or the next event lies beyond
     * @p max_tick.
     * @return the final current tick.
     */
    Tick run(Tick max_tick = MaxTick);

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return numExecuted_; }

  private:
    struct Entry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    /** Drop cancelled entries from the top of the heap. */
    void skimCancelled();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    /**
     * Sequences whose heap entry was invalidated by deschedule() or
     * reschedule(). Stale entries are skipped by sequence alone so a
     * descheduled event may be destroyed immediately.
     */
    std::unordered_set<std::uint64_t> cancelled_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::size_t liveEvents_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_EVENT_QUEUE_HH
