#include "sim/domain_scheduler.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

/**
 * Sequence band for events born inside a round. Bit 55 set keeps the
 * band inside EventQueue::SeqMask (56 bits) while ordering after every
 * resolved sequence -- which is exactly where serial order puts a
 * round-born event relative to any event scheduled before the round.
 */
constexpr std::uint64_t ProvisionalBase = std::uint64_t{1} << 55;

Tick
satAdd(Tick a, Tick b)
{
    return a > MaxTick - b ? MaxTick : a + b;
}

/** Strict (tick, key) order on raw positions. */
bool
posLess(Tick at, std::uint64_t ak, Tick bt, std::uint64_t bk)
{
    return at != bt ? at < bt : ak < bk;
}

/** One pause/yield in a busy-wait loop. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/**
 * Centralized epoch barrier tuned for sub-microsecond rounds. The
 * round cadence here is ~100k+ barriers per second, where a futex
 * barrier's wake latency dominates the round itself; late arrivals
 * therefore spin briefly before falling back to a futex wait, so a
 * worker parked between back-to-back rounds resumes in nanoseconds
 * while long idle stretches still sleep instead of burning a core.
 *
 * The release store of `epoch_` (after zeroing `arrived_`) paired
 * with the acquire loads in the wait loops provides the same
 * happens-before edges std::barrier gave: everything written before
 * any arrive_and_wait() is visible to every thread after it returns.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned n) : total_(n) {}

    void
    arrive_and_wait(int spin_limit)
    {
        const std::uint32_t e = epoch_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
            == total_) {
            arrived_.store(0, std::memory_order_relaxed);
            epoch_.store(e + 1, std::memory_order_release);
            epoch_.notify_all();
            return;
        }
        for (int spin = 0; spin < spin_limit; ++spin) {
            if (epoch_.load(std::memory_order_acquire) != e)
                return;
            cpuRelax();
        }
        while (epoch_.load(std::memory_order_acquire) == e)
            epoch_.wait(e, std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint32_t> epoch_{0};
    const unsigned total_;
};

} // namespace

/** Execution context of the event running on the current thread. */
struct DomainScheduler::ExecCtx
{
    /** Position of the executing event (the "parent" of its
     * births). */
    Pos pos;
    /**
     * Birth counter within the parent's execution. schedule() calls
     * and deferred issues draw from the same counter, so a replayed
     * issue's internal births sort into the exact call-order slot the
     * serial kernel would have given them.
     */
    std::uint32_t birthCtr = 0;
    /** Replaying a deferred issue: births nest under fixedIdx. */
    bool applyMode = false;
    std::uint32_t fixedIdx = 0;
    std::uint32_t subCtr = 0;
    /** Core domain being executed (defer routing); phase 1 only. */
    unsigned domain = 0;
    /**
     * Inside a round's parallel phase: births flag their own hook
     * (single writer) instead of the coordinator's serial dirty list,
     * and currentExecBound() exposes the cut below.
     */
    bool phase1 = false;
    /** Execution bound handed to executeDomain (phase 1 only). */
    Tick cutTick = 0;
    std::uint64_t cutKey = 0;
};

thread_local DomainScheduler::ExecCtx *DomainScheduler::tlsCtx_ =
    nullptr;

/** Exception-safe installer for the thread's execution context. */
class DomainScheduler::TlsCtxScope
{
  public:
    explicit TlsCtxScope(ExecCtx *ctx) : prev_(tlsCtx_)
    {
        tlsCtx_ = ctx;
    }
    ~TlsCtxScope() { tlsCtx_ = prev_; }

    TlsCtxScope(const TlsCtxScope &) = delete;
    TlsCtxScope &operator=(const TlsCtxScope &) = delete;

  private:
    ExecCtx *prev_;
};

/**
 * Per-queue sequencing policy. Outside a round (null thread context)
 * it hands out resolved sequences from the scheduler's global counter
 * in call order, which is the serial kernel's order for sequential
 * moments like simulation startup. Inside a round it hands out
 * provisional sequences and logs a birth record; per-queue provisional
 * order equals serial order restricted to that queue, because only the
 * owning domain (phase 1) and the coordinator (phases 3+, in serial
 * position order) ever bear into a given queue.
 */
class DomainScheduler::QueueHook final : public SchedulerHook
{
  public:
    explicit QueueHook(DomainScheduler &s) : sched_(s) {}

    /**
     * Chunked, pointer-stable birth-record storage. Records are
     * parent-linked by pointer and events carry cookies into the
     * arena, so growth must never relocate a record; clearing keeps
     * the chunks, so a steady-state round allocates nothing.
     */
    class Arena
    {
      public:
        BirthRec &
        append()
        {
            if (size_ == capacity_) {
                chunks_.push_back(
                    std::make_unique<BirthRec[]>(ChunkSize));
                capacity_ += ChunkSize;
            }
            BirthRec &r = chunks_[size_ / ChunkSize][size_ % ChunkSize];
            ++size_;
            return r;
        }

        BirthRec &
        at(std::size_t i)
        {
            return chunks_[i / ChunkSize][i % ChunkSize];
        }

        bool empty() const { return size_ == 0; }
        std::size_t size() const { return size_; }
        void clear() { size_ = 0; }

      private:
        static constexpr std::size_t ChunkSize = 128;
        std::vector<std::unique_ptr<BirthRec[]>> chunks_;
        std::size_t size_ = 0;
        std::size_t capacity_ = 0;
    };

    /** A logged birth: its record and its provisional sequence. */
    struct Birth
    {
        BirthRec *rec;
        std::uint64_t seq;
    };

    /**
     * Log one birth under the executing context. @p ev may be null:
     * the hit fast path logs virtual attempt events this way, which
     * consume a sequence slot at renumber time (mirroring the serial
     * counter) without ever entering a queue.
     */
    Birth
    logBirth(ExecCtx *ctx, EventQueue &q, Event *ev)
    {
        if (arena_.empty()) {
            // First birth this round: flag the hook so renumbering
            // visits only queues that actually received births. A
            // phase-1 birth flags the hook itself (single writer:
            // only the owning domain bears into a core queue during
            // the parallel phase; the done barrier publishes the
            // flag); serial-phase births log coordinator-side.
            if (ctx->phase1)
                dirtyPhase1_ = true;
            else
                sched_.serialDirty_.push_back(this);
        }
        BirthRec &rec = arena_.append();
        rec.parent = ctx->pos;
        if (ctx->applyMode) {
            rec.idx = ctx->fixedIdx;
            rec.subIdx = ctx->subCtr++;
        } else {
            rec.idx = ctx->birthCtr++;
            rec.subIdx = 0;
        }
        rec.ev = ev;
        rec.queue = &q;
        if (ev)
            ev->setHookCookie(&rec);
        // In the reference wiring each queue's births arrive in
        // serial order already (phase 1 pops in position order;
        // serial phases bear at or beyond the cut), letting
        // renumberRound skip its sort when one queue is dirty. Track
        // it rather than assume it: synthetic harnesses may bear
        // across queues in arbitrary order.
        if (sorted_ && last_ && cmpRec(last_, &rec) > 0)
            sorted_ = false;
        last_ = &rec;
        return Birth{&rec, ProvisionalBase + provCtr_++};
    }

    std::uint64_t
    nextSequence(EventQueue &q, Event *ev, Tick when) override
    {
        (void)when;
        cache_->valid = false;
        ExecCtx *ctx = tlsCtx_;
        if (!ctx) {
            cmp_assert(sched_.nextGlobalSeq_ < ProvisionalBase,
                       "sequence space exhausted");
            return sched_.nextGlobalSeq_++;
        }
        return logBirth(ctx, q, ev).seq;
    }

    void
    onMutation(EventQueue &q) override
    {
        (void)q;
        cache_->valid = false;
    }

    void
    clearRound()
    {
        arena_.clear();
        sorted_ = true;
        last_ = nullptr;
    }

    /** Stable storage: records are parent-linked by pointer. */
    Arena arena_;
    /** Set by the owning domain on its first phase-1 birth. */
    bool dirtyPhase1_ = false;
    /** Arena still in serial birth order (sort elision). */
    bool sorted_ = true;
    /** This queue's slot in the scheduler's head cache. */
    HeadCache *cache_ = nullptr;

  private:
    DomainScheduler &sched_;
    const BirthRec *last_ = nullptr;
    std::uint64_t provCtr_ = 0;
};

/**
 * Long-lived worker threads plus the two round barriers. Workers park
 * on `start` between rounds; the coordinator only wakes them when a
 * round has more than one active domain. All cut/claim state is
 * written before `start` and read back after `done`, so the barriers
 * provide every needed happens-before edge.
 */
struct DomainScheduler::WorkerPool
{
    WorkerPool(DomainScheduler &s, unsigned workers)
        : sched(s), start(workers), done(workers)
    {
        // Fanning out only pays when the host can actually run a
        // second thread; on a single hardware thread the coordinator
        // executes every domain inline instead (bit-identical by
        // construction -- both paths run the same claim loop). The
        // override exists so the multi-threaded path stays testable
        // (TSan, differential suites) on any machine.
        const unsigned hw = std::thread::hardware_concurrency();
        if (const char *env = std::getenv("CMPCACHE_FANOUT"))
            fanOutAllowed = env[0] != '0';
        else
            fanOutAllowed = hw == 0 || hw >= 2;
        // Spinning through the serial phases keeps barrier latency in
        // nanoseconds, but only when every pool thread has a core to
        // spin on; oversubscribed pools sleep on the futex instead.
        spinLimit = hw >= workers ? 4000 : 0;
        threads.reserve(workers - 1);
        for (unsigned i = 1; i < workers; ++i)
            threads.emplace_back([this] { workerMain(); });
    }

    ~WorkerPool()
    {
        stop.store(true, std::memory_order_relaxed);
        start.arrive_and_wait(spinLimit);
        for (auto &t : threads)
            t.join();
    }

    void
    workerMain()
    {
        for (;;) {
            start.arrive_and_wait(spinLimit);
            if (stop.load(std::memory_order_relaxed))
                return;
            sched.workerClaimLoop();
            done.arrive_and_wait(spinLimit);
        }
    }

    DomainScheduler &sched;
    SpinBarrier start;
    SpinBarrier done;
    std::vector<std::thread> threads;
    std::atomic<unsigned> nextClaim{0};
    Tick cutTick = 0;
    std::uint64_t cutKey = 0;
    std::atomic<bool> stop{false};
    bool fanOutAllowed = true;
    int spinLimit = 0;
};

DomainScheduler::DomainScheduler(std::vector<EventQueue *> core,
                                 EventQueue &uncore,
                                 EventQueue &global, const Params &p)
    : params_(p),
      core_(std::move(core)),
      uncore_(uncore),
      global_(global)
{
    cmp_assert(params_.workers >= 1, "scheduler needs >= 1 worker");
    cmp_assert(params_.lookahead >= 1,
               "zero-latency cross-domain link: the conservative "
               "lookahead window collapses");
    cmp_assert(params_.issueToLaunch >= 1,
               "zero-latency issue path: the conservative lookahead "
               "window collapses");
    for (const EventQueue *q : core_)
        cmp_assert(q != nullptr, "null core domain queue");

    outbox_.resize(core_.size());
    headCache_.resize(core_.size() + 2);
    hooks_.reserve(core_.size() + 2);
    for (EventQueue *q : core_) {
        hooks_.push_back(std::make_unique<QueueHook>(*this));
        q->setSchedulerHook(hooks_.back().get());
    }
    hooks_.push_back(std::make_unique<QueueHook>(*this));
    uncore_.setSchedulerHook(hooks_.back().get());
    hooks_.push_back(std::make_unique<QueueHook>(*this));
    global_.setSchedulerHook(hooks_.back().get());
    for (std::size_t i = 0; i < hooks_.size(); ++i)
        hooks_[i]->cache_ = &headCache_[i];

    pool_ = std::make_unique<WorkerPool>(*this, params_.workers);
}

DomainScheduler::~DomainScheduler()
{
    pool_.reset();
    for (EventQueue *q : core_)
        q->setSchedulerHook(nullptr);
    uncore_.setSchedulerHook(nullptr);
    global_.setSchedulerHook(nullptr);
}

int
DomainScheduler::cmpPos(const Pos &a, const Pos &b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick ? -1 : 1;
    const std::uint64_t apri = a.key >> 56;
    const std::uint64_t bpri = b.key >> 56;
    if (apri != bpri)
        return apri < bpri ? -1 : 1;
    if (!a.rec && !b.rec) {
        if (a.key == b.key)
            return 0;
        return a.key < b.key ? -1 : 1;
    }
    // A resolved sequence orders before any round-born one at the
    // same (tick, priority): serial sequences assigned inside the
    // round exceed every sequence assigned before it started.
    if (!a.rec)
        return -1;
    if (!b.rec)
        return 1;
    return cmpRec(a.rec, b.rec);
}

int
DomainScheduler::cmpRec(const BirthRec *a, const BirthRec *b)
{
    if (a == b)
        return 0;
    if (const int c = cmpPos(a->parent, b->parent))
        return c;
    if (a->idx != b->idx)
        return a->idx < b->idx ? -1 : 1;
    if (a->subIdx != b->subIdx)
        return a->subIdx < b->subIdx ? -1 : 1;
    return 0;
}

DomainScheduler::Pos
DomainScheduler::posOfPopped(EventQueue &q, const Event *ev)
{
    Pos p;
    p.tick = q.curTick();
    const std::uint64_t seq = ev->sequence();
    p.key = EventQueue::makeKey(ev->priority(), seq);
    if (seq >= ProvisionalBase) {
        p.rec = static_cast<const BirthRec *>(ev->hookCookie());
        cmp_assert(p.rec && p.rec->ev == ev,
                   "provisional event without a birth record");
    }
    return p;
}

bool
DomainScheduler::currentExecBound(Tick &cut_tick, std::uint64_t &cut_key)
{
    const ExecCtx *ctx = tlsCtx_;
    if (!ctx || !ctx->phase1)
        return false;
    cut_tick = ctx->cutTick;
    cut_key = ctx->cutKey;
    return true;
}

void
DomainScheduler::noteVirtualStep(EventQueue &q, Tick when,
                                 Event::Priority pri)
{
    ExecCtx *ctx = tlsCtx_;
    if (!ctx || !ctx->phase1)
        return;
    auto *h = static_cast<QueueHook *>(q.schedulerHook());
    cmp_assert(h, "virtual step on a queue without a scheduler hook");
    // The serial kernel would have scheduled this event for real (one
    // sequence draw, parented here) and then popped it, making it the
    // executing context. Mirror both halves: log an event-less birth
    // record in the slot the schedule call would have taken, then
    // re-parent the context onto it, so everything the batch bears
    // afterwards renumbers to exactly its serial sequence.
    const QueueHook::Birth b = h->logBirth(ctx, q, nullptr);
    ctx->pos.tick = when;
    ctx->pos.key = EventQueue::makeKey(pri, b.seq);
    ctx->pos.rec = b.rec;
    ctx->birthCtr = 0;
}

void
DomainScheduler::noteDeferredIssue(std::uint32_t payload)
{
    ExecCtx *ctx = tlsCtx_;
    cmp_assert(ctx && !ctx->applyMode,
               "deferred issue outside a core domain execution");
    outbox_[ctx->domain].push_back(
        OutMsg{ctx->pos, ctx->birthCtr++, payload, ctx->domain});
}

void
DomainScheduler::executeDomain(unsigned d, Tick cut_tick,
                               std::uint64_t cut_key)
{
    // Exception-safe glue teardown: a throwing event must not leave
    // the thread's issue-deferral sink or query log installed (sweep
    // workers survive a failed cell and run more jobs).
    struct LeaveScope
    {
        DomainScheduler &s;
        unsigned d;
        ~LeaveScope()
        {
            if (s.leaveFn_)
                s.leaveFn_(d);
        }
    };

    EventQueue &q = *core_[d];
    if (enterFn_)
        enterFn_(d);
    LeaveScope leave{*this, d};
    ExecCtx ctx;
    ctx.domain = d;
    ctx.phase1 = true;
    ctx.cutTick = cut_tick;
    ctx.cutKey = cut_key;
    TlsCtxScope scope(&ctx);
    while (Event *ev = q.popNextBefore(cut_tick, cut_key)) {
        ctx.pos = posOfPopped(q, ev);
        ctx.birthCtr = 0;
        ctx.applyMode = false;
        ev->process();
    }
}

void
DomainScheduler::workerClaimLoop()
{
    WorkerPool &p = *pool_;
    try {
        for (;;) {
            const unsigned i =
                p.nextClaim.fetch_add(1, std::memory_order_relaxed);
            if (i >= activeDomains_.size())
                break;
            executeDomain(activeDomains_[i], p.cutTick, p.cutKey);
        }
    } catch (...) {
        const std::lock_guard<std::mutex> g(errorMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
DomainScheduler::drainUncoreAndIssues(Tick cut_tick,
                                      std::uint64_t cut_key)
{
    mergedMsgs_.clear();
    unsigned deferring = 0;
    for (auto &ob : outbox_) {
        if (ob.empty())
            continue;
        ++deferring;
        mergedMsgs_.insert(mergedMsgs_.end(), ob.begin(), ob.end());
        ob.clear();
    }
    // One domain's deferrals are already in serial order (its pop
    // order); the merge sort only pays when several domains deferred
    // in the same round.
    if (deferring > 1)
        std::sort(mergedMsgs_.begin(), mergedMsgs_.end(),
                  [](const OutMsg &a, const OutMsg &b) {
                      if (const int c = cmpPos(a.parent, b.parent))
                          return c < 0;
                      return a.idx < b.idx;
                  });

    // Interleave deferred issues (positioned at their parent) with
    // the uncore queue's own events, in serial position order. The
    // uncore clock tracks each step so curTick() reads inside the
    // replayed issue path see exactly the serial time.
    std::size_t mi = 0;
    ExecCtx ctx;
    TlsCtxScope scope(nullptr);
    for (;;) {
        EventQueue::PeekResult u;
        bool have_u = uncore_.peekNext(u);
        if (have_u && !posLess(u.when, u.key, cut_tick, cut_key))
            have_u = false;
        const bool have_m = mi < mergedMsgs_.size();
        if (!have_u && !have_m)
            break;
        bool take_msg = have_m;
        if (have_u && have_m) {
            Pos up;
            up.tick = u.when;
            up.key = u.key;
            if ((u.key & EventQueue::SeqMask) >= ProvisionalBase)
                up.rec = static_cast<const BirthRec *>(
                    u.ev->hookCookie());
            take_msg = cmpPos(mergedMsgs_[mi].parent, up) < 0;
        }
        if (take_msg) {
            const OutMsg &m = mergedMsgs_[mi++];
            uncore_.syncTo(m.parent.tick);
            ctx.pos = m.parent;
            ctx.applyMode = true;
            ctx.fixedIdx = m.idx;
            ctx.subCtr = 0;
            tlsCtx_ = &ctx;
            applyFn_(m.domain, m.payload, m.parent.tick);
            tlsCtx_ = nullptr;
        } else {
            Event *ev = uncore_.popNextBefore(cut_tick, cut_key);
            cmp_assert(ev == u.ev, "uncore head changed under peek");
            ctx.pos = posOfPopped(uncore_, ev);
            ctx.applyMode = false;
            ctx.birthCtr = 0;
            tlsCtx_ = &ctx;
            ev->process();
            tlsCtx_ = nullptr;
        }
    }
}

void
DomainScheduler::renumberRound()
{
    // Only queues that received births this round need visiting.
    // Phase-1 dirty flags live on the active domains' hooks (written
    // by their owners, published by the done barrier); every other
    // birth was logged on the coordinator's serial list. The two are
    // disjoint: a serial birth into an already phase-1-dirty queue
    // finds a non-empty arena and logs nothing.
    dirtyHooks_.clear();
    for (unsigned d : activeDomains_) {
        QueueHook *h = hooks_[d].get();
        if (h->dirtyPhase1_) {
            h->dirtyPhase1_ = false;
            dirtyHooks_.push_back(h);
        }
    }
    for (QueueHook *h : serialDirty_)
        dirtyHooks_.push_back(h);
    serialDirty_.clear();
    if (dirtyHooks_.empty())
        return;

    renumberBuf_.clear();
    for (QueueHook *h : dirtyHooks_)
        for (std::size_t i = 0; i < h->arena_.size(); ++i)
            renumberBuf_.push_back(&h->arena_.at(i));

    // Serial birth order: parent position, then call order within the
    // parent. Every record consumes one dense sequence (mirroring the
    // serial counter), but only the latest still-pending schedule of
    // an event is rekeyed -- a record whose event has since fired,
    // been descheduled, or been rescheduled keeps its slot without
    // touching the queue. A single dirty queue whose arena is already
    // in serial order (the common round: one domain bearing into its
    // own queue) skips the sort outright.
    const bool need_sort =
        dirtyHooks_.size() > 1 || !dirtyHooks_.front()->sorted_;
    if (need_sort) {
        std::sort(renumberBuf_.begin(), renumberBuf_.end(),
                  [](BirthRec *a, BirthRec *b) {
                      return cmpRec(a, b) < 0;
                  });
        ++phaseStats_.renumberSorts;
    }
    phaseStats_.birthRecords += renumberBuf_.size();
    for (BirthRec *r : renumberBuf_) {
        cmp_assert(nextGlobalSeq_ < ProvisionalBase,
                   "sequence space exhausted");
        const std::uint64_t seq = nextGlobalSeq_++;
        Event *ev = r->ev;
        if (ev && ev->hookCookie() == r) {
            if (ev->scheduled() && ev->sequence() >= ProvisionalBase) {
                r->queue->rekey(ev, seq);
                // Rekeying happens in place: keep a cached head valid
                // by patching its key rather than forcing a re-peek.
                auto *hook = static_cast<QueueHook *>(
                    r->queue->schedulerHook());
                HeadCache *c = hook->cache_;
                if (c->valid && c->have && c->r.ev == ev)
                    c->r.key = EventQueue::makeKey(ev->priority(), seq);
            }
            ev->setHookCookie(nullptr);
        }
    }
    for (QueueHook *h : dirtyHooks_)
        h->clearRound();
}

void
DomainScheduler::syncAllTo(Tick t)
{
    for (EventQueue *q : core_)
        q->syncTo(t);
    uncore_.syncTo(t);
    global_.syncTo(t);
}

std::size_t
DomainScheduler::totalPending() const
{
    std::size_t n = global_.numPending() + uncore_.numPending();
    for (const EventQueue *q : core_)
        n += q->numPending();
    return n;
}

std::uint64_t
DomainScheduler::totalExecuted() const
{
    std::uint64_t n = global_.numExecuted() + uncore_.numExecuted();
    for (const EventQueue *q : core_)
        n += q->numExecuted();
    return n;
}

void
DomainScheduler::run(Tick max_tick)
{
    using Clock = std::chrono::steady_clock;
    const bool timed = params_.phaseStats;
    Clock::time_point t0;
    const auto mark = [&] {
        if (timed)
            t0 = Clock::now();
    };
    const auto acc = [&](double &field) {
        if (!timed)
            return;
        const auto t1 = Clock::now();
        field +=
            std::chrono::duration<double>(t1 - t0).count();
        t0 = t1;
    };

    for (;;) {
        // Round start: locate every domain's head through the head
        // cache (peeks only where a schedule, removal, or pop touched
        // the queue since the last round). An idle domain costs two
        // flag loads per round until something bears into its queue.
        HeadCache &uc = headCache_[core_.size()];
        HeadCache &gc = headCache_[core_.size() + 1];
        if (!gc.valid) {
            gc.have = global_.peekNext(gc.r);
            gc.valid = true;
        }
        if (!uc.valid) {
            uc.have = uncore_.peekNext(uc.r);
            uc.valid = true;
        }
        const bool have_g = gc.have;
        const bool have_u = uc.have;
        const EventQueue::PeekResult g = gc.r;
        const EventQueue::PeekResult u = uc.r;
        Tick core_min = MaxTick;
        for (unsigned d = 0; d < core_.size(); ++d) {
            HeadCache &cc = headCache_[d];
            if (!cc.valid) {
                cc.have = core_[d]->peekNext(cc.r);
                cc.valid = true;
            }
            if (cc.have)
                core_min = std::min(core_min, cc.r.when);
        }

        if (!have_g && !have_u && core_min == MaxTick) {
            // Drained: align every clock with the serial kernel's
            // final tick (that of the last executed event overall).
            Tick last = std::max(global_.curTick(), uncore_.curTick());
            for (const EventQueue *q : core_)
                last = std::max(last, q->curTick());
            if (preGlobalFn_)
                preGlobalFn_();
            syncAllTo(last);
            return;
        }

        Tick min_head = MaxTick;
        if (have_g)
            min_head = std::min(min_head, g.when);
        if (have_u)
            min_head = std::min(min_head, u.when);
        min_head = std::min(min_head, core_min);
        if (min_head > max_tick) {
            // Budget: everything pending lies beyond the bound.
            // EventQueue::run parks the clock at max_tick here.
            if (preGlobalFn_)
                preGlobalFn_();
            syncAllTo(max_tick);
            return;
        }

        // The cut: earliest position a global event could occupy.
        // With a lookahead probe installed, the uncore and core terms
        // use live ring state instead of assuming every pending event
        // is about to touch the ring: the next *scheduled drain* is
        // the only uncore event that can bear a global (its combine
        // lands a full snoop latency later), and no deferred issue
        // can drain below the ring's launch floor.
        Tick cut_tick = MaxTick;
        std::uint64_t cut_key = ~std::uint64_t{0};
        if (have_g) {
            cut_tick = g.when;
            cut_key = g.key;
        }
        Tick drain_at = MaxTick;
        Tick launch_floor = 0;
        const bool probed = static_cast<bool>(probeFn_);
        if (probed)
            probeFn_(drain_at, launch_floor);
        if (probed ? drain_at < MaxTick : have_u) {
            const Tick t =
                satAdd(probed ? drain_at : u.when, params_.lookahead);
            if (posLess(t, 0, cut_tick, cut_key)) {
                cut_tick = t;
                cut_key = 0;
            }
        }
        if (core_min < MaxTick) {
            Tick launch = satAdd(core_min, params_.issueToLaunch);
            if (probed && launch_floor > launch)
                launch = launch_floor;
            const Tick t = satAdd(launch, params_.lookahead);
            if (posLess(t, 0, cut_tick, cut_key)) {
                cut_tick = t;
                cut_key = 0;
            }
        }

        // Execution bound: the cut, clamped by the tick budget.
        Tick bound_tick = cut_tick;
        std::uint64_t bound_key = cut_key;
        if (max_tick < MaxTick
            && posLess(max_tick + 1, 0, bound_tick, bound_key)) {
            bound_tick = max_tick + 1;
            bound_key = 0;
        }
        const bool boundary = have_g && cut_tick == g.when
                              && cut_key == g.key
                              && g.when <= max_tick;

        // Phase 1: core domains execute strictly below the bound, in
        // parallel when more than one has work. A single active
        // domain elides both barriers (the coordinator just runs it
        // inline), and a quiescent domain never appears here at all.
        activeDomains_.clear();
        for (unsigned d = 0; d < core_.size(); ++d) {
            const HeadCache &cc = headCache_[d];
            if (cc.have
                && posLess(cc.r.when, cc.r.key, bound_tick, bound_key))
                activeDomains_.push_back(d);
        }
        mark();
        if (!activeDomains_.empty()) {
            pool_->cutTick = bound_tick;
            pool_->cutKey = bound_key;
            pool_->nextClaim.store(0, std::memory_order_relaxed);
            const bool fan_out = pool_->fanOutAllowed
                                 && !pool_->threads.empty()
                                 && activeDomains_.size() > 1;
            if (activeDomains_.size() == 1)
                ++phaseStats_.soloRounds;
            if (fan_out) {
                ++phaseStats_.fanOutRounds;
                pool_->start.arrive_and_wait(pool_->spinLimit);
            }
            workerClaimLoop();
            acc(phaseStats_.coreSeconds);
            if (fan_out) {
                pool_->done.arrive_and_wait(pool_->spinLimit);
                acc(phaseStats_.barrierSeconds);
            }
            // Pops bypass the hooks: drop the executed domains' heads.
            for (unsigned d : activeDomains_)
                headCache_[d].valid = false;
            if (firstError_) {
                std::exception_ptr e;
                std::swap(e, firstError_);
                std::rethrow_exception(e);
            }
        }

        // Phase 2+3: the coordinator replays deferred issues and the
        // uncore queue in serial position order. Skippable when phase
        // 1 deferred nothing and the uncore head (unreachable from
        // core domains, so the round-start peek still holds) is at or
        // beyond the bound.
        bool any_msgs = false;
        for (const auto &ob : outbox_)
            any_msgs = any_msgs || !ob.empty();
        if (any_msgs
            || (have_u && posLess(u.when, u.key, bound_tick, bound_key))) {
            drainUncoreAndIssues(bound_tick, bound_key);
            headCache_[core_.size()].valid = false;
        }
        acc(phaseStats_.replaySeconds);

        // Phase 4: the single boundary global event, with every clock
        // synchronized to its tick and deferred retry-window rolls
        // committed first (at their serial roll points).
        if (boundary) {
            // The pop can come back empty: a replayed cross-domain
            // issue may legally have descheduled the head (the
            // lookahead contract guarantees nothing else can occupy a
            // position at or before it, so a null pop means exactly
            // "cancelled" -- skip the phase and leave the clocks to
            // the next round).
            Event *gev = global_.popNextBefore(g.when, g.key + 1);
            if (gev) {
                headCache_[core_.size() + 1].valid = false;
                cmp_assert(gev == g.ev,
                           "global head changed mid-round");
                if (preGlobalFn_)
                    preGlobalFn_();
                syncAllTo(g.when);
                ExecCtx ctx;
                ctx.pos = posOfPopped(global_, gev);
                TlsCtxScope scope(&ctx);
                gev->process();
            }
        }
        acc(phaseStats_.globalSeconds);

        renumberRound();
        acc(phaseStats_.renumberSeconds);
        ++rounds_;
        phaseStats_.rounds = rounds_;
    }
}

} // namespace cmpcache
