#include "sim/cmp_system.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "sim/domain_scheduler.hh"

namespace cmpcache
{

/**
 * Everything the domain scheduler needs to drive this machine: the
 * queue router for the ring's one-shots, per-domain issue-capture
 * sinks, per-domain retry-query logs, and the scheduler itself. Built
 * only when cfg.runThreads > 0.
 */
struct CmpSystem::ParallelGlue
{
    /** Ring one-shot routing: point-to-point deliveries go to the
     * receiving L2's core domain; L3/memory-bound steps and combines
     * are globally ordered. */
    class Router final : public ScheduleRouter
    {
      public:
        explicit Router(CmpSystem &s) : sys_(s) {}

        EventQueue &
        queueForAgent(AgentId agent) override
        {
            if (sys_.topo_.isL2Agent(agent))
                return *sys_.coreQs_[agent];
            return sys_.eq_;
        }

        EventQueue &globalQueue() override { return sys_.eq_; }

      private:
        CmpSystem &sys_;
    };

    /** Captures one domain's cross-domain ring issues for serial
     * replay. Single writer: the worker currently executing the
     * domain; drained by the coordinator after the phase barrier. */
    class IssueSink final : public IssueDeferral
    {
      public:
        DomainScheduler *sched = nullptr;
        std::vector<BusRequest> payloads;

        void
        deferIssue(const BusRequest &req) override
        {
            payloads.push_back(req);
            sched->noteDeferredIssue(
                static_cast<std::uint32_t>(payloads.size() - 1));
        }
    };

    explicit ParallelGlue(CmpSystem &sys)
        : router(sys),
          sinks(sys.topo_.numL2s()),
          retryQueryLogs(sys.topo_.numL2s(), 0),
          sched(
              [&sys] {
                  std::vector<EventQueue *> qs;
                  qs.reserve(sys.coreQs_.size());
                  for (auto &q : sys.coreQs_)
                      qs.push_back(q.get());
                  return qs;
              }(),
              *sys.uncoreQ_, sys.eq_,
              DomainScheduler::Params{
                  sys.cfg_.resolvedRunThreads(),
                  sys.cfg_.ring.snoopLatency,
                  sys.cfg_.ring.requesterOverhead,
                  sys.cfg_.obs.schedGauges})
    {
        for (auto &s : sinks)
            s.sched = &sched;
        sched.setEnterDomainFn([this](unsigned d) {
            sinks[d].payloads.clear();
            Ring::setThreadIssueDeferral(&sinks[d]);
            RetryMonitor::setThreadQueryLog(&retryQueryLogs[d]);
        });
        sched.setLeaveDomainFn([](unsigned) {
            Ring::setThreadIssueDeferral(nullptr);
            RetryMonitor::setThreadQueryLog(nullptr);
        });
        sched.setApplyIssueFn(
            [&sys, this](unsigned d, std::uint32_t payload, Tick) {
                sys.ring_->issue(sinks[d].payloads[payload]);
            });
        sched.setPreGlobalFn([&sys, this] {
            // Commit the window rolls of the retry-gate queries made
            // during the round, at their serial roll point (the
            // maximum queried tick; rolls compose, so one roll to the
            // max equals the serial sequence of rolls).
            Tick m = 0;
            for (Tick &t : retryQueryLogs) {
                m = std::max(m, t);
                t = 0;
            }
            if (m)
                sys.retryMonitor_->rollTo(m);
        });
    }

    Router router;
    std::vector<IssueSink> sinks;
    std::vector<Tick> retryQueryLogs;
    DomainScheduler sched;
};

void
WbReuseTracker::observe(const BusRequest &req, const CombinedResult &res)
{
    if (res.resp == CombinedResp::Retry)
        return;
    const Addr line = req.lineAddr;
    if (isWriteBack(req.cmd)) {
        ++totalWb_;
        pendingTotal_.insert(line);
        if (res.resp == CombinedResp::WbAcceptL3) {
            ++acceptedWb_;
            pendingAccepted_.insert(line);
        }
        return;
    }
    if (req.cmd == BusCmd::Read || req.cmd == BusCmd::ReadExcl) {
        if (pendingTotal_.erase(line))
            ++reusedTotal_;
        if (pendingAccepted_.erase(line))
            ++reusedAccepted_;
    }
}

double
WbReuseTracker::reusedTotalPct()
const
{
    return totalWb_ ? 100.0 * static_cast<double>(reusedTotal_)
                          / static_cast<double>(totalWb_)
                    : 0.0;
}

double
WbReuseTracker::reusedAcceptedPct() const
{
    return acceptedWb_ ? 100.0 * static_cast<double>(reusedAccepted_)
                             / static_cast<double>(acceptedWb_)
                       : 0.0;
}

namespace
{

/** Validate the whole config, then build its machine shape. */
CmpTopology
makeTopology(const SystemConfig &cfg)
{
    cfg.validate();
    auto t = CmpTopology::build(cfg.topology);
    cmp_assert(t.ok(),
               "topology passed validate() but failed to build");
    return *t;
}

} // namespace

CmpSystem::CmpSystem(const SystemConfig &cfg, TraceBundle traces)
    : stats::Group("system"), cfg_(cfg), topo_(makeTopology(cfg))
{
    cmp_assert(traces.numThreads() == topo_.numThreads(),
               "trace bundle has ", traces.numThreads(),
               " threads, system wants ", topo_.numThreads());

    // Fold the topology's per-level sizing overrides in once, so every
    // component below sees the effective cache parameters.
    cfg_.l2 = cfg_.effectiveL2();
    cfg_.l3 = cfg_.effectiveL3();

    // Parallel mode: domain queues plus the scheduler glue, built
    // before any component so every schedule() -- including the
    // sequential startup ones -- draws its sequence number from the
    // scheduler's global counter. One worker would execute the exact
    // serial order through the round machinery anyway, so anything
    // below 2 skips the glue entirely and runs the bare serial
    // kernel -- same bytes, zero inline scheduler overhead.
    if (cfg_.resolvedRunThreads() >= 2) {
        for (unsigned i = 0; i < topo_.numL2s(); ++i)
            coreQs_.push_back(std::make_unique<EventQueue>());
        uncoreQ_ = std::make_unique<EventQueue>();
        par_ = std::make_unique<ParallelGlue>(*this);
    }
    EventQueue &uncore_eq = uncoreQ_ ? *uncoreQ_ : eq_;
    const auto core_eq = [this](unsigned l2) -> EventQueue & {
        return coreQs_.empty() ? eq_ : *coreQs_[l2];
    };

    retryMonitor_ =
        std::make_unique<RetryMonitor>(this, cfg_.policy.retry);
    retryMonitor_->setTimeSource([this] { return eq_.curTick(); });

    // Only built when a plan is configured: fault-free runs carry no
    // "fault" stats group, keeping their output byte-identical.
    if (cfg_.fault.enabled()) {
        auto plan = parseFaultPlan(cfg_.fault.plan);
        cmp_assert(plan.ok(), "fault plan passed validate() but "
                   "failed to parse");
        plan->seed = cfg_.fault.seed;
        faults_ = std::make_unique<FaultInjector>(this, *plan);
        faults_->setTimeSource([this] { return eq_.curTick(); });
    }

    ring_ = std::make_unique<Ring>(this, uncore_eq, cfg_.ring, topo_);
    ring_->setRetryMonitor(retryMonitor_.get());
    ring_->setFaultInjector(faults_.get());
    if (par_) {
        ring_->setScheduleRouter(&par_->router);
        // Adaptive cut: feed the scheduler live ring state. Ring
        // drains are the only uncore events that bear globals, and
        // the launch floor bounds how soon a still-deferred issue
        // can drain (see DomainScheduler::LookaheadProbeFn).
        par_->sched.setLookaheadProbeFn(
            [this](Tick &drain_at, Tick &launch_floor) {
                drain_at = ring_->nextDrainTick();
                launch_floor = ring_->launchFloor();
            });
    }

    // Agent ids and ring stops come from the topology; nothing here
    // computes placement arithmetic.
    const AgentId l3_id = topo_.l3Agent();
    const AgentId mem_id = topo_.memAgent();

    l3_ = std::make_unique<L3Cache>(this, uncore_eq, l3_id,
                                    topo_.stopOfAgent(l3_id), cfg_.l3);
    mem_ = std::make_unique<MemCtrl>(this, uncore_eq, mem_id,
                                     topo_.stopOfAgent(mem_id),
                                     cfg_.mem);
    l3_->setMemWriteFn([this] { mem_->writeFromL3(); });

    // Conformance oracle (check.oracle): built before the L2s so
    // every component can be wired to it as it is constructed.
    if (cfg_.check.oracle) {
        oracle_ = std::make_unique<VersionOracle>(l3_id);
        oracle_->setSnapshotFn(
            [this] { return conformanceSnapshot(); });
        ring_->setConformance(oracle_.get());
        l3_->setConformance(oracle_.get());
    }

    for (unsigned i = 0; i < topo_.numL2s(); ++i) {
        const AgentId id = topo_.l2Agent(i);
        auto l2 = std::make_unique<L2Cache>(
            this, core_eq(i), cstr("l2_", i), id,
            topo_.stopOfAgent(id), cfg_.l2, cfg_.policy, *ring_,
            retryMonitor_.get());
        l2->setL3Peek(
            [this](Addr a) { return l3_->hasLineValid(a); });
        l2->setCompletionCallback([this](ThreadId tid) {
            cpus_.at(tid)->onMissComplete();
        });
        l2->setFaultInjector(faults_.get());
        l2->setConformance(oracle_.get());
        ring_->attach(l2.get(), Ring::Role::L2);
        l2s_.push_back(std::move(l2));
    }
    ring_->attach(l3_.get(), Ring::Role::L3);
    ring_->attach(mem_.get(), Ring::Role::Memory);

    if (cfg_.enableWbReuseTracker) {
        reuseTracker_ = std::make_unique<WbReuseTracker>();
        ring_->setObserver(
            [this](const BusRequest &req, const CombinedResult &res) {
                reuseTracker_->observe(req, res);
            });
    }

    CpuParams cpu_params = cfg_.cpu;
    cpu_params.arrival = cfg_.arrival.model;
    cpu_params.fastpath = cfg_.runFastpath;
    for (unsigned t = 0; t < topo_.numThreads(); ++t) {
        const unsigned cluster = topo_.l2OfThread(t);
        L2Cache &l2 = *l2s_[cluster];
        auto src = std::move(traces.perThread[t]);
        if (cfg_.arrival.model == ArrivalModel::Open) {
            // Open loop: the generator stamps interarrival times; the
            // trace's own gaps are replaced by sampled ones.
            src = std::make_unique<ArrivalStamper>(
                std::move(src), cfg_.arrival,
                static_cast<ThreadId>(t));
        }
        cpus_.push_back(std::make_unique<TraceCpu>(
            this, core_eq(cluster), cstr("cpu_", t),
            static_cast<ThreadId>(t), cpu_params, l2,
            std::move(src)));
    }
}

CmpSystem::~CmpSystem() = default;

void
CmpSystem::functionalWarmup(TraceBundle traces)
{
    cmp_assert(traces.numThreads() == topo_.numThreads(),
               "warmup bundle has the wrong thread count");
    cmp_assert(eq_.curTick() == 0 && totalPending() == 0,
               "warmup must precede the timed run");

    TagArray &l3tags = l3_->tags();
    bool any = true;
    TraceRecord r;
    while (any) {
        any = false;
        for (unsigned t = 0; t < topo_.numThreads(); ++t) {
            if (!traces.perThread[t]->next(r))
                continue;
            any = true;
            L2Cache &l2 = *l2s_[topo_.l2OfThread(t)];
            TagArray &tags = l2.tags();
            const Addr line = tags.lineAlign(r.addr);
            const bool store = r.op == MemOp::Store;

            if (TagEntry *e = tags.lookup(line)) {
                if (store)
                    e->state = LineState::Modified;
                continue;
            }
            // Adaptive tables reach steady state alongside the
            // caches: every L2 observes misses (snarf use bits) the
            // way it would on the snooped address ring.
            for (auto &peer : l2s_) {
                if (auto *st = peer->snarfTable())
                    st->recordMiss(line);
            }

            TagEntry *victim = tags.findVictim(line);
            if (victim->valid()) {
                // Victim migrates to the L3 (clean and dirty alike,
                // as in the baseline policy).
                const Addr va = victim->lineAddr;
                const bool vdirty = isDirty(victim->state);
                bool l3_had_line = false;
                if (TagEntry *l3e = l3tags.lookup(va)) {
                    l3_had_line = true;
                    if (vdirty)
                        l3e->state = LineState::Modified;
                } else {
                    TagEntry *l3v = l3tags.findVictim(va);
                    l3tags.insert(l3v, va,
                                  vdirty ? LineState::Modified
                                         : LineState::Shared);
                }
                for (auto &peer : l2s_) {
                    if (auto *st = peer->snarfTable())
                        st->recordWriteBack(va);
                }
                if (!vdirty && l3_had_line) {
                    // The combined response would have reported
                    // "valid in L3": allocate WBHT entries (locally,
                    // or in every table under global allocation).
                    if (cfg_.policy.globalWbhtAllocation()) {
                        for (auto &peer : l2s_) {
                            if (auto *w = peer->wbht())
                                w->recordL3Valid(va);
                        }
                    } else if (auto *w = l2.wbht()) {
                        w->recordL3Valid(va);
                    }
                }
            }
            tags.insert(victim, line,
                        store ? LineState::Modified
                              : LineState::Exclusive);
            // Demand fetch hitting the L3 leaves the copy in place
            // (read) or claims it (store).
            if (TagEntry *l3e = l3tags.lookup(line)) {
                if (store)
                    l3tags.invalidate(l3e);
            }
        }
    }

    // Warmup installs per-L2 without invalidating peers, so a line
    // can end up writable in several L2s at once -- a state no
    // running machine produces. Remember those lines so the
    // structural invariant checker can skip them (the oracle taints
    // them the same way below).
    {
        std::unordered_map<Addr, unsigned> seeded;
        for (auto &l2 : l2s_) {
            l2->tags().forEach([&](const TagEntry &e) {
                if (e.valid())
                    ++seeded[e.lineAddr];
            });
        }
        for (const auto &[line, count] : seeded) {
            if (count >= 2)
                warmupApprox_.insert(line);
        }
    }

    // Hand the warmed cache contents to the conformance oracle as
    // version-0 seeds. Warmup installs per-L2 without invalidating
    // peers (a known approximation), so lines it left in several L2s
    // are tainted -- exempt from validation -- at seal time.
    if (oracle_) {
        for (unsigned i = 0; i < topo_.numL2s(); ++i) {
            const AgentId id = topo_.l2Agent(i);
            l2s_[i]->tags().forEach([&](const TagEntry &e) {
                if (e.valid())
                    oracle_->onSeedCopy(id, e.lineAddr,
                                        isDirty(e.state));
            });
        }
        const AgentId l3_id = topo_.l3Agent();
        l3tags.forEach([&](const TagEntry &e) {
            if (e.valid())
                oracle_->onSeedCopy(l3_id, e.lineAddr,
                                    isDirty(e.state));
        });
        oracle_->sealSeeding();
    }
}

std::string
CmpSystem::conformanceSnapshot()
{
    std::ostringstream os;
    os << "machine state: tick=" << eq_.curTick()
       << " events=" << totalExecuted()
       << " ring_pending=" << ring_->pendingRequests();
    for (unsigned i = 0; i < topo_.numL2s(); ++i) {
        L2Cache &l2 = *l2s_[i];
        os << " l2_" << i << "{wbq=" << l2.writeBackQueue().size()
           << " mshr=" << l2.mshrFile().inUse()
           << " snarfs=" << l2.pendingSnarfCount() << "}";
    }
    unsigned done = 0;
    for (const auto &cpu : cpus_)
        done += cpu->done();
    os << " cpus_done=" << done << "/" << cpus_.size();
    return os.str();
}

Tick
CmpSystem::run()
{
    for (auto &cpu : cpus_)
        cpu->startup();
    if (par_)
        par_->sched.run(cfg_.maxTicks);
    else
        eq_.run(cfg_.maxTicks);

    if (!finished()) {
        throw SimException(SimError(
            SimErrorKind::Budget,
            cstr("simulation hit the ", cfg_.maxTicks,
                 "-tick safety limit before the traces drained (",
                 totalPending(), " events pending); likely a "
                 "deadlock or an undersized maxTicks")));
    }

    // Violations recorded by domain-worker hooks surface at serial
    // points; end of run is the last one.
    if (oracle_)
        oracle_->throwIfViolated();

    Tick finish = 0;
    for (const auto &cpu : cpus_)
        finish = std::max(finish, cpu->finishTick());
    return finish;
}

std::size_t
CmpSystem::totalPending() const
{
    std::size_t n = eq_.numPending();
    if (uncoreQ_)
        n += uncoreQ_->numPending();
    for (const auto &q : coreQs_)
        n += q->numPending();
    return n;
}

std::uint64_t
CmpSystem::totalExecuted() const
{
    std::uint64_t n = eq_.numExecuted();
    if (uncoreQ_)
        n += uncoreQ_->numExecuted();
    for (const auto &q : coreQs_)
        n += q->numExecuted();
    return n;
}

DomainScheduler *
CmpSystem::domainScheduler()
{
    return par_ ? &par_->sched : nullptr;
}

bool
CmpSystem::finished() const
{
    return std::all_of(cpus_.begin(), cpus_.end(),
                       [](const auto &c) { return c->done(); });
}

std::vector<std::string>
CmpSystem::defaultProbePaths() const
{
    std::vector<std::string> paths = {
        "ring.pending_now",
        "ring.retry_responses",
        "ring.requests",
        "retry_monitor.retries_seen",
        "retry_monitor.window_retries_now",
        "retry_monitor.last_window_retries",
        "retry_monitor.windows_elapsed",
        "retry_monitor.wbht_active_now",
        "retry_monitor.gate_transitions",
        "l3.incoming_queue_busy_now",
        "l3.retries_issued",
        "mem.outstanding_reads_now",
        "mem.reads",
    };
    for (unsigned i = 0; i < numL2s(); ++i) {
        const std::string l2 = cstr("l2_", i, ".");
        paths.push_back(l2 + "wbq_depth_now");
        paths.push_back(l2 + "mshr_occupancy_now");
        paths.push_back(l2 + "wbht_gate_now");
        paths.push_back(l2 + "wb_issued");
        paths.push_back(l2 + "wb_aborted_by_wbht");
        paths.push_back(l2 + "wb_snarfed_out");
        paths.push_back(l2 + "snarfed_received");
        paths.push_back(l2 + "snarfed_dropped");
    }
    if (faults_) {
        paths.push_back("fault.windows_active_now");
        paths.push_back("fault.forced_l3_retries");
        paths.push_back("fault.nacks");
        paths.push_back("fault.delayed_launches");
        paths.push_back("fault.snarf_suppressed");
    }
    return paths;
}

std::uint64_t
CmpSystem::totalL2WbIssued() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->wbIssued();
    return n;
}

std::uint64_t
CmpSystem::totalL2Accesses() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->demandAccesses();
    return n;
}

std::uint64_t
CmpSystem::totalL2Hits() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->demandHits();
    return n;
}

double
CmpSystem::l2HitRate() const
{
    const auto a = totalL2Accesses();
    return a ? static_cast<double>(totalL2Hits())
                   / static_cast<double>(a)
             : 0.0;
}

std::uint64_t
CmpSystem::totalSnarfedReceived() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->snarfedReceived();
    return n;
}

std::uint64_t
CmpSystem::totalSnarfLocalUse() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->snarfedUsedLocally();
    return n;
}

std::uint64_t
CmpSystem::totalSnarfInterventionUse() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->snarfedUsedForIntervention();
    return n;
}

std::uint64_t
CmpSystem::totalWbSnarfedOut() const
{
    std::uint64_t n = 0;
    for (const auto &l2 : l2s_)
        n += l2->wbSnarfedOutCount();
    return n;
}

double
CmpSystem::wbhtCorrectFraction() const
{
    std::uint64_t correct = 0;
    std::uint64_t total = 0;
    for (const auto &l2 : l2s_) {
        if (const auto *w = l2->wbht()) {
            correct += w->correct();
            total += w->decisions();
        }
    }
    return total ? static_cast<double>(correct)
                       / static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
CmpSystem::offChipAccesses() const
{
    // The L3 data arrays and memory are both off chip.
    return l3_->supplies() + mem_->reads();
}

} // namespace cmpcache
