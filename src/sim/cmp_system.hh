/**
 * @file
 * CmpSystem: the assembled Figure 1 machine.
 *
 * Wires the topology's trace-driven hardware threads (16 in the
 * paper's machine) into its shared L2 caches, an off-chip L3 victim
 * cache and a memory controller over the intrachip ring, with the
 * Snoop Collector and the paper's adaptive write-back machinery
 * configured per PolicyConfig. All agent-id and placement arithmetic
 * comes from the validated CmpTopology.
 */

#ifndef CMPCACHE_SIM_CMP_SYSTEM_HH
#define CMPCACHE_SIM_CMP_SYSTEM_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "check/version_oracle.hh"
#include "common/flat_map.hh"
#include "core/retry_monitor.hh"
#include "cpu/trace_cpu.hh"
#include "fault/fault_injector.hh"
#include "l2/l2_cache.hh"
#include "l3/l3_cache.hh"
#include "memctrl/mem_ctrl.hh"
#include "ring/ring.hh"
#include "sim/system_config.hh"
#include "trace/trace.hh"

namespace cmpcache
{

class DomainScheduler;

/**
 * Per-line write-back reuse accounting (paper Table 2): a write back
 * counts as "reused" when the line is demanded again after it left an
 * L2.
 */
class WbReuseTracker
{
  public:
    void observe(const BusRequest &req, const CombinedResult &res);

    std::uint64_t totalWb() const { return totalWb_; }
    std::uint64_t acceptedWb() const { return acceptedWb_; }
    double reusedTotalPct() const;
    double reusedAcceptedPct() const;

  private:
    std::uint64_t totalWb_ = 0;
    std::uint64_t acceptedWb_ = 0;
    std::uint64_t reusedTotal_ = 0;
    std::uint64_t reusedAccepted_ = 0;
    FlatSet pendingTotal_;
    FlatSet pendingAccepted_;
};

class CmpSystem : public stats::Group
{
  public:
    /**
     * Build the machine. @p traces must contain exactly
     * cfg.numThreads() per-thread sources.
     */
    CmpSystem(const SystemConfig &cfg, TraceBundle traces);
    ~CmpSystem() override;

    /**
     * Replay every trace to completion.
     * @return the finish tick (max over threads)
     * @throws SimException (kind Budget) if the maxTicks safety limit
     *         is hit before the traces drain
     */
    Tick run();

    /**
     * Functionally pre-warm the L2s and L3 (no timing, no events):
     * replays @p traces through a simplified install/evict model so
     * measured runs start from steady-state cache contents. The
     * adaptive tables start cold, as in the paper.
     */
    void functionalWarmup(TraceBundle traces);

    bool finished() const;

    /**
     * The globally ordered event queue. In serial mode (runThreads ==
     * 0) it is the only queue; in parallel mode it carries the
     * globally ordered events (combines, sampler, watchdog) and its
     * clock tracks global simulation time, so time sources and
     * observability stay bound to it in both modes.
     */
    EventQueue &eventq() { return eq_; }
    const SystemConfig &config() const { return cfg_; }
    /** The validated machine shape everything was assembled from. */
    const CmpTopology &topology() const { return topo_; }

    /**
     * Live events across every domain queue. Equals
     * eventq().numPending() in serial mode; use this instead of the
     * raw queue wherever "is the simulation idle?" is the question.
     */
    std::size_t totalPending() const;
    /** Events executed across every domain queue. */
    std::uint64_t totalExecuted() const;

    /** The parallel scheduler; null in serial mode. */
    DomainScheduler *domainScheduler();

    Ring &ring() { return *ring_; }
    L3Cache &l3() { return *l3_; }
    MemCtrl &mem() { return *mem_; }
    L2Cache &l2(unsigned i) { return *l2s_.at(i); }
    unsigned numL2s() const { return topo_.numL2s(); }
    TraceCpu &cpu(unsigned tid) { return *cpus_.at(tid); }
    unsigned numCpus() const { return topo_.numThreads(); }
    RetryMonitor &retryMonitor() { return *retryMonitor_; }
    const WbReuseTracker *reuseTracker() const
    {
        return reuseTracker_.get();
    }
    /** Non-null only when cfg.fault.plan is non-empty. */
    FaultInjector *faultInjector() { return faults_.get(); }
    /** Non-null only when cfg.check.oracle is set. */
    VersionOracle *conformanceOracle() { return oracle_.get(); }

    /**
     * Did functional warmup seed this line into several L2s at once?
     * Warmup installs per-L2 without invalidating peers, so such
     * lines start the timed run in states (duplicate M/E copies) a
     * running machine could never produce -- a known approximation.
     * The structural invariant checker skips them, exactly as the
     * conformance oracle taints them. Empty when warmup is off.
     */
    bool
    isWarmupApproximate(Addr line) const
    {
        return warmupApprox_.count(line) != 0;
    }

    /**
     * The stat paths (relative to this group) the periodic sampler
     * watches by default: the instantaneous occupancy gauges plus the
     * counters the paper's adaptive mechanisms react to. See
     * docs/observability.md for the full probe inventory.
     */
    std::vector<std::string> defaultProbePaths() const;

    // Aggregates used by the experiment harness
    std::uint64_t totalL2WbIssued() const;
    std::uint64_t totalL2Accesses() const;
    std::uint64_t totalL2Hits() const;
    double l2HitRate() const;
    std::uint64_t totalSnarfedReceived() const;
    std::uint64_t totalSnarfLocalUse() const;
    std::uint64_t totalSnarfInterventionUse() const;
    std::uint64_t totalWbSnarfedOut() const;
    double wbhtCorrectFraction() const;
    /** Demand lines fetched from off chip (L3 + memory supplies). */
    std::uint64_t offChipAccesses() const;

  private:
    struct ParallelGlue;

    /** Violation-report appendix for the conformance oracle. */
    std::string conformanceSnapshot();

    SystemConfig cfg_;
    /** Built (and validated) from cfg_.topology before any component:
     * every id, stop and cluster computation below goes through it. */
    CmpTopology topo_;
    /** Global queue (the only one in serial mode). Queues are
     * declared before the components bound to them: events deregister
     * from their queue on destruction. */
    EventQueue eq_;
    /** Parallel mode only: one queue per core domain (L2 slice). */
    std::vector<std::unique_ptr<EventQueue>> coreQs_;
    /** Parallel mode only: ring drains and L3/memory housekeeping. */
    std::unique_ptr<EventQueue> uncoreQ_;

    std::unique_ptr<RetryMonitor> retryMonitor_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<Ring> ring_;
    std::unique_ptr<L3Cache> l3_;
    std::unique_ptr<MemCtrl> mem_;
    std::vector<std::unique_ptr<L2Cache>> l2s_;
    std::vector<std::unique_ptr<TraceCpu>> cpus_;
    std::unique_ptr<WbReuseTracker> reuseTracker_;
    /** Built only when cfg.check.oracle is set. */
    std::unique_ptr<VersionOracle> oracle_;
    /** Lines functional warmup seeded into >= 2 L2s (see
     * isWarmupApproximate). */
    std::unordered_set<Addr> warmupApprox_;
    /** Parallel-mode glue (scheduler, router, issue sinks); declared
     * last so it tears down before the queues it hooks. */
    std::unique_ptr<ParallelGlue> par_;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_CMP_SYSTEM_HH
