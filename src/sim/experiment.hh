/**
 * @file
 * Experiment harness: build a system, replay a workload, and report
 * the metrics the paper's tables and figures are made of.
 */

#ifndef CMPCACHE_SIM_EXPERIMENT_HH
#define CMPCACHE_SIM_EXPERIMENT_HH

#include <functional>
#include <iosfwd>
#include <string>

#include "sim/cmp_system.hh"
#include "trace/workload.hh"

namespace cmpcache
{

/** Everything the paper reports about one run. */
struct ExperimentResult
{
    std::string workload;
    std::string policy;
    unsigned maxOutstanding = 0;

    Tick execTime = 0;

    // Table 4 columns
    double wbhtCorrectPct = 0.0;    ///< "WBHT Correct"
    double l3LoadHitRatePct = 0.0;  ///< "L3 Load Hit Rate"
    std::uint64_t l2WbRequests = 0; ///< "L2 Write Back Requests"
    std::uint64_t l3Retries = 0;    ///< "L3-issued Retries"

    // Table 5 columns
    std::uint64_t offChipAccesses = 0;
    double wbSnarfedPct = 0.0;        ///< write backs snarfed
    double snarfedUsedLocallyPct = 0.0;
    double snarfedForInterventionPct = 0.0;
    double l2HitRatePct = 0.0;

    // Table 1
    double cleanWbRedundantPct = 0.0;

    // Table 2 (requires cfg.enableWbReuseTracker)
    double wbReusedTotalPct = 0.0;
    double wbReusedAcceptedPct = 0.0;

    // Additional diagnostics
    std::uint64_t wbAborted = 0;
    std::uint64_t memReads = 0;
    std::uint64_t interventions = 0;
    std::uint64_t busRetries = 0;
};

/** Field-for-field exact equality (determinism checks). */
bool operator==(const ExperimentResult &a, const ExperimentResult &b);
bool operator!=(const ExperimentResult &a, const ExperimentResult &b);

/** Percentage execution-time improvement of @p other over @p base. */
double improvementPct(const ExperimentResult &base,
                      const ExperimentResult &other);

/**
 * Run one workload on one configuration.
 * @param dump_stats optional stream receiving the full stats dump
 * @param inspect    optional hook invoked on the finished system
 *                   before it is torn down (invariant checks, extra
 *                   metric extraction)
 */
ExperimentResult
runExperiment(const SystemConfig &cfg, const WorkloadParams &workload,
              std::ostream *dump_stats = nullptr,
              const std::function<void(CmpSystem &)> &inspect = {});

/** Collect an ExperimentResult from an already-run system. */
ExperimentResult collectResult(CmpSystem &sys, Tick exec_time,
                               const std::string &workload_name);

/**
 * Records-per-thread default for bench binaries, overridable via the
 * CMPCACHE_REFS environment variable (total references scale
 * linearly with it).
 */
std::uint64_t benchRecordsPerThread(std::uint64_t def = 60000);

} // namespace cmpcache

#endif // CMPCACHE_SIM_EXPERIMENT_HH
