#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace cmpcache
{

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(this);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    cmp_assert(ev != nullptr, "scheduling null event");
    cmp_assert(!ev->scheduled_, "event '", ev->name(),
               "' is already scheduled");
    cmp_assert(when >= curTick_, "event '", ev->name(),
               "' scheduled in the past (", when, " < ", curTick_, ")");

    ev->scheduled_ = true;
    ev->when_ = when;
    ev->sequence_ = nextSequence_++;
    ev->queue_ = this;
    heap_.push(Entry{when, ev->priority_, ev->sequence_, ev});
    ++liveEvents_;
}

void
EventQueue::deschedule(Event *ev)
{
    cmp_assert(ev != nullptr && ev->scheduled_,
               "descheduling an unscheduled event");
    cmp_assert(ev->queue_ == this, "event belongs to another queue");
    // Lazy removal: remember the dead sequence; the matching heap
    // entry is discarded when it reaches the top, without touching
    // the (possibly destroyed by then) event object.
    cancelled_.insert(ev->sequence_);
    ev->scheduled_ = false;
    ev->queue_ = nullptr;
    --liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::skimCancelled()
{
    while (!heap_.empty()) {
        const auto it = cancelled_.find(heap_.top().sequence);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

void
EventQueue::step()
{
    skimCancelled();
    cmp_assert(!heap_.empty(), "step() on an empty event queue");

    Entry top = heap_.top();
    heap_.pop();
    Event *ev = top.event;
    cmp_assert(top.when >= curTick_, "time went backwards");
    curTick_ = top.when;
    ev->scheduled_ = false;
    ev->queue_ = nullptr;
    --liveEvents_;
    ++numExecuted_;
    ev->process();
}

Tick
EventQueue::run(Tick max_tick)
{
    while (!empty()) {
        skimCancelled();
        if (heap_.empty())
            break;
        if (heap_.top().when > max_tick) {
            curTick_ = max_tick;
            return curTick_;
        }
        step();
    }
    return curTick_;
}

} // namespace cmpcache
