#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace cmpcache
{

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(this);
    if (liveEntries_ != 0 && queue_)
        queue_->purge(this);
}

EventQueue::EventQueue()
{
    // Give every bucket (and the far heap) its working capacity up
    // front. Buckets are vectors that never shrink, so without this
    // each of the 1024 buckets reallocates on its own schedule as it
    // discovers its high-water mark, sprinkling allocations deep into
    // otherwise steady-state runs.
    for (auto &b : wheel_)
        b.entries.reserve(16);
    far_.reserve(64);
    scratch_.reserve(64);
}

void
PooledEvent::process()
{
    EventQueue *home = home_;
    InplaceFunction<void(), FnCapacity> fn = std::move(fn_);
    // Return to the free list first so the callback can recycle this
    // object for the events it schedules.
    home->releasePooled(this);
    fn();
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    cmp_assert(ev != nullptr, "scheduling null event");
    cmp_assert(!ev->scheduled_, "event '", ev->name(),
               "' is already scheduled");
    cmp_assert(when >= curTick_, "event '", ev->name(),
               "' scheduled in the past (", when, " < ", curTick_, ")");

    const std::uint64_t seq =
        hook_ ? hook_->nextSequence(*this, ev, when) : nextSequence_++;
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->sequence_ = seq;
    ev->queue_ = this;
    ++ev->liveEntries_;
    ++liveEvents_;

    const std::uint64_t key = makeKey(ev->priority_, seq);
    if (when < horizonOf(curTick_))
        pushWheel(when, key, ev);
    else
        pushFar(when, key, ev);
}

void
EventQueue::deschedule(Event *ev)
{
    cmp_assert(ev != nullptr && ev->scheduled_,
               "descheduling an unscheduled event");
    cmp_assert(ev->queue_ == this, "event belongs to another queue");
    // Lazy removal: clearing scheduled_ invalidates the entry's
    // generation (its snapshotted sequence), so it is discarded when
    // it surfaces -- one integer compare, no hashing. The event's
    // liveEntries_ refcount keeps destruction safe meanwhile.
    ev->scheduled_ = false;
    --liveEvents_;
    if (hook_)
        hook_->onMutation(*this);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::pushWheel(Tick when, std::uint64_t key, Event *ev)
{
    const auto b = static_cast<unsigned>(when & WheelMask);
    Bucket &bucket = wheel_[b];
    if (bucket.entries.empty())
        setBit(b);
    else if (key < bucket.entries.back().key)
        bucket.dirty = true;
    bucket.entries.push_back(WheelEntry{key, ev});
    ++wheelCount_;
}

void
EventQueue::pushFar(Tick when, std::uint64_t key, Event *ev)
{
    far_.push_back(FarEntry{when, key, ev});
    std::push_heap(far_.begin(), far_.end(),
                   [](const FarEntry &a, const FarEntry &b) {
                       return a.when != b.when ? a.when > b.when
                                               : a.key > b.key;
                   });
}

EventQueue::FarEntry
EventQueue::popFarMin()
{
    std::pop_heap(far_.begin(), far_.end(),
                  [](const FarEntry &a, const FarEntry &b) {
                      return a.when != b.when ? a.when > b.when
                                              : a.key > b.key;
                  });
    const FarEntry e = far_.back();
    far_.pop_back();
    return e;
}

void
EventQueue::sortBucket(Bucket &b)
{
    if (!b.dirty)
        return;
    if (b.full) {
        // An in-place rekey broke the ascending-sequence append
        // pattern the counting sort relies on (rare: a coordinator
        // schedule landed behind a provisional entry that was later
        // renumbered). Keys are unique, so an unstable full sort
        // restores exact (priority, sequence) order.
        std::sort(b.entries.begin()
                      + static_cast<std::ptrdiff_t>(b.head),
                  b.entries.end(),
                  [](const WheelEntry &a, const WheelEntry &c) {
                      return a.key < c.key;
                  });
        b.dirty = false;
        b.full = false;
        return;
    }
    // Appends always carry ascending sequence numbers, so a dirty
    // pending range is k interleaved ascending runs distinguished by
    // the key's priority byte. A stable counting sort on that byte
    // therefore restores full (priority, sequence) order in O(n) --
    // considerably cheaper than a comparison sort for the same-tick
    // bursts that set the dirty flag in the first place.
    const auto first = b.entries.begin()
                       + static_cast<std::ptrdiff_t>(b.head);
    const auto n = static_cast<std::size_t>(b.entries.end() - first);
    std::array<std::uint32_t, 257> counts{};
    for (std::size_t i = 0; i < n; ++i)
        ++counts[(first[i].key >> 56) + 1];
    for (unsigned p = 1; p < 257; ++p)
        counts[p] += counts[p - 1];
    scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch_[counts[first[i].key >> 56]++] = first[i];
    std::copy(scratch_.begin(), scratch_.end(), first);
    b.dirty = false;
}

int
EventQueue::nextOccupied(Tick start_tick) const
{
    const auto start = static_cast<unsigned>(start_tick & WheelMask);
    unsigned w = start >> 6;
    std::uint64_t word = bits_[w] & (~std::uint64_t{0} << (start & 63));
    for (unsigned i = 0;; ++i) {
        if (word) {
            const unsigned b =
                (w << 6) + static_cast<unsigned>(std::countr_zero(word));
            return static_cast<int>((b - start) & WheelMask);
        }
        if (i == BitmapWords)
            return -1;
        w = (w + 1) & (BitmapWords - 1);
        word = bits_[w];
    }
}

void
EventQueue::advanceTo(Tick t)
{
    cmp_assert(t >= curTick_, "time went backwards");
    curTick_ = t;
    const Tick horizon = horizonOf(t);
    // Feed far-future events whose tick is now inside the wheel
    // window into the wheel, preserving the (when, priority,
    // sequence) order via the per-bucket sorted insert.
    while (!far_.empty() && far_.front().when < horizon) {
        const FarEntry e = popFarMin();
        pushWheel(e.when, e.key, e.ev);
    }
}

Event *
EventQueue::popNext(Tick max_tick)
{
    for (;;) {
        // With no live events the queue is empty regardless of any
        // stale entries still parked in the wheel or heap; returning
        // before the bound check below keeps run(max_tick) from
        // advancing time on an empty queue (stale entries are lazily
        // reclaimed whenever their buckets are next visited).
        if (liveEvents_ == 0)
            return nullptr;
        if (wheelCount_ != 0) {
            const int dist = nextOccupied(curTick_);
            cmp_assert(dist >= 0, "wheel occupancy out of sync");
            const Tick t = curTick_ + static_cast<Tick>(dist);
            // Every pending event, wheel or far, lies at or beyond
            // the nearest occupied bucket, so the bound check needs
            // no skimming of that bucket's stale entries first.
            if (t > max_tick) {
                advanceTo(max_tick);
                return nullptr;
            }
            const auto bi = static_cast<unsigned>(t & WheelMask);
            Bucket &b = wheel_[bi];
            sortBucket(b);
            while (b.head != b.entries.size()) {
                const WheelEntry e = b.entries[b.head];
                ++b.head;
                if (b.head == b.entries.size()) {
                    b.entries.clear();
                    b.head = 0;
                    clearBit(bi);
                }
                --wheelCount_;
                if (!isLive(e.ev, e.key)) {
                    if (e.ev)
                        --e.ev->liveEntries_;
                    continue;
                }
                if (t != curTick_)
                    advanceTo(t);
                e.ev->scheduled_ = false;
                --e.ev->liveEntries_;
                --liveEvents_;
                return e.ev;
            }
            continue; // bucket held only stale entries; rescan
        }
        if (far_.empty())
            return nullptr;
        const FarEntry &top = far_.front();
        if (!isLive(top.ev, top.key)) {
            const FarEntry e = popFarMin();
            if (e.ev)
                --e.ev->liveEntries_;
            continue;
        }
        if (top.when > max_tick) {
            advanceTo(max_tick);
            return nullptr;
        }
        const FarEntry e = popFarMin();
        advanceTo(e.when);
        e.ev->scheduled_ = false;
        --e.ev->liveEntries_;
        --liveEvents_;
        return e.ev;
    }
}

bool
EventQueue::peekNext(PeekResult &out)
{
    for (;;) {
        if (liveEvents_ == 0)
            return false;
        if (wheelCount_ != 0) {
            const int dist = nextOccupied(curTick_);
            cmp_assert(dist >= 0, "wheel occupancy out of sync");
            const Tick t = curTick_ + static_cast<Tick>(dist);
            const auto bi = static_cast<unsigned>(t & WheelMask);
            Bucket &b = wheel_[bi];
            sortBucket(b);
            while (b.head != b.entries.size()) {
                const WheelEntry e = b.entries[b.head];
                if (isLive(e.ev, e.key)) {
                    out = PeekResult{t, e.key, e.ev};
                    return true;
                }
                // Reclaim the stale entry and keep scanning.
                ++b.head;
                if (b.head == b.entries.size()) {
                    b.entries.clear();
                    b.head = 0;
                    clearBit(bi);
                }
                --wheelCount_;
                if (e.ev)
                    --e.ev->liveEntries_;
            }
            continue; // bucket held only stale entries; rescan
        }
        if (far_.empty())
            return false;
        const FarEntry &top = far_.front();
        if (isLive(top.ev, top.key)) {
            out = PeekResult{top.when, top.key, top.ev};
            return true;
        }
        const FarEntry e = popFarMin();
        if (e.ev)
            --e.ev->liveEntries_;
    }
}

Event *
EventQueue::popNextBefore(Tick max_tick, std::uint64_t max_key)
{
    for (;;) {
        if (liveEvents_ == 0)
            return nullptr;
        if (wheelCount_ != 0) {
            const int dist = nextOccupied(curTick_);
            cmp_assert(dist >= 0, "wheel occupancy out of sync");
            const Tick t = curTick_ + static_cast<Tick>(dist);
            // Unlike popNext(), a bound miss leaves time untouched:
            // the domain scheduler advances time explicitly (syncTo)
            // at the points the serial schedule dictates.
            if (t > max_tick)
                return nullptr;
            const auto bi = static_cast<unsigned>(t & WheelMask);
            Bucket &b = wheel_[bi];
            sortBucket(b);
            while (b.head != b.entries.size()) {
                const WheelEntry e = b.entries[b.head];
                const bool live = isLive(e.ev, e.key);
                if (live && t == max_tick && e.key >= max_key)
                    return nullptr; // live head at/past the bound
                ++b.head;
                if (b.head == b.entries.size()) {
                    b.entries.clear();
                    b.head = 0;
                    clearBit(bi);
                }
                --wheelCount_;
                if (!live) {
                    if (e.ev)
                        --e.ev->liveEntries_;
                    continue;
                }
                if (t != curTick_)
                    advanceTo(t);
                e.ev->scheduled_ = false;
                --e.ev->liveEntries_;
                --liveEvents_;
                ++numExecuted_;
                return e.ev;
            }
            continue; // bucket held only stale entries; rescan
        }
        if (far_.empty())
            return nullptr;
        const FarEntry &top = far_.front();
        if (!isLive(top.ev, top.key)) {
            const FarEntry e = popFarMin();
            if (e.ev)
                --e.ev->liveEntries_;
            continue;
        }
        if (top.when > max_tick
            || (top.when == max_tick && top.key >= max_key))
            return nullptr;
        const FarEntry e = popFarMin();
        advanceTo(e.when);
        e.ev->scheduled_ = false;
        --e.ev->liveEntries_;
        --liveEvents_;
        ++numExecuted_;
        return e.ev;
    }
}

void
EventQueue::rekey(Event *ev, std::uint64_t seq)
{
    cmp_assert(ev != nullptr && ev->scheduled_ && ev->queue_ == this,
               "rekeying an event not scheduled on this queue");
    const std::uint64_t old_key = makeKey(ev->priority_, ev->sequence_);
    const std::uint64_t key = makeKey(ev->priority_, seq);
    ev->sequence_ = seq;
    if (ev->when_ < horizonOf(curTick_)) {
        // The live entry sits in its tick's bucket; rewrite its key in
        // place instead of staling it and pushing a replacement --
        // renumbering rekeys most round-born events, so the push-new
        // variant would double the wheel traffic. Order stays intact
        // for the lazy counting sort (renumbered sequences ascend in
        // append order within a queue) except when the bucket already
        // holds a priority inversion; that rare case downgrades to a
        // full key sort on drain.
        Bucket &b = wheel_[ev->when_ & WheelMask];
        for (std::size_t i = b.head; i < b.entries.size(); ++i) {
            WheelEntry &e = b.entries[i];
            if (e.ev == ev && e.key == old_key) {
                e.key = key;
                if (b.dirty)
                    b.full = true;
                return;
            }
        }
        cmp_panic("rekey: live wheel entry not found");
    }
    // Far heap: sibling order is baked into the heap, so the old
    // entry turns stale and a fresh one is pushed (exactly like a
    // deschedule+reschedule). Net liveEvents_ is unchanged.
    ++ev->liveEntries_;
    pushFar(ev->when_, key, ev);
}

void
EventQueue::step()
{
    Event *ev = popNext(MaxTick);
    cmp_assert(ev != nullptr, "step() on an empty event queue");
    ++numExecuted_;
    ev->process();
}

Tick
EventQueue::run(Tick max_tick)
{
    // Exception-safe: a budget/watchdog throw mid-run must not leave
    // a stale bound behind on a queue that outlives the failed run.
    struct BudgetScope
    {
        EventQueue &q;
        Tick prev;
        ~BudgetScope() { q.runBudget_ = prev; }
    } budget_scope{*this, runBudget_};
    runBudget_ = max_tick;
    // popNext() advances to max_tick itself when the next event lies
    // beyond it, and leaves time untouched when the queue drains --
    // matching the long-standing run() semantics with a single scan
    // per event instead of a peek-then-pop pair.
    while (Event *ev = popNext(max_tick)) {
        ++numExecuted_;
        ev->process();
        // Same-tick fast path: drain the rest of the current tick's
        // bucket without re-entering popNext's wheel scan. A callback
        // can only schedule at curTick_ (into this very bucket, which
        // is re-sorted below if that lands out of order) or later, so
        // bucket order remains global order -- unless the callback
        // advanced time itself (the CPU hit fast path batches through
        // syncTo), which can migrate a far event one wheel revolution
        // ahead into this very bucket; the tick check below falls back
        // to the full scan the moment the current tick is stale.
        const Tick bucket_tick = curTick_;
        const auto bi = static_cast<unsigned>(curTick_ & WheelMask);
        Bucket &b = wheel_[bi];
        while (curTick_ == bucket_tick && b.head != b.entries.size()) {
            sortBucket(b);
            const WheelEntry e = b.entries[b.head];
            ++b.head;
            if (b.head == b.entries.size()) {
                b.entries.clear();
                b.head = 0;
                clearBit(bi);
            }
            --wheelCount_;
            if (!isLive(e.ev, e.key)) {
                if (e.ev)
                    --e.ev->liveEntries_;
                continue;
            }
            e.ev->scheduled_ = false;
            --e.ev->liveEntries_;
            --liveEvents_;
            ++numExecuted_;
            e.ev->process();
        }
    }
    return curTick_;
}

void
EventQueue::purge(Event *ev)
{
    for (auto &b : wheel_) {
        for (std::size_t i = b.head; i < b.entries.size(); ++i) {
            if (b.entries[i].ev == ev)
                b.entries[i].ev = nullptr;
        }
    }
    for (auto &e : far_) {
        if (e.ev == ev)
            e.ev = nullptr;
    }
    ev->liveEntries_ = 0;
    if (hook_)
        hook_->onMutation(*this);
}

PooledEvent *
EventQueue::acquirePooled()
{
    if (!freeHead_) {
        poolChunks_.push_back(std::make_unique<PooledEvent[]>(PoolChunk));
        PooledEvent *chunk = poolChunks_.back().get();
        for (std::size_t i = 0; i < PoolChunk; ++i) {
            chunk[i].nextFree_ = freeHead_;
            freeHead_ = &chunk[i];
        }
        poolAllocated_ += PoolChunk;
    }
    PooledEvent *ev = freeHead_;
    freeHead_ = ev->nextFree_;
    ev->nextFree_ = nullptr;
    return ev;
}

void
EventQueue::releasePooled(PooledEvent *ev)
{
    ev->nextFree_ = freeHead_;
    freeHead_ = ev;
}

EventQueue::~EventQueue()
{
    // Sever every surviving entry's link to its event so that events
    // outliving the queue (component members, external wrappers) do
    // not touch freed queue state from their destructors.
    const auto release = [](Event *ev) {
        if (!ev)
            return;
        ev->scheduled_ = false;
        ev->liveEntries_ = 0;
        ev->queue_ = nullptr;
    };
    for (auto &b : wheel_) {
        for (std::size_t i = b.head; i < b.entries.size(); ++i)
            release(b.entries[i].ev);
    }
    for (auto &e : far_)
        release(e.ev);
}

} // namespace cmpcache
