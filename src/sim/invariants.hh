/**
 * @file
 * Global coherence-state invariant checking over a finished (or
 * quiesced) CmpSystem. The rules are the protocol's correctness
 * conditions across every L2 copy of a line:
 *
 *  - at most one dirty owner (M or T);
 *  - a Modified copy is the only copy;
 *  - an Exclusive copy is the only copy;
 *  - at most one designated clean intervention source (SL);
 *  - (opt-in, advisory) no valid L3 copy alongside an owned (M/E/T)
 *    L2 copy: stores invalidate the L3 at combine, so an owned line
 *    normally must not still look valid off chip;
 *  - (quiesced systems only) no dangling snarf reservations: with the
 *    machine drained every pending-snarf entry and in-flight snarf
 *    counter must have resolved to zero.
 *
 * Lines functional warmup seeded into several L2s at once start the
 * run in states no running machine produces; the checker skips them
 * (reported via linesSkipped), mirroring the conformance oracle's
 * warmup taint.
 *
 * Used by the whole-system property tests, the chaos harness's
 * periodic online sweep, and, optionally, the sweep runner after
 * every grid cell.
 */

#ifndef CMPCACHE_SIM_INVARIANTS_HH
#define CMPCACHE_SIM_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cmpcache
{

class CmpSystem;

struct CoherenceCheck
{
    std::uint64_t linesChecked = 0;
    /** Lines exempted because functional warmup seeded them into
     * several L2s at once (CmpSystem::isWarmupApproximate). */
    std::uint64_t linesSkipped = 0;
    std::uint64_t violations = 0;
    /** One diagnostic per violation, capped (see checkCoherence). */
    std::vector<std::string> messages;

    bool clean() const { return violations == 0; }

    /** All diagnostics joined with newlines (test failure output). */
    std::string report() const;
};

struct CoherenceCheckOptions
{
    /** Cap on retained diagnostics (counting is exact). */
    std::size_t maxMessages = 16;
    /**
     * The machine is drained: no in-flight transactions remain, so
     * transient bookkeeping (snarf reservations) must have resolved.
     * Leave false for online mid-run sweeps.
     */
    bool quiesced = false;
    /**
     * Check the L3-staleness rule. Advisory and off by default: two
     * architected situations legitimately leave a valid L3 copy
     * behind an owned L2 line -- functional warmup seeds the L3
     * without cross-level invalidation, and an L2 that demand-misses
     * a line parked in its own write-back queue refetches it as
     * Exclusive while the queued dirty victim later installs in the
     * L3. The version oracle tracks that lineage exactly; this
     * structural rule is for forged-state tests and hand-built
     * configurations where neither situation can occur.
     */
    bool checkL3 = false;
};

/**
 * Inspect every valid L2 tag in @p sys and verify the invariants
 * above for each line address.
 */
CoherenceCheck checkCoherence(CmpSystem &sys,
                              const CoherenceCheckOptions &opts);

/**
 * Compatibility overload: default options (L2-only rules, not
 * quiesced) with @p max_messages as the diagnostic cap.
 */
CoherenceCheck checkCoherence(CmpSystem &sys,
                              std::size_t max_messages = 16);

} // namespace cmpcache

#endif // CMPCACHE_SIM_INVARIANTS_HH
