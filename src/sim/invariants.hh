/**
 * @file
 * Global coherence-state invariant checking over a finished (or
 * quiesced) CmpSystem. The rules are the protocol's correctness
 * conditions across every L2 copy of a line:
 *
 *  - at most one dirty owner (M or T);
 *  - a Modified copy is the only copy;
 *  - an Exclusive copy is the only copy;
 *  - at most one designated clean intervention source (SL).
 *
 * Used by the whole-system property tests and, optionally, by the
 * sweep runner after every grid cell.
 */

#ifndef CMPCACHE_SIM_INVARIANTS_HH
#define CMPCACHE_SIM_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cmpcache
{

class CmpSystem;

struct CoherenceCheck
{
    std::uint64_t linesChecked = 0;
    std::uint64_t violations = 0;
    /** One diagnostic per violation, capped (see checkCoherence). */
    std::vector<std::string> messages;

    bool clean() const { return violations == 0; }

    /** All diagnostics joined with newlines (test failure output). */
    std::string report() const;
};

/**
 * Inspect every valid L2 tag in @p sys and verify the invariants
 * above for each line address.
 * @param max_messages cap on retained diagnostics (counting is exact)
 */
CoherenceCheck checkCoherence(CmpSystem &sys,
                              std::size_t max_messages = 16);

} // namespace cmpcache

#endif // CMPCACHE_SIM_INVARIANTS_HH
