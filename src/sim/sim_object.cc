#include "sim/sim_object.hh"

namespace cmpcache
{

SimObject::SimObject(stats::Group *parent, std::string name,
                     EventQueue &eq)
    : stats::Group(parent, std::move(name)), eq_(eq)
{
}

void
SimObject::schedule(Event &ev, Tick delta)
{
    eq_.schedule(&ev, eq_.curTick() + delta);
}

} // namespace cmpcache
