/**
 * @file
 * Whole-system configuration: paper Table 3 by default.
 */

#ifndef CMPCACHE_SIM_SYSTEM_CONFIG_HH
#define CMPCACHE_SIM_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "core/policy.hh"
#include "cpu/trace_cpu.hh"
#include "fault/fault_plan.hh"
#include "l2/l2_cache.hh"
#include "l3/l3_cache.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/obs_config.hh"
#include "ring/ring.hh"
#include "sim/watchdog.hh"
#include "trace/trace_source.hh"

namespace cmpcache
{

struct SystemConfig
{
    /** Four L2 caches, each shared by two 2-way-SMT cores. */
    unsigned numL2s = 4;
    unsigned threadsPerL2 = 4;

    L2Params l2;
    L3Params l3;
    MemParams mem;
    RingParams ring;
    CpuParams cpu;
    PolicyConfig policy;
    ObsConfig obs;
    FaultConfig fault;
    WatchdogConfig watchdog;
    /**
     * Traffic model (arrival.* keys): closed-loop think time (the
     * default, batch-replay behavior) or open-loop generator-stamped
     * arrivals. Open mode re-stamps every source's gaps with sampled
     * interarrival times (see trace/trace_source.hh).
     */
    ArrivalConfig arrival;
    /** Streaming-ingest pipeline knobs (stream.* keys). */
    StreamParams stream;

    /** Track per-line write-back reuse (Table 2); costs memory. */
    bool enableWbReuseTracker = false;

    /**
     * Functionally pre-warm the caches with one pass of the workload
     * before the timed run (steady-state measurement, as with the
     * paper's long hardware-captured traces).
     */
    bool warmupPass = true;

    /** Hard stop for runaway simulations. */
    Tick maxTicks = 40ull * 1000 * 1000 * 1000;

    /**
     * Event-kernel worker threads for ONE simulation (config key
     * run.threads). 0 = the serial kernel (the default); N >= 1
     * shards the machine across per-L2 domain queues driven by the
     * conservative-lookahead scheduler with N workers. Results are
     * bit-identical to serial for every value, including 1 (see
     * docs/parallel.md).
     */
    unsigned runThreads = 0;

    unsigned numThreads() const { return numL2s * threadsPerL2; }

    /**
     * Cross-field consistency checks. Each returned string names the
     * offending config key(s) so the message maps straight back to
     * the file or --key=value flag that caused it. Empty means valid.
     */
    std::vector<std::string> validationErrors() const;

    /** Throw SimException (kind Config) if validationErrors() is
     * non-empty. */
    void validate() const;

    /** One-line summary for logs. */
    std::string summary() const;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_SYSTEM_CONFIG_HH
