/**
 * @file
 * Whole-system configuration: paper Table 3 by default.
 */

#ifndef CMPCACHE_SIM_SYSTEM_CONFIG_HH
#define CMPCACHE_SIM_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "core/policy.hh"
#include "cpu/trace_cpu.hh"
#include "fault/fault_plan.hh"
#include "l2/l2_cache.hh"
#include "l3/l3_cache.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/obs_config.hh"
#include "ring/ring.hh"
#include "sim/topology.hh"
#include "sim/watchdog.hh"
#include "trace/trace_source.hh"

namespace cmpcache
{

/**
 * Online conformance checking (check.* keys). Both knobs default off
 * so the default machine stays byte-identical to a build without the
 * checking subsystem; the unit/e2e suites force them on.
 */
struct CheckConfig
{
    /**
     * Shadow write-epoch oracle (check.oracle): every store bumps a
     * per-line version, every data delivery is validated against the
     * newest committed version. A stale supply throws a SimException
     * of kind Conformance at the exact tick it happens.
     */
    bool oracle = false;

    /**
     * Period (cycles) of online whole-machine invariant sweeps
     * (check.invariants_every); 0 keeps the checker end-of-run only.
     */
    Tick invariantsEvery = 0;

    bool enabled() const { return oracle || invariantsEvery > 0; }
};

struct SystemConfig
{
    /**
     * Declarative machine shape (topology.* keys): cores, SMT ways,
     * L2 count, L3 slicing, ring layout. Defaults to the paper's
     * Table 3 machine: eight 2-way-SMT cores, four shared L2s, a
     * 4-slice L3 and the memory controller on a single ring.
     * Legacy keys (num_l2s, threads_per_l2, ring.num_stops,
     * l3.slices) still parse and populate this (see docs/topology.md).
     */
    TopologyParams topology;

    L2Params l2;
    L3Params l3;
    MemParams mem;
    RingParams ring;
    CpuParams cpu;
    PolicyConfig policy;
    ObsConfig obs;
    FaultConfig fault;
    WatchdogConfig watchdog;
    /** Conformance oracle + online invariant sweeps (check.* keys). */
    CheckConfig check;
    /**
     * Traffic model (arrival.* keys): closed-loop think time (the
     * default, batch-replay behavior) or open-loop generator-stamped
     * arrivals. Open mode re-stamps every source's gaps with sampled
     * interarrival times (see trace/trace_source.hh).
     */
    ArrivalConfig arrival;
    /** Streaming-ingest pipeline knobs (stream.* keys). */
    StreamParams stream;

    /** Track per-line write-back reuse (Table 2); costs memory. */
    bool enableWbReuseTracker = false;

    /**
     * Functionally pre-warm the caches with one pass of the workload
     * before the timed run (steady-state measurement, as with the
     * paper's long hardware-captured traces).
     */
    bool warmupPass = true;

    /** Hard stop for runaway simulations. */
    Tick maxTicks = 40ull * 1000 * 1000 * 1000;

    /**
     * Sentinel for run.threads=auto: pick the worker count from the
     * host and the machine shape at build time (resolvedRunThreads).
     */
    static constexpr unsigned RunThreadsAuto = ~0u;

    /**
     * Event-kernel worker threads for ONE simulation (config key
     * run.threads). 0 = the serial kernel (the default); N >= 1
     * shards the machine across per-L2 domain queues driven by the
     * conservative-lookahead scheduler with N workers; RunThreadsAuto
     * ("auto") derives N from hardware_concurrency() and the topology
     * core-domain count. Results are bit-identical to serial for
     * every value, including 1 (see docs/parallel.md).
     */
    unsigned runThreads = 0;

    /**
     * Short-circuit consecutive same-thread references that hit
     * private L2 with no pending coherence state in a batched loop
     * inside TraceCpu, entering the event kernel only on miss,
     * blocked access, or a position cross-domain work could observe
     * (config key run.fastpath). Output is bit-identical either way;
     * the switch exists for differential testing and triage.
     */
    bool runFastpath = true;

    /**
     * run.threads with "auto" resolved against this host and shape:
     * min(hardware_concurrency, numL2s), and the serial kernel when
     * the host has a single hardware thread (fanning out there only
     * adds overhead). Non-auto values pass through unchanged.
     */
    unsigned resolvedRunThreads() const;

    /** The machine shape with legacy aliases and defaults folded in. */
    TopologyParams shape() const { return topology.resolved(); }

    unsigned numL2s() const { return shape().l2s; }
    unsigned threadsPerL2() const { return shape().threadsPerL2(); }
    unsigned numThreads() const { return shape().threads(); }

    /**
     * L2 parameters with the topology's per-level sizing override
     * (topology.l2_kb_per_l2) applied.
     */
    L2Params effectiveL2() const;

    /**
     * L3 parameters with the topology's slice count and per-slice
     * sizing override (topology.l3_mb_per_slice) applied.
     */
    L3Params effectiveL3() const;

    /**
     * Cross-field consistency checks. Each returned string names the
     * offending config key(s) so the message maps straight back to
     * the file or --key=value flag that caused it. Empty means valid.
     */
    std::vector<std::string> validationErrors() const;

    /** Throw SimException (kind Config) if validationErrors() is
     * non-empty. */
    void validate() const;

    /** One-line summary for logs. */
    std::string summary() const;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_SYSTEM_CONFIG_HH
