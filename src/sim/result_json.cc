#include "sim/result_json.hh"

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>

namespace cmpcache
{

namespace
{

/**
 * The serialized fields, in emission order. Keeping the three kinds
 * in one table guarantees writer and parser agree on the schema.
 */
enum class FieldKind
{
    Str,
    U32,
    U64,
    Dbl
};

struct FieldDef
{
    const char *key;
    FieldKind kind;
    // exactly one of these is meaningful, per kind
    std::string ExperimentResult::*str = nullptr;
    unsigned ExperimentResult::*u32 = nullptr;
    std::uint64_t ExperimentResult::*u64 = nullptr;
    double ExperimentResult::*dbl = nullptr;
};

const std::vector<FieldDef> &
fields()
{
    using R = ExperimentResult;
    static const std::vector<FieldDef> defs = {
        {"workload", FieldKind::Str, &R::workload, nullptr, nullptr,
         nullptr},
        {"policy", FieldKind::Str, &R::policy, nullptr, nullptr,
         nullptr},
        {"maxOutstanding", FieldKind::U32, nullptr, &R::maxOutstanding,
         nullptr, nullptr},
        {"execTime", FieldKind::U64, nullptr, nullptr, &R::execTime,
         nullptr},
        {"wbhtCorrectPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbhtCorrectPct},
        {"l3LoadHitRatePct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::l3LoadHitRatePct},
        {"l2WbRequests", FieldKind::U64, nullptr, nullptr,
         &R::l2WbRequests, nullptr},
        {"l3Retries", FieldKind::U64, nullptr, nullptr, &R::l3Retries,
         nullptr},
        {"offChipAccesses", FieldKind::U64, nullptr, nullptr,
         &R::offChipAccesses, nullptr},
        {"wbSnarfedPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbSnarfedPct},
        {"snarfedUsedLocallyPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::snarfedUsedLocallyPct},
        {"snarfedForInterventionPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::snarfedForInterventionPct},
        {"l2HitRatePct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::l2HitRatePct},
        {"cleanWbRedundantPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::cleanWbRedundantPct},
        {"wbReusedTotalPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbReusedTotalPct},
        {"wbReusedAcceptedPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::wbReusedAcceptedPct},
        {"wbAborted", FieldKind::U64, nullptr, nullptr, &R::wbAborted,
         nullptr},
        {"memReads", FieldKind::U64, nullptr, nullptr, &R::memReads,
         nullptr},
        {"interventions", FieldKind::U64, nullptr, nullptr,
         &R::interventions, nullptr},
        {"busRetries", FieldKind::U64, nullptr, nullptr, &R::busRetries,
         nullptr},
    };
    return defs;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/**
 * Check an optional "schemaVersion" field: absent means the implicit
 * v1 of earlier releases; present must be an integer in
 * [1, kResultSchemaVersion].
 */
bool
checkSchemaVersion(const JsonValue &v, std::string *error)
{
    const JsonValue *sv = v.get("schemaVersion");
    if (!sv)
        return true; // v1: the field did not exist yet
    if (sv->kind != JsonValue::Kind::Number
        || sv->number.find_first_of(".eE-") != std::string::npos)
        return fail(error, "schemaVersion must be a positive integer");
    const std::uint64_t ver =
        std::strtoull(sv->number.c_str(), nullptr, 10);
    if (ver < 1 || ver > kResultSchemaVersion)
        return fail(error, "unsupported schemaVersion " + sv->number
                               + " (newest known: "
                               + std::to_string(kResultSchemaVersion)
                               + ")");
    return true;
}

bool
resultFromValue(const JsonValue &v, ExperimentResult &out,
                std::string *error)
{
    if (v.kind != JsonValue::Kind::Object)
        return fail(error, "result is not a JSON object");
    if (!checkSchemaVersion(v, error))
        return false;
    ExperimentResult r;
    for (const auto &f : fields()) {
        const JsonValue *fv = v.get(f.key);
        if (!fv)
            return fail(error,
                        std::string("missing field '") + f.key + "'");
        if (f.kind == FieldKind::Str) {
            if (fv->kind != JsonValue::Kind::String)
                return fail(error, std::string("field '") + f.key
                                       + "' must be a string");
            r.*(f.str) = fv->string;
            continue;
        }
        if (fv->kind != JsonValue::Kind::Number)
            return fail(error, std::string("field '") + f.key
                                   + "' must be a number");
        if (f.kind == FieldKind::Dbl) {
            r.*(f.dbl) = std::strtod(fv->number.c_str(), nullptr);
            continue;
        }
        // Integer fields: reject fractions and negatives outright.
        if (fv->number.find_first_of(".eE-") != std::string::npos)
            return fail(error, std::string("field '") + f.key
                                   + "' must be a non-negative "
                                     "integer, got "
                                   + fv->number);
        const std::uint64_t u =
            std::strtoull(fv->number.c_str(), nullptr, 10);
        if (f.kind == FieldKind::U64)
            r.*(f.u64) = u;
        else
            r.*(f.u32) = static_cast<unsigned>(u);
    }
    out = r;
    return true;
}

/** Is @p v a writer-emitted {"status": "error", ...} cell? */
bool
isErrorCell(const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Object)
        return false;
    const JsonValue *st = v.get("status");
    return st && st->kind == JsonValue::Kind::String
           && st->string == "error";
}

bool
errorCellFromValue(const JsonValue &v, SweepCellOutcome &out,
                   std::string *error)
{
    if (!checkSchemaVersion(v, error))
        return false;
    SweepCellOutcome c;
    c.ok = false;
    const struct
    {
        const char *key;
        std::string *dst;
    } strs[] = {
        {"errorKind", &c.errorKind},
        {"error", &c.error},
        {"workload", &c.result.workload},
        {"policy", &c.result.policy},
    };
    for (const auto &s : strs) {
        const JsonValue *fv = v.get(s.key);
        if (!fv || fv->kind != JsonValue::Kind::String)
            return fail(error, std::string("error cell field '")
                                   + s.key
                                   + "' missing or not a string");
        *s.dst = fv->string;
    }
    const JsonValue *mo = v.get("maxOutstanding");
    if (!mo || mo->kind != JsonValue::Kind::Number
        || mo->number.find_first_of(".eE-") != std::string::npos)
        return fail(error, "error cell field 'maxOutstanding' missing "
                           "or not a non-negative integer");
    c.result.maxOutstanding = static_cast<unsigned>(
        std::strtoull(mo->number.c_str(), nullptr, 10));
    out = std::move(c);
    return true;
}

/** Schema-check a parsed sweep file and return its results array. */
const JsonValue *
sweepResultsArray(const JsonValue &v, std::string *error)
{
    if (v.kind != JsonValue::Kind::Object) {
        fail(error, "results file is not a JSON object");
        return nullptr;
    }
    const JsonValue *schema = v.get("schema");
    if (!schema || schema->kind != JsonValue::Kind::String
        || (schema->string != "cmpcache-sweep-results-v2"
            && schema->string != "cmpcache-sweep-results-v1")) {
        fail(error, "missing or unknown schema tag");
        return nullptr;
    }
    const JsonValue *results = v.get("results");
    if (!results || results->kind != JsonValue::Kind::Array) {
        fail(error, "missing 'results' array");
        return nullptr;
    }
    return results;
}

} // namespace

void
writeResultJson(std::ostream &os, const ExperimentResult &r,
                unsigned indent)
{
    const std::string pad(indent, ' ');
    os << pad << "{\n";
    os << pad << "  \"schemaVersion\": " << kResultSchemaVersion;
    for (const auto &f : fields()) {
        os << ",\n";
        os << pad << "  \"" << f.key << "\": ";
        switch (f.kind) {
          case FieldKind::Str:
            os << '"' << jsonEscape(r.*(f.str)) << '"';
            break;
          case FieldKind::U32:
            os << r.*(f.u32);
            break;
          case FieldKind::U64:
            os << r.*(f.u64);
            break;
          case FieldKind::Dbl:
            os << jsonDouble(r.*(f.dbl));
            break;
        }
    }
    os << "\n" << pad << "}";
}

std::string
resultToJson(const ExperimentResult &r)
{
    std::ostringstream os;
    writeResultJson(os, r);
    return os.str();
}

bool
parseResultJson(const std::string &text, ExperimentResult &out,
                std::string *error)
{
    JsonValue v;
    if (!parseJson(text, v, error))
        return false;
    return resultFromValue(v, out, error);
}

bool
parseSweepResultsJson(const std::string &text,
                      std::vector<ExperimentResult> &out,
                      std::string *error)
{
    JsonValue v;
    if (!parseJson(text, v, error))
        return false;
    const JsonValue *results = sweepResultsArray(v, error);
    if (!results)
        return false;
    std::vector<ExperimentResult> parsed;
    parsed.reserve(results->array.size());
    for (const auto &rv : results->array) {
        if (isErrorCell(rv))
            continue;
        ExperimentResult r;
        if (!resultFromValue(rv, r, error))
            return false;
        parsed.push_back(std::move(r));
    }
    out = std::move(parsed);
    return true;
}

bool
parseSweepResultsJson(const std::string &text,
                      std::vector<SweepCellOutcome> &out,
                      std::string *error)
{
    JsonValue v;
    if (!parseJson(text, v, error))
        return false;
    const JsonValue *results = sweepResultsArray(v, error);
    if (!results)
        return false;
    std::vector<SweepCellOutcome> parsed;
    parsed.reserve(results->array.size());
    for (const auto &rv : results->array) {
        SweepCellOutcome c;
        if (isErrorCell(rv)) {
            if (!errorCellFromValue(rv, c, error))
                return false;
        } else if (!resultFromValue(rv, c.result, error)) {
            return false;
        }
        parsed.push_back(std::move(c));
    }
    out = std::move(parsed);
    return true;
}

} // namespace cmpcache
