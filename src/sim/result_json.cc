#include "sim/result_json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>

namespace cmpcache
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "0"; // JSON has no NaN/Inf; results never produce them
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace
{

/**
 * The serialized fields, in emission order. Keeping the three kinds
 * in one table guarantees writer and parser agree on the schema.
 */
enum class FieldKind
{
    Str,
    U32,
    U64,
    Dbl
};

struct FieldDef
{
    const char *key;
    FieldKind kind;
    // exactly one of these is meaningful, per kind
    std::string ExperimentResult::*str = nullptr;
    unsigned ExperimentResult::*u32 = nullptr;
    std::uint64_t ExperimentResult::*u64 = nullptr;
    double ExperimentResult::*dbl = nullptr;
};

const std::vector<FieldDef> &
fields()
{
    using R = ExperimentResult;
    static const std::vector<FieldDef> defs = {
        {"workload", FieldKind::Str, &R::workload, nullptr, nullptr,
         nullptr},
        {"policy", FieldKind::Str, &R::policy, nullptr, nullptr,
         nullptr},
        {"maxOutstanding", FieldKind::U32, nullptr, &R::maxOutstanding,
         nullptr, nullptr},
        {"execTime", FieldKind::U64, nullptr, nullptr, &R::execTime,
         nullptr},
        {"wbhtCorrectPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbhtCorrectPct},
        {"l3LoadHitRatePct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::l3LoadHitRatePct},
        {"l2WbRequests", FieldKind::U64, nullptr, nullptr,
         &R::l2WbRequests, nullptr},
        {"l3Retries", FieldKind::U64, nullptr, nullptr, &R::l3Retries,
         nullptr},
        {"offChipAccesses", FieldKind::U64, nullptr, nullptr,
         &R::offChipAccesses, nullptr},
        {"wbSnarfedPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbSnarfedPct},
        {"snarfedUsedLocallyPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::snarfedUsedLocallyPct},
        {"snarfedForInterventionPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::snarfedForInterventionPct},
        {"l2HitRatePct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::l2HitRatePct},
        {"cleanWbRedundantPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::cleanWbRedundantPct},
        {"wbReusedTotalPct", FieldKind::Dbl, nullptr, nullptr, nullptr,
         &R::wbReusedTotalPct},
        {"wbReusedAcceptedPct", FieldKind::Dbl, nullptr, nullptr,
         nullptr, &R::wbReusedAcceptedPct},
        {"wbAborted", FieldKind::U64, nullptr, nullptr, &R::wbAborted,
         nullptr},
        {"memReads", FieldKind::U64, nullptr, nullptr, &R::memReads,
         nullptr},
        {"interventions", FieldKind::U64, nullptr, nullptr,
         &R::interventions, nullptr},
        {"busRetries", FieldKind::U64, nullptr, nullptr, &R::busRetries,
         nullptr},
    };
    return defs;
}

/**
 * Minimal strict JSON value. Numbers keep their raw token so integer
 * fields can be converted without a double round trip.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string number; // raw token
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        if (!value(out, err))
            return false;
        skipWs();
        if (pos_ != s_.size()) {
            err = at("trailing characters after JSON value");
            return false;
        }
        return true;
    }

  private:
    std::string
    at(const std::string &msg) const
    {
        return msg + " (offset " + std::to_string(pos_) + ")";
    }

    void
    skipWs()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, std::string &err)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p) {
                err = at(std::string("expected '") + word + "'");
                return false;
            }
        }
        return true;
    }

    bool
    value(JsonValue &out, std::string &err)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            err = at("unexpected end of input");
            return false;
        }
        const char c = s_[pos_];
        if (c == '{')
            return object(out, err);
        if (c == '[')
            return array(out, err);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.string, err);
        }
        if (c == 't' || c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = c == 't';
            return literal(c == 't' ? "true" : "false", err);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null", err);
        }
        return number(out, err);
    }

    bool
    string(std::string &out, std::string &err)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                const char e = s_[pos_++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    err = at(std::string("unsupported escape '\\")
                             + e + "'");
                    return false;
                }
            } else {
                out += c;
            }
        }
        err = at("unterminated string");
        return false;
    }

    bool
    number(JsonValue &out, std::string &err)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '-'
                   || s_[pos_] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(s_[pos_]))
                      != 0;
            ++pos_;
        }
        if (!digits) {
            err = at("expected a JSON value");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = s_.substr(start, pos_ - start);
        // Validate the token parses as a double.
        char *end = nullptr;
        std::strtod(out.number.c_str(), &end);
        if (end != out.number.c_str() + out.number.size()) {
            err = at("malformed number '" + out.number + "'");
            return false;
        }
        return true;
    }

    bool
    object(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                err = at("expected object key");
                return false;
            }
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                err = at("expected ':' after key '" + key + "'");
                return false;
            }
            ++pos_;
            JsonValue v;
            if (!value(v, err))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            err = at("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    array(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v, err))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            err = at("expected ',' or ']' in array");
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

bool
resultFromValue(const JsonValue &v, ExperimentResult &out,
                std::string *error)
{
    if (v.kind != JsonValue::Kind::Object)
        return fail(error, "result is not a JSON object");
    ExperimentResult r;
    for (const auto &f : fields()) {
        const JsonValue *fv = v.get(f.key);
        if (!fv)
            return fail(error,
                        std::string("missing field '") + f.key + "'");
        if (f.kind == FieldKind::Str) {
            if (fv->kind != JsonValue::Kind::String)
                return fail(error, std::string("field '") + f.key
                                       + "' must be a string");
            r.*(f.str) = fv->string;
            continue;
        }
        if (fv->kind != JsonValue::Kind::Number)
            return fail(error, std::string("field '") + f.key
                                   + "' must be a number");
        if (f.kind == FieldKind::Dbl) {
            r.*(f.dbl) = std::strtod(fv->number.c_str(), nullptr);
            continue;
        }
        // Integer fields: reject fractions and negatives outright.
        if (fv->number.find_first_of(".eE-") != std::string::npos)
            return fail(error, std::string("field '") + f.key
                                   + "' must be a non-negative "
                                     "integer, got "
                                   + fv->number);
        const std::uint64_t u =
            std::strtoull(fv->number.c_str(), nullptr, 10);
        if (f.kind == FieldKind::U64)
            r.*(f.u64) = u;
        else
            r.*(f.u32) = static_cast<unsigned>(u);
    }
    out = r;
    return true;
}

} // namespace

void
writeResultJson(std::ostream &os, const ExperimentResult &r,
                unsigned indent)
{
    const std::string pad(indent, ' ');
    os << pad << "{\n";
    bool first = true;
    for (const auto &f : fields()) {
        if (!first)
            os << ",\n";
        first = false;
        os << pad << "  \"" << f.key << "\": ";
        switch (f.kind) {
          case FieldKind::Str:
            os << '"' << jsonEscape(r.*(f.str)) << '"';
            break;
          case FieldKind::U32:
            os << r.*(f.u32);
            break;
          case FieldKind::U64:
            os << r.*(f.u64);
            break;
          case FieldKind::Dbl:
            os << jsonDouble(r.*(f.dbl));
            break;
        }
    }
    os << "\n" << pad << "}";
}

std::string
resultToJson(const ExperimentResult &r)
{
    std::ostringstream os;
    writeResultJson(os, r);
    return os.str();
}

bool
parseResultJson(const std::string &text, ExperimentResult &out,
                std::string *error)
{
    JsonValue v;
    std::string err;
    JsonParser p(text);
    if (!p.parse(v, err))
        return fail(error, err);
    return resultFromValue(v, out, error);
}

bool
parseSweepResultsJson(const std::string &text,
                      std::vector<ExperimentResult> &out,
                      std::string *error)
{
    JsonValue v;
    std::string err;
    JsonParser p(text);
    if (!p.parse(v, err))
        return fail(error, err);
    if (v.kind != JsonValue::Kind::Object)
        return fail(error, "results file is not a JSON object");
    const JsonValue *schema = v.get("schema");
    if (!schema || schema->kind != JsonValue::Kind::String
        || schema->string != "cmpcache-sweep-results-v1")
        return fail(error, "missing or unknown schema tag");
    const JsonValue *results = v.get("results");
    if (!results || results->kind != JsonValue::Kind::Array)
        return fail(error, "missing 'results' array");
    std::vector<ExperimentResult> parsed;
    parsed.reserve(results->array.size());
    for (const auto &rv : results->array) {
        ExperimentResult r;
        if (!resultFromValue(rv, r, error))
            return false;
        parsed.push_back(std::move(r));
    }
    out = std::move(parsed);
    return true;
}

} // namespace cmpcache
