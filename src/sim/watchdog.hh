/**
 * @file
 * Forward-progress watchdog.
 *
 * A protocol bug that livelocks -- a transaction retrying forever --
 * or deadlocks used to hang the simulator with no diagnosis, because
 * the coherence invariant checker only runs after quiesce. The
 * watchdog is an event-kernel-driven periodic check that trips on:
 *
 *  - livelock: the machine keeps executing events but no architectural
 *    progress happens (no new CPU issues, no write-back completions)
 *    for `stallChecks` consecutive checks, or any single transaction
 *    exceeds the `maxTxnAge` age bound;
 *  - deadlock: the event queue drained while CPUs still hold
 *    unfinished traces (non-empty L2 wbq / L3 incoming / ring queues
 *    with nothing left to run);
 *  - wall-clock budget: the run exceeded `wallSecs` real seconds
 *    (inherently non-deterministic; off by default).
 *
 * On a trip the watchdog assembles a diagnostic snapshot -- the stuck
 * transactions (line address, age, retry counts), every queue depth,
 * and the retry-window state -- invokes an optional hook (the
 * Simulation facade uses it to flush a Perfetto trace), and aborts the
 * run with a structured SimError instead of hanging. Sweep workers
 * catch it, so one wedged cell cannot stall a grid.
 *
 * Like the obs sampler, the watchdog never keeps the event queue
 * alive: it reschedules itself only while other work is pending, and
 * with `every == 0` (the default) it is never constructed at all, so
 * watchdog-free runs are byte-identical.
 */

#ifndef CMPCACHE_SIM_WATCHDOG_HH
#define CMPCACHE_SIM_WATCHDOG_HH

#include <chrono>
#include <functional>
#include <string>

#include "common/error.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace cmpcache
{

class CmpSystem;

/** The `watchdog.*` slice of SystemConfig. */
struct WatchdogConfig
{
    /** Check period in cycles; 0 disables the watchdog entirely. */
    Tick every = 0;
    /** Consecutive no-progress checks before a livelock trip. */
    unsigned stallChecks = 3;
    /** Oldest allowed in-flight transaction age in cycles (0 = no
     * age bound). */
    Tick maxTxnAge = 0;
    /** Wall-clock budget in seconds (0 = unlimited). Trips are
     * non-deterministic by nature; keep off for reproducible runs. */
    std::uint64_t wallSecs = 0;

    bool enabled() const { return every > 0; }
};

class Watchdog
{
  public:
    Watchdog(CmpSystem &sys, const WatchdogConfig &cfg);

    /** Schedule the first check (call before CmpSystem::run). */
    void start();

    /**
     * Invoked with the structured error right before the watchdog
     * throws, while the system is still inspectable (flush traces,
     * dump state).
     */
    using TripHook = std::function<void(const SimError &)>;
    void setTripHook(TripHook hook) { onTrip_ = std::move(hook); }

    std::uint64_t checksRun() const { return checks_; }

  private:
    void check();
    /** Build the diagnostic, run the hook, throw SimException. */
    [[noreturn]] void trip(SimErrorKind kind, const std::string &why);
    /** Multi-line state dump: stuck transactions, queue depths,
     * retry-window state. */
    std::string snapshot();
    /** Monotone counter of architectural progress. */
    std::uint64_t progressCount() const;

    CmpSystem &sys_;
    WatchdogConfig cfg_;
    EventFunctionWrapper event_;
    TripHook onTrip_;

    std::uint64_t checks_ = 0;
    std::uint64_t lastProgress_ = 0;
    std::uint64_t lastExecuted_ = 0;
    unsigned stalled_ = 0;
    std::chrono::steady_clock::time_point wallStart_;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_WATCHDOG_HH
