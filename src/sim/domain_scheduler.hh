/**
 * @file
 * Conservative-lookahead parallel event scheduler (docs/parallel.md).
 *
 * One simulation is sharded across worker threads by partitioning its
 * SimObjects into *domains*, each driven by its own bucketed-wheel
 * EventQueue (src/sim/event_queue.hh):
 *
 *  - one core domain per L2 slice (the L2 plus the trace CPUs that
 *    feed it), whose events touch only that slice's state;
 *  - an uncore domain (ring drains, L3/memory housekeeping);
 *  - a global domain (snoop combines, L3 absorbs, sampler, watchdog)
 *    whose events read and write state across every domain.
 *
 * Execution proceeds in rounds. Each round the coordinator computes a
 * conservative *cut*: the earliest (tick, key) position a globally
 * ordered event could possibly occupy, bounded by the pending global
 * head, by pending uncore work plus the ring's snoop latency (the
 * lookahead window), and by the earliest core event plus requester
 * overhead and snoop latency. Core domains then execute every event
 * strictly before the cut in parallel; cross-domain ring issues are
 * captured per domain (Ring::setThreadIssueDeferral) and replayed by
 * the coordinator in serial position order, interleaved with the
 * uncore queue; finally the single boundary global event executes with
 * every queue's clock synchronized to its tick.
 *
 * Determinism contract: the result is *bit-identical* to the serial
 * kernel for any worker count, including one. Same-tick ties are
 * broken by schedule sequence numbers, so events born inside a round
 * get provisional per-queue sequences plus a *birth record* capturing
 * (parent position, birth index); at the end of the round all birth
 * records are sorted into the exact serial birth order and the still
 * pending events are renumbered with dense global sequences. Raw key
 * comparisons stay valid throughout because every round-born sequence
 * (provisional band, bit 55 set) orders after every resolved sequence
 * of the same tick and priority -- exactly where serial order puts it.
 */

#ifndef CMPCACHE_SIM_DOMAIN_SCHEDULER_HH
#define CMPCACHE_SIM_DOMAIN_SCHEDULER_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace cmpcache
{

class DomainScheduler
{
  public:
    struct Params
    {
        /** Worker threads, including the coordinator (>= 1). */
        unsigned workers = 1;
        /**
         * Minimum distance, in ticks, from an uncore event to any
         * global event it can cause (the ring snoop latency). Must be
         * >= 1: a zero-latency link collapses the lookahead window.
         */
        Tick lookahead = 1;
        /**
         * Minimum distance from a core event to any *uncore* event it
         * can cause (the ring requester overhead); core events are
         * then >= issueToLaunch + lookahead from any global they can
         * cause. Must be >= 1.
         */
        Tick issueToLaunch = 1;
        /**
         * Collect wall-clock per-phase timing (PhaseStats seconds
         * fields). Off by default: two steady_clock reads per phase
         * per round are measurable at high round rates.
         */
        bool phaseStats = false;
    };

    /**
     * Optional oracle tightening the conservative cut with live ring
     * state: fills @p uncore_global_at with the tick of the next
     * scheduled ring drain (MaxTick when none -- drains are the only
     * uncore events that ever schedule globals) and
     * @p core_launch_floor with the ring's next-launch floor (a
     * deferred issue can drain no earlier than
     * max(parent + issueToLaunch, floor)). Installing a probe asserts
     * that ring combines are the *only* globals born from uncore or
     * core execution; anything else must keep the static terms.
     */
    using LookaheadProbeFn =
        std::function<void(Tick &uncore_global_at, Tick &core_launch_floor)>;

    /**
     * Per-phase round accounting. Counters are always maintained;
     * the seconds fields stay zero unless Params::phaseStats is set.
     */
    struct PhaseStats
    {
        std::uint64_t rounds = 0;        ///< barrier rounds completed
        std::uint64_t fanOutRounds = 0;  ///< rounds that woke the pool
        std::uint64_t soloRounds = 0;    ///< rounds with one active domain
        std::uint64_t renumberSorts = 0; ///< rounds needing the cross-queue sort
        std::uint64_t birthRecords = 0;  ///< round-born events renumbered
        double coreSeconds = 0;     ///< phase 1: domain execution + claim loop
        double barrierSeconds = 0;  ///< coordinator wait at the done barrier
        double replaySeconds = 0;   ///< phases 2-3: issue replay + uncore drain
        double globalSeconds = 0;   ///< phase 4: boundary global events
        double renumberSeconds = 0; ///< end-of-round renumbering
    };

    /** Install the glue hook replaying deferred ring issue #payload
     * of @p domain with the uncore clock at @p parentTick. */
    using ApplyIssueFn = std::function<void(
        unsigned domain, std::uint32_t payload, Tick parentTick)>;
    /** Per-thread context installers around a domain's execution
     * (issue-deferral sinks, retry-query logs). */
    using DomainCtxFn = std::function<void(unsigned domain)>;
    /** Runs right before each boundary global event and once at the
     * end of the run (commit deferred retry-window rolls). */
    using PreGlobalFn = std::function<void()>;

    /**
     * @param core   one queue per core domain (non-null, unowned)
     * @param uncore the uncore domain queue
     * @param global the globally ordered queue
     */
    DomainScheduler(std::vector<EventQueue *> core, EventQueue &uncore,
                    EventQueue &global, const Params &p);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    void setApplyIssueFn(ApplyIssueFn fn) { applyFn_ = std::move(fn); }
    void setEnterDomainFn(DomainCtxFn fn) { enterFn_ = std::move(fn); }
    void setLeaveDomainFn(DomainCtxFn fn) { leaveFn_ = std::move(fn); }
    void setPreGlobalFn(PreGlobalFn fn) { preGlobalFn_ = std::move(fn); }
    void setLookaheadProbeFn(LookaheadProbeFn fn)
    {
        probeFn_ = std::move(fn);
    }

    /**
     * Record a deferred cross-domain issue made by the event
     * currently executing on this thread (called, via the glue's
     * IssueDeferral sink, from inside a core domain's execution).
     * @p payload identifies the captured request in the glue's
     * per-domain buffer.
     */
    void noteDeferredIssue(std::uint32_t payload);

    /**
     * Run rounds until every queue drains or all pending events lie
     * beyond @p max_tick (every queue is then synchronized to
     * @p max_tick, mirroring EventQueue::run's budget semantics).
     */
    void run(Tick max_tick = MaxTick);

    /** Live events across all domains (serial numPending parity). */
    std::size_t totalPending() const;
    /** Events executed across all domains (serial numExecuted
     * parity). */
    std::uint64_t totalExecuted() const;

    /** Barrier rounds completed (diagnostics/tests). */
    std::uint64_t rounds() const { return rounds_; }

    /** Per-phase round accounting (see PhaseStats). */
    const PhaseStats &phaseStats() const { return phaseStats_; }

    /**
     * Execution bound of the domain currently running on this thread.
     * Returns true -- filling the cut position -- only from inside a
     * round's parallel phase; a consumer (the CPU hit fast path) may
     * then advance its local clock to any position strictly before
     * the cut without cross-domain work observing it. Returns false
     * on threads not executing a domain (serial kernel, replay,
     * boundary globals).
     */
    static bool currentExecBound(Tick &cut_tick, std::uint64_t &cut_key);

    /**
     * Account one event the hit fast path executed virtually (no
     * schedule, no pop) inside the current phase-1 execution: logs an
     * event-less birth record -- consuming the sequence slot the
     * serial kernel's schedule() would have drawn -- and re-parents
     * the thread's execution context onto it at (@p when, @p pri).
     * Anything the batch schedules afterwards is thereby renumbered
     * to exactly the sequence the serial kernel would have assigned.
     * No-op outside a round's parallel phase (the serial kernel
     * preserves relative sequence order by construction: the fast
     * path only batches while its events would be consecutive).
     */
    static void noteVirtualStep(EventQueue &q, Tick when,
                                Event::Priority pri);

    const Params &params() const { return params_; }

  private:
    struct BirthRec;

    /** Execution-order position of an event: (tick, packed key) plus
     * the birth record when the sequence is still provisional. */
    struct Pos
    {
        Tick tick = 0;
        std::uint64_t key = 0;
        const BirthRec *rec = nullptr;
    };

    /** One schedule() performed inside a round: enough to replay the
     * serial birth order at renumber time. */
    struct BirthRec
    {
        Pos parent;
        std::uint32_t idx = 0;
        std::uint32_t subIdx = 0;
        Event *ev = nullptr;
        EventQueue *queue = nullptr;
    };

    /** A captured cross-domain issue, ordered by its parent. */
    struct OutMsg
    {
        Pos parent;
        std::uint32_t idx = 0;
        std::uint32_t payload = 0;
        unsigned domain = 0;
    };

    /**
     * Cached head of one queue, maintained across rounds so a round
     * start costs six flag checks instead of six peeks. Invalidated
     * by the queue's hook on any schedule or removal, and by the
     * coordinator after it pops; renumbering patches the cached key
     * in place when it rekeys the cached head event.
     */
    struct HeadCache
    {
        bool valid = false;
        bool have = false;
        EventQueue::PeekResult r;
    };

    class QueueHook;
    struct WorkerPool;
    struct ExecCtx;
    class TlsCtxScope;

    static int cmpPos(const Pos &a, const Pos &b);
    static int cmpRec(const BirthRec *a, const BirthRec *b);
    static Pos posOfPopped(EventQueue &q, const Event *ev);

    void executeDomain(unsigned d, Tick cut_tick, std::uint64_t cut_key);
    void workerClaimLoop();
    void drainUncoreAndIssues(Tick cut_tick, std::uint64_t cut_key);
    void renumberRound();
    void syncAllTo(Tick t);

    /** Execution context of the event running on this thread; null
     * outside rounds (sequential moments draw resolved sequences). */
    static thread_local ExecCtx *tlsCtx_;

    Params params_;
    std::vector<EventQueue *> core_;
    EventQueue &uncore_;
    EventQueue &global_;

    std::vector<std::unique_ptr<QueueHook>> hooks_;
    std::vector<std::vector<OutMsg>> outbox_;
    std::vector<OutMsg> mergedMsgs_;
    std::vector<BirthRec *> renumberBuf_;

    ApplyIssueFn applyFn_;
    DomainCtxFn enterFn_;
    DomainCtxFn leaveFn_;
    PreGlobalFn preGlobalFn_;
    LookaheadProbeFn probeFn_;

    std::uint64_t nextGlobalSeq_ = 0;
    std::uint64_t rounds_ = 0;
    PhaseStats phaseStats_;

    /** Domains with work below the current cut (worker claim list). */
    std::vector<unsigned> activeDomains_;
    /** Cached heads: one per core domain, then uncore, then global
     * (same order as hooks_). */
    std::vector<HeadCache> headCache_;
    /** Hooks dirtied by births outside the parallel phase (the
     * coordinator's serial phases 2-4); phase-1 births flag their own
     * hook instead, so no cross-thread queue is needed. */
    std::vector<QueueHook *> serialDirty_;
    /** Scratch: hooks with birth records this round (renumberRound). */
    std::vector<QueueHook *> dirtyHooks_;
    std::unique_ptr<WorkerPool> pool_;
    std::mutex errorMutex_;
    std::exception_ptr firstError_;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_DOMAIN_SCHEDULER_HH
