/**
 * @file
 * CmpTopology: the declarative, validated description of the machine
 * shape -- cores, SMT width, L2 clusters, L3 slices, memory controller
 * and their placement on the ring interconnect.
 *
 * The topology is the single owner of agent-id and ring-stop
 * arithmetic. Nothing outside this file computes "numL2s + 1"-style
 * ids: CmpSystem, the Ring, the SnoopCollector, the watchdog and the
 * invariant checker all ask the topology instead (grep-enforced by
 * tests/sim/test_topology_grep.cc).
 *
 * Three interconnect layouts are supported (topology.layout):
 *
 *  - single_ring: the paper's machine. One bi-directional ring; every
 *    agent (L2s, then L3, then the memory controller) occupies one
 *    stop in id order.
 *
 *  - dual_ring: the same placement replicated over two independent
 *    bi-directional data rings. Each transfer picks the lane (and
 *    direction) with the earliest arrival, so data bandwidth doubles
 *    while the address/snoop network is unchanged.
 *
 *  - hier_ring: topology.rings local rings, each holding an equal
 *    share of the L2s plus one bridge stop, joined by a global ring
 *    that carries the bridges, the L3 and the memory controller.
 *    Cross-cluster transfers take up to three legs
 *    (local -> global -> local).
 */

#ifndef CMPCACHE_SIM_TOPOLOGY_HH
#define CMPCACHE_SIM_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace cmpcache
{

/** Interconnect layout (config key topology.layout). */
enum class RingLayout
{
    SingleRing,
    DualRing,
    HierRing,
};

const char *toString(RingLayout layout);
bool tryRingLayoutFromString(const std::string &s, RingLayout &out);

/**
 * Raw topology knobs as configured (topology.* keys). A
 * TopologyParams may also carry values parked by the deprecated
 * legacy keys (num_l2s / threads_per_l2 / ring.num_stops /
 * l3.slices); resolved() folds those into the canonical fields.
 * Mixing legacy and canonical keys is a validation error.
 */
struct TopologyParams
{
    /** Physical cores (paper Table 3: 8). */
    unsigned cores = 8;
    /** Hardware threads per core (2-way SMT in the paper). */
    unsigned smt = 2;
    /** Shared L2 caches; cores*smt threads divide evenly across. */
    unsigned l2s = 4;
    /** L3 slices (power of two: the slice hash is a mask). */
    unsigned l3Slices = 4;
    RingLayout layout = RingLayout::SingleRing;
    /** Local rings under hier_ring (>= 2; l2s divide evenly). */
    unsigned rings = 2;
    /** Per-L2 capacity override in KB; 0 keeps l2.size_bytes. */
    std::uint64_t l2KbPerL2 = 0;
    /** Per-slice L3 capacity override in MB; 0 keeps l3.size_bytes
     * (which is the total across slices). */
    std::uint64_t l3MbPerSlice = 0;

    /**
     * Deprecated-alias parking slots. The legacy config keys write
     * here instead of the canonical fields so resolution stays
     * order-independent; 0 means "not set". resolved() folds them in
     * with the legacy defaults (threads_per_l2 = 4, SMT folded into
     * threads-per-L2).
     */
    unsigned legacyNumL2s = 0;
    unsigned legacyThreadsPerL2 = 0;
    unsigned legacyRingStops = 0;
    unsigned legacyL3Slices = 0;
    /** Set by config_io when any canonical topology.* key is used;
     * mixing styles is a named validation error. */
    bool canonicalKeysUsed = false;

    bool
    legacyKeysUsed() const
    {
        return legacyNumL2s || legacyThreadsPerL2 || legacyRingStops
               || legacyL3Slices;
    }

    /** Fold any legacy-alias values into the canonical fields. */
    TopologyParams resolved() const;

    /** Hardware threads (on resolved values). */
    unsigned threads() const { return cores * smt; }

    /** Threads sharing one L2 (on resolved values; 0-safe). */
    unsigned
    threadsPerL2() const
    {
        return l2s ? threads() / l2s : 0;
    }

    /**
     * A flat single-ring machine of @p num_l2s L2s with
     * @p threads_per_l2 single-SMT cores each -- the shape the test
     * suites describe with the old three-field idiom.
     */
    static TopologyParams flat(unsigned num_l2s,
                               unsigned threads_per_l2);
};

/**
 * Full consistency check. Each returned string names the offending
 * topology.* (or legacy) config key. Empty means valid.
 */
std::vector<std::string> validateTopology(const TopologyParams &raw);

/**
 * The validated machine shape. Construction only succeeds on a
 * parameter set that passes validateTopology(), so every accessor can
 * assume a consistent geometry. Cheap to copy: components keep their
 * own copy instead of referencing the system's.
 */
class CmpTopology
{
  public:
    /** Validate @p raw and build; SimError (Config) on failure. */
    static Expected<CmpTopology> build(const TopologyParams &raw);

    /** Build-or-die convenience for tests and benches. */
    static CmpTopology flat(unsigned num_l2s, unsigned threads_per_l2);

    /** The resolved (legacy-folded) parameters. */
    const TopologyParams &params() const { return p_; }
    RingLayout layout() const { return p_.layout; }

    unsigned numCores() const { return p_.cores; }
    unsigned numThreads() const { return p_.threads(); }
    unsigned numL2s() const { return p_.l2s; }
    unsigned threadsPerL2() const { return p_.threadsPerL2(); }
    unsigned numL3Slices() const { return p_.l3Slices; }
    /** Bus agents: the L2s plus the L3 plus the memory controller. */
    unsigned numAgents() const { return p_.l2s + 2; }
    /** Ring stops equal agents: every agent owns exactly one stop
     * (bridge stops under hier_ring are interconnect infrastructure,
     * not agents, and are not counted here). */
    unsigned numStops() const { return numAgents(); }

    AgentId l2Agent(unsigned i) const;
    AgentId l3Agent() const { return static_cast<AgentId>(p_.l2s); }
    AgentId memAgent() const;
    bool isL2Agent(AgentId a) const { return a < p_.l2s; }
    /** The L2 cluster thread @p t belongs to. */
    unsigned l2OfThread(unsigned t) const;

    /** The ring stop agent @p a occupies. */
    RingStop stopOfAgent(AgentId a) const;

    // ---- physical data-ring geometry ------------------------------

    /** Physical rings: 1 (single), 2 (dual), rings+1 (hier: local
     * rings then the global ring last). */
    unsigned numRings() const;
    /** Stops on physical ring @p r (bridges included under hier). */
    unsigned ringSize(unsigned r) const;
    /**
     * Interchangeable lanes per route. Under dual_ring every leg may
     * ride either of the two identical rings (route() names ring 0;
     * the caller substitutes any lane < numDataLanes()). 1 otherwise.
     */
    unsigned numDataLanes() const;

    /** One hop sequence on a single physical ring. */
    struct DataLeg
    {
        unsigned ring = 0;   ///< physical ring index
        unsigned srcPos = 0; ///< position on that ring
        unsigned dstPos = 0;
    };

    /**
     * Decompose the @p src -> @p dst data path into at most 3 legs
     * (written to @p legs). Returns the leg count; 0 when src == dst.
     */
    unsigned route(RingStop src, RingStop dst, DataLeg legs[3]) const;

    /** One-line human description ("8c x 2smt, 4xL2 ..."). */
    std::string describe() const;

  private:
    explicit CmpTopology(const TopologyParams &resolved);

    /** (physical ring, position) of a stop. */
    struct Place
    {
        unsigned ring;
        unsigned pos;
    };
    Place placeOf(RingStop stop) const;

    TopologyParams p_;
    /** hier_ring only: L2s per local ring. */
    unsigned perLocal_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_SIM_TOPOLOGY_HH
