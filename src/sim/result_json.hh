/**
 * @file
 * Machine-readable experiment results: JSON emission and strict
 * parsing of ExperimentResult records (see docs/sweep.md).
 *
 * Emission is deterministic: fixed key order, integers printed
 * exactly, doubles printed with 17 significant digits so a
 * write/parse round trip reproduces every field bit-for-bit.
 *
 * Result objects are versioned: emission writes
 * "schemaVersion": kResultSchemaVersion as the first field; parsing
 * accepts objects without the field (the implicit v1 of earlier
 * releases) as well as any version up to the current one.
 */

#ifndef CMPCACHE_SIM_RESULT_JSON_HH
#define CMPCACHE_SIM_RESULT_JSON_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"

namespace cmpcache
{

/** Version written into every emitted result object. */
constexpr std::uint64_t kResultSchemaVersion = 2;

/**
 * Write one result as a JSON object. Every line is prefixed by
 * @p indent spaces (the opening brace included), so the object can be
 * embedded in an array at any nesting depth.
 */
void writeResultJson(std::ostream &os, const ExperimentResult &r,
                     unsigned indent = 0);

/** writeResultJson into a string. */
std::string resultToJson(const ExperimentResult &r);

/**
 * Parse a JSON object produced by writeResultJson. Strict: malformed
 * JSON, a missing field, or a wrong-typed field fails the parse.
 * @param error receives a diagnostic on failure (may be null)
 * @return true on success
 */
bool parseResultJson(const std::string &text, ExperimentResult &out,
                     std::string *error = nullptr);

/**
 * One cell read back from a sweep results file. Cells that failed
 * (the writer's {"status": "error", ...} form) carry ok = false, the
 * structured error, and identity-only result fields
 * (workload/policy/maxOutstanding); everything else in result is
 * default-initialized.
 */
struct SweepCellOutcome
{
    bool ok = true;
    std::string errorKind; ///< SimErrorKind name; empty when ok
    std::string error;     ///< failure message; empty when ok
    ExperimentResult result;
};

/**
 * Parse a whole sweep results file ("cmpcache-sweep-results-v2", or
 * the v1 tag of earlier releases): checks the schema tag and extracts
 * the "results" array. Cells with "status": "error" are skipped --
 * use the SweepCellOutcome overload to see them.
 */
bool parseSweepResultsJson(const std::string &text,
                           std::vector<ExperimentResult> &out,
                           std::string *error = nullptr);

/**
 * Detailed overload: returns every cell, failed ones included, in
 * file order.
 */
bool parseSweepResultsJson(const std::string &text,
                           std::vector<SweepCellOutcome> &out,
                           std::string *error = nullptr);

} // namespace cmpcache

#endif // CMPCACHE_SIM_RESULT_JSON_HH
