#include "sim/watchdog.hh"

#include <sstream>

#include "common/logging.hh"
#include "sim/cmp_system.hh"

namespace cmpcache
{

Watchdog::Watchdog(CmpSystem &sys, const WatchdogConfig &cfg)
    : sys_(sys),
      cfg_(cfg),
      event_([this] { check(); }, "watchdog", Event::StatPri),
      wallStart_(std::chrono::steady_clock::now())
{
    cmp_assert(cfg_.enabled(), "watchdog built with every == 0");
    cmp_assert(cfg_.stallChecks > 0,
               "watchdog needs stallChecks >= 1");
}

void
Watchdog::start()
{
    EventQueue &eq = sys_.eventq();
    eq.schedule(&event_, eq.curTick() + cfg_.every);
    lastProgress_ = progressCount();
}

std::uint64_t
Watchdog::progressCount() const
{
    std::uint64_t n = 0;
    for (unsigned t = 0; t < sys_.numCpus(); ++t)
        n += sys_.cpu(t).issued();
    for (unsigned i = 0; i < sys_.numL2s(); ++i)
        n += sys_.l2(i).wbCompleted();
    return n;
}

void
Watchdog::check()
{
    ++checks_;
    EventQueue &eq = sys_.eventq();
    const Tick now = eq.curTick();

    if (cfg_.wallSecs > 0) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart_)
                .count();
        if (elapsed > static_cast<double>(cfg_.wallSecs)) {
            trip(SimErrorKind::Budget,
                 cstr("wall-clock budget exhausted (", cfg_.wallSecs,
                      "s) at tick ", now));
        }
    }

    if (sys_.finished())
        return; // drained; never keep the queue alive

    // Deadlock: we are the last event standing, yet CPUs still hold
    // unfinished traces. Nothing can ever run again. (Pending and
    // executed counts aggregate across every domain queue; in serial
    // mode they are the plain single-queue counters.)
    if (sys_.totalPending() == 0) {
        trip(SimErrorKind::Watchdog,
             cstr("deadlock: event queue drained at tick ", now,
                  " with unfinished traces"));
    }

    // Livelock by age: a single transaction outstanding too long.
    if (cfg_.maxTxnAge > 0) {
        Addr worst_line = InvalidAddr;
        Tick worst_age = 0;
        unsigned worst_retries = 0;
        const char *worst_what = "";
        for (unsigned i = 0; i < sys_.numL2s(); ++i) {
            sys_.l2(i).mshrFile().forEach([&](const Mshr &m) {
                const Tick age = now - m.allocated;
                if (age > worst_age) {
                    worst_age = age;
                    worst_line = m.lineAddr;
                    worst_retries = m.retries;
                    worst_what = "demand miss";
                }
            });
        }
        Addr ring_line = InvalidAddr;
        Tick ring_enq = MaxTick;
        if (sys_.ring().oldestPending(ring_line, ring_enq)
            && now - ring_enq > worst_age) {
            worst_age = now - ring_enq;
            worst_line = ring_line;
            worst_retries = 0;
            worst_what = "queued ring request";
        }
        if (worst_age > cfg_.maxTxnAge) {
            trip(SimErrorKind::Watchdog,
                 cstr("livelock: ", worst_what, " for line 0x",
                      std::hex, worst_line, std::dec, " outstanding ",
                      worst_age, " cycles (", worst_retries,
                      " retries, bound ", cfg_.maxTxnAge, ")"));
        }
    }

    // Livelock by starvation: events keep executing but nothing
    // architectural completes. Idle stretches (far-future events
    // only) are not livelock; require real event churn to count a
    // check as stalled.
    const std::uint64_t progress = progressCount();
    const std::uint64_t executed = sys_.totalExecuted();
    const bool churning = executed > lastExecuted_ + 1;
    lastExecuted_ = executed;
    if (churning && progress == lastProgress_) {
        if (++stalled_ >= cfg_.stallChecks) {
            trip(SimErrorKind::Watchdog,
                 cstr("livelock: no forward progress over ", stalled_,
                      " consecutive checks (", cfg_.every,
                      " cycles each) while events kept executing"));
        }
    } else {
        stalled_ = 0;
    }
    lastProgress_ = progress;

    eq.schedule(&event_, now + cfg_.every);
}

std::string
Watchdog::snapshot()
{
    EventQueue &eq = sys_.eventq();
    const Tick now = eq.curTick();
    std::ostringstream os;
    os << "watchdog snapshot @ tick " << now << " (check " << checks_
       << ", " << sys_.totalExecuted() << " events executed, "
       << sys_.totalPending() << " pending)\n";

    unsigned cpus_done = 0;
    std::uint64_t issued = 0;
    for (unsigned t = 0; t < sys_.numCpus(); ++t) {
        cpus_done += sys_.cpu(t).done() ? 1 : 0;
        issued += sys_.cpu(t).issued();
    }
    os << "  cpus: " << cpus_done << "/" << sys_.numCpus()
       << " done, " << issued << " refs issued\n";

    for (unsigned i = 0; i < sys_.numL2s(); ++i) {
        L2Cache &l2 = sys_.l2(i);
        os << "  l2_" << i << ": wbq "
           << l2.writeBackQueue().size() << "/"
           << l2.writeBackQueue().capacity() << ", mshrs "
           << l2.mshrFile().inUse() << "/"
           << l2.mshrFile().capacity();
        // The stuck-transaction candidates: the most-retried write
        // back and the oldest outstanding miss.
        const WbEntry *worst_wb = nullptr;
        l2.writeBackQueue().forEach([&](const WbEntry &e) {
            if (!worst_wb || e.retries > worst_wb->retries)
                worst_wb = &e;
        });
        if (worst_wb) {
            os << "; worst wb line 0x" << std::hex
               << worst_wb->lineAddr << std::dec << " ("
               << worst_wb->retries << " retries, "
               << (worst_wb->inFlight ? "in flight" : "queued")
               << ")";
        }
        const Mshr *oldest = nullptr;
        l2.mshrFile().forEach([&](const Mshr &m) {
            if (!oldest || m.allocated < oldest->allocated)
                oldest = &m;
        });
        if (oldest) {
            os << "; oldest miss line 0x" << std::hex
               << oldest->lineAddr << std::dec << " (age "
               << now - oldest->allocated << ", "
               << oldest->retries << " retries)";
        }
        os << "\n";
    }

    os << "  l3: incoming queue " << sys_.l3().incomingBusy()
       << " busy\n";
    os << "  ring: " << sys_.ring().pendingRequests()
       << " requests queued";
    Addr line = InvalidAddr;
    Tick enq = MaxTick;
    if (sys_.ring().oldestPending(line, enq)) {
        os << "; oldest line 0x" << std::hex << line << std::dec
           << " (age " << now - enq << ")";
    }
    os << "\n";
    os << "  retry window: gate "
       << (sys_.retryMonitor().active(now) ? "on" : "off");
    return os.str();
}

void
Watchdog::trip(SimErrorKind kind, const std::string &why)
{
    SimError err(kind, why + "\n" + snapshot());
    if (onTrip_)
        onTrip_(err);
    throw SimException(std::move(err));
}

} // namespace cmpcache
