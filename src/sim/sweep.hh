/**
 * @file
 * Parallel deterministic experiment sweeps.
 *
 * A SweepSpec is the cross product {workloads} x {policies} x
 * {outstanding-miss limits} -- the shape of every table and figure in
 * the paper. expand() flattens it into independent jobs in row-major
 * axis order; runSweep() executes the jobs on a std::thread pool.
 *
 * Determinism contract: every job builds its own CmpSystem, event
 * queue and workload RNG streams, and nothing in the simulator
 * mutates shared global state, so results depend only on the spec.
 * Jobs are collected by job index, which makes the returned vector --
 * and any JSON serialization of it -- byte-identical whether the
 * sweep ran on one thread or sixteen. Wall-clock timing is inherently
 * non-deterministic and therefore lives in separate fields that only
 * the bench writer emits (see docs/sweep.md).
 */

#ifndef CMPCACHE_SIM_SWEEP_HH
#define CMPCACHE_SIM_SWEEP_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/time_series.hh"
#include "obs/trace_export.hh"
#include "sim/experiment.hh"
#include "sim/system_config.hh"
#include "trace/workload.hh"

namespace cmpcache
{

/** Full-stats dump format captured per cell (None = no dump). */
enum class StatsFormat
{
    None,
    Text,
    Csv,
    Json,
};

/** One expanded grid cell, ready to run. */
struct SweepJob
{
    unsigned index = 0; ///< position in deterministic job order
    std::string workload;
    WbPolicy policy = WbPolicy::Baseline;
    unsigned outstanding = 0;

    SystemConfig config;    ///< fully resolved per-job configuration
    WorkloadParams params;  ///< fully resolved workload parameters

    /** "Trade2/combined/o6" -- progress lines and labels. */
    std::string label() const;
};

/** Sweep axes plus everything shared by all cells. */
struct SweepSpec
{
    /** Commercial ("TP", "Trade2", ...) or stress ("thrash", ...)
     * workload names. */
    std::vector<std::string> workloads;
    std::vector<WbPolicy> policies;
    /** cpu.maxOutstanding values (the paper's pressure axis). */
    std::vector<unsigned> outstanding;

    std::uint64_t recordsPerThread = 20000;
    std::uint64_t seed = 1;

    /**
     * Configuration shared by every cell. Per-cell resolution swaps
     * in the cell's policy (halving both table sizes for Combined, as
     * the paper does) and outstanding-miss limit, keeping every other
     * base knob -- retry switch, table sizes, cache geometry --
     * untouched.
     */
    SystemConfig base;

    /**
     * "wl.key" = value overrides applied to every cell's resolved
     * workload parameters (footprints, sharing fractions, mixes), in
     * order. The workload's name is preserved so results stay keyed
     * by the axis value. fatal() on unknown keys at expand() time.
     */
    std::vector<std::pair<std::string, std::string>> workloadOverrides;

    /** Run the coherence invariant checker after every cell. */
    bool checkCoherence = false;

    /**
     * Capture a full stats dump per cell in this format (the CLI's
     * --stats-format). Sampling and tracing are configured through
     * base.obs (the CLI's --sample-every / --trace-out).
     */
    StatsFormat statsFormat = StatsFormat::None;

    /** Number of grid cells. */
    std::size_t size() const;

    /** Flatten into jobs: workload-major, then policy, then
     * outstanding. fatal() on empty axes or unknown names. */
    std::vector<SweepJob> expand() const;

    /** fatal() on empty axes, unknown workloads, or a base config
     * that fails validation. */
    void validate() const;
};

/** Everything measured about one finished cell. */
struct SweepJobResult
{
    /**
     * Did the cell complete? Workers isolate failures: a cell whose
     * construction or run throws (bad per-cell config, watchdog trip,
     * budget overrun) reports ok = false with the structured error
     * below while every other cell completes normally. Error cells
     * keep their identity fields (result.workload / policy /
     * maxOutstanding) so reports stay aligned with the grid.
     */
    bool ok = true;
    /** SimErrorKind name ("config", "watchdog", ...); empty when ok. */
    std::string errorKind;
    /** Human-readable failure message; empty when ok. */
    std::string error;

    /**
     * Rerun identity, filled for failed cells: the exact workload
     * seed, fault plan and machine shape the cell ran with, plus a
     * one-line `cmpcache serve` command that replays it standalone
     * (docs/robustness.md). Emitted in the error-cell JSON so a
     * failure in a big grid is reproducible without re-deriving the
     * per-cell configuration.
     */
    std::uint64_t seed = 0;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    std::string topologySummary;
    /** The cell's run.threads. Struct-only: results are bit-identical
     * across kernel thread counts by contract, so this never appears
     * in the deterministic JSON (nor in the rerun line). */
    unsigned runThreads = 0;
    std::string rerun;

    ExperimentResult result;
    /** Invariant-checker violations (0 unless checkCoherence). */
    std::uint64_t coherenceViolations = 0;

    /** Kernel events executed by the job (deterministic). */
    std::uint64_t eventsExecuted = 0;

    /** Sampled time series (empty unless base.obs.sampleEvery > 0);
     * deterministic. */
    SampleSeries samples;

    /** Recorded coherence transactions (empty unless
     * base.obs.traceEnabled); deterministic, ring-buffer bounded. */
    std::vector<TraceEvent> trace;

    /** Full stats dump (empty unless statsFormat != None);
     * deterministic. */
    std::string statsDump;

    // Timing -- never part of deterministic output.
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0; ///< simulated cycles per wall second
    double eventsPerSec = 0.0; ///< kernel events per wall second
};

/**
 * Progress hooks. Callbacks are serialized by the runner (never
 * concurrent) but fire from worker threads in completion order.
 */
class SweepObserver
{
  public:
    virtual ~SweepObserver() = default;

    virtual void jobStarted(const SweepJob &job, unsigned total)
    {
        (void)job;
        (void)total;
    }

    /**
     * @param done jobs finished so far (including this one)
     * @param eta_seconds naive remaining-time estimate; < 0 while
     *        unknown
     */
    virtual void jobFinished(const SweepJob &job,
                             const SweepJobResult &r, unsigned done,
                             unsigned total, double eta_seconds)
    {
        (void)job;
        (void)r;
        (void)done;
        (void)total;
        (void)eta_seconds;
    }
};

/** Observer printing "start"/"done" lines with an ETA to a stream. */
class SweepProgressPrinter : public SweepObserver
{
  public:
    explicit SweepProgressPrinter(std::ostream &os) : os_(os) {}

    void jobStarted(const SweepJob &job, unsigned total) override;
    void jobFinished(const SweepJob &job, const SweepJobResult &r,
                     unsigned done, unsigned total,
                     double eta_seconds) override;

  private:
    std::ostream &os_;
};

/**
 * Run every cell of @p spec on @p num_threads worker threads
 * (clamped to [1, jobs]).
 * @return results in job order, independent of thread count
 */
std::vector<SweepJobResult> runSweep(const SweepSpec &spec,
                                     unsigned num_threads,
                                     SweepObserver *observer = nullptr);

/**
 * Resolve a workload by name across both families: the commercial
 * stand-ins and the stress patterns. fatal() on unknown names.
 */
WorkloadParams sweepWorkloadByName(const std::string &name,
                                   std::uint64_t records_per_thread,
                                   std::uint64_t seed);

/** Is @p name resolvable by sweepWorkloadByName()? */
bool isSweepWorkload(const std::string &name);

/**
 * Deterministic sweep results file, schema
 * "cmpcache-sweep-results-v2": the spec's axes, an optional
 * "timeSeries" block (one sampled-series object per cell, present
 * when base.obs.sampleEvery > 0), and one result object per cell in
 * job order (parseSweepResultsJson reads it back, v1 files included).
 * Failed cells appear as {"status": "error", "errorKind": ...,
 * "error": ..., workload/policy/maxOutstanding, plus the rerun
 * identity: seed, topology, faultPlan, faultSeed and a one-line
 * "rerun" command} in place of the result object; all-ok
 * files carry no "status" fields and stay byte-identical to earlier
 * releases. Byte-identical for equal specs
 * regardless of thread count.
 */
void writeSweepResultsJson(std::ostream &os, const SweepSpec &spec,
                           const std::vector<SweepJobResult> &results);

/**
 * Timing companion file, schema "cmpcache-sweep-bench-v1": per-job
 * wall seconds and simulated-cycles-per-second throughput, plus
 * aggregate totals. This is what bench/BENCH_*.json files hold.
 */
void writeSweepBenchJson(std::ostream &os, const SweepSpec &spec,
                         const std::vector<SweepJobResult> &results,
                         unsigned num_threads, double total_wall_seconds);

} // namespace cmpcache

#endif // CMPCACHE_SIM_SWEEP_HH
