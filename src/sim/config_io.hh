/**
 * @file
 * Textual configuration for SystemConfig: simple "key = value" lines
 * ('#' comments), so whole experiments live in version-controllable
 * files. The same keys work as --key=value command-line overrides in
 * the cmpsim driver.
 *
 * Example:
 *
 *     # paper machine, WBHT policy at high pressure
 *     policy            = wbht
 *     cpu.outstanding   = 6
 *     wbht.entries      = 32768
 *     retry.window      = 250000
 *     retry.threshold   = 100
 *     l2.size_bytes     = 2097152
 *
 * Malformed input (unknown keys, non-numeric values, lines without
 * '=') surfaces as a structured SimError (kind Config, or Io for an
 * unreadable file) naming the offending key and line, never a process
 * exit -- one bad sweep cell must not take the grid down with it.
 */

#ifndef CMPCACHE_SIM_CONFIG_IO_HH
#define CMPCACHE_SIM_CONFIG_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/system_config.hh"

namespace cmpcache
{

/** Apply one "key", "value" pair; SimError (Config) on unknown keys
 * or malformed values. */
Expected<void> applyConfigOption(SystemConfig &cfg,
                                 const std::string &key,
                                 const std::string &value);

/** Parse "key = value" lines from a stream into @p cfg; errors name
 * the line number. */
Expected<void> loadConfig(SystemConfig &cfg, std::istream &is);

/** Parse a config file; SimError (Io) if unreadable. */
Expected<void> loadConfigFile(SystemConfig &cfg,
                              const std::string &path);

/** Write @p cfg out in the same format (round-trippable). */
void saveConfig(const SystemConfig &cfg, std::ostream &os);

/** All recognized keys (driver --help text, tests). */
const std::vector<std::string> &configKeys();

} // namespace cmpcache

#endif // CMPCACHE_SIM_CONFIG_IO_HH
