#include "sim/config_io.hh"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

std::uint64_t
toU64(const std::string &key, const std::string &v)
{
    try {
        return std::stoull(v);
    } catch (...) {
        cmp_fatal("config key '", key, "' expects an integer, got '",
                  v, "'");
    }
}

bool
toBool(const std::string &key, const std::string &v)
{
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    cmp_fatal("config key '", key, "' expects a boolean, got '", v,
              "'");
}

struct KeyHandler
{
    std::function<void(SystemConfig &, const std::string &,
                       const std::string &)>
        set;
    std::function<std::string(const SystemConfig &)> get;
};

#define U64_KEY(field)                                                  \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) {                                      \
            c.field = static_cast<decltype(c.field)>(toU64(k, v));      \
        },                                                              \
            [](const SystemConfig &c) { return cstr(c.field); }         \
    }

#define BOOL_KEY(field)                                                 \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) { c.field = toBool(k, v); },           \
            [](const SystemConfig &c) {                                 \
                return std::string(c.field ? "true" : "false");         \
            }                                                           \
    }

const std::map<std::string, KeyHandler> &
handlers()
{
    static const std::map<std::string, KeyHandler> h = {
        {"num_l2s", U64_KEY(numL2s)},
        {"threads_per_l2", U64_KEY(threadsPerL2)},
        {"cpu.outstanding", U64_KEY(cpu.maxOutstanding)},
        {"cpu.blocked_retry", U64_KEY(cpu.blockedRetry)},
        {"l2.size_bytes", U64_KEY(l2.sizeBytes)},
        {"l2.assoc", U64_KEY(l2.assoc)},
        {"l2.line_size", U64_KEY(l2.lineSize)},
        {"l2.slices", U64_KEY(l2.slices)},
        {"l2.hit_latency", U64_KEY(l2.hitLatency)},
        {"l2.supply_latency", U64_KEY(l2.supplyLatency)},
        {"l2.fill_latency", U64_KEY(l2.fillLatency)},
        {"l2.mshrs", U64_KEY(l2.mshrs)},
        {"l2.wbq_depth", U64_KEY(l2.wbqDepth)},
        {"l2.retry_backoff", U64_KEY(l2.retryBackoff)},
        {"l2.clean_interventions", BOOL_KEY(l2.cleanInterventions)},
        {"l3.size_bytes", U64_KEY(l3.sizeBytes)},
        {"l3.assoc", U64_KEY(l3.assoc)},
        {"l3.line_size", U64_KEY(l3.lineSize)},
        {"l3.slices", U64_KEY(l3.slices)},
        {"l3.access_latency", U64_KEY(l3.accessLatency)},
        {"l3.bank_occupancy", U64_KEY(l3.bankOccupancy)},
        {"l3.write_occupancy", U64_KEY(l3.writeOccupancy)},
        {"l3.squash_occupancy", U64_KEY(l3.squashOccupancy)},
        {"l3.wb_queue_depth", U64_KEY(l3.wbQueueDepth)},
        {"mem.access_latency", U64_KEY(mem.accessLatency)},
        {"mem.channel_occupancy", U64_KEY(mem.channelOccupancy)},
        {"obs.sample_every", U64_KEY(obs.sampleEvery)},
        {"obs.trace", BOOL_KEY(obs.traceEnabled)},
        {"obs.trace_capacity", U64_KEY(obs.traceCapacity)},
        {"ring.addr_slot_cycles", U64_KEY(ring.addrSlotCycles)},
        {"ring.snoop_latency", U64_KEY(ring.snoopLatency)},
        {"ring.hop_cycles", U64_KEY(ring.hopCycles)},
        {"ring.segment_occupancy", U64_KEY(ring.segmentOccupancy)},
        {"ring.num_stops", U64_KEY(ring.numStops)},
        {"wbht.entries", U64_KEY(policy.wbht.entries)},
        {"wbht.assoc", U64_KEY(policy.wbht.assoc)},
        {"wbht.lines_per_entry", U64_KEY(policy.wbht.linesPerEntry)},
        {"snarf.entries", U64_KEY(policy.snarf.entries)},
        {"snarf.assoc", U64_KEY(policy.snarf.assoc)},
        {"snarf.buffers", U64_KEY(policy.snarfBuffers)},
        {"retry.window", U64_KEY(policy.retry.windowCycles)},
        {"retry.threshold", U64_KEY(policy.retry.threshold)},
        {"retry.initially_active",
         BOOL_KEY(policy.retry.initiallyActive)},
        {"use_retry_switch", BOOL_KEY(policy.useRetrySwitch)},
        {"snarf_shared_victims", BOOL_KEY(policy.snarfSharedVictims)},
        {"wbht_informed_replacement",
         BOOL_KEY(policy.wbhtInformedReplacement)},
        {"warmup", BOOL_KEY(warmupPass)},
        {"reuse_tracker", BOOL_KEY(enableWbReuseTracker)},
        {"policy",
         KeyHandler{[](SystemConfig &c, const std::string &,
                       const std::string &v) {
                        const auto keep = c.policy;
                        c.policy.policy = wbPolicyFromString(v);
                        (void)keep;
                    },
                    [](const SystemConfig &c) {
                        return std::string(toString(c.policy.policy));
                    }}},
        {"snarf_insert",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) {
                        if (v == "mru")
                            c.policy.snarfInsert = InsertPos::Mru;
                        else if (v == "lru")
                            c.policy.snarfInsert = InsertPos::Lru;
                        else
                            cmp_fatal("config key '", k,
                                      "' expects mru|lru, got '", v,
                                      "'");
                    },
                    [](const SystemConfig &c) {
                        return std::string(
                            c.policy.snarfInsert == InsertPos::Mru
                                ? "mru"
                                : "lru");
                    }}},
        {"l2.repl",
         KeyHandler{[](SystemConfig &c, const std::string &,
                       const std::string &v) { c.l2.replPolicy = v; },
                    [](const SystemConfig &c) {
                        return c.l2.replPolicy;
                    }}},
        {"l3.repl",
         KeyHandler{[](SystemConfig &c, const std::string &,
                       const std::string &v) { c.l3.replPolicy = v; },
                    [](const SystemConfig &c) {
                        return c.l3.replPolicy;
                    }}},
    };
    return h;
}

#undef U64_KEY
#undef BOOL_KEY

} // namespace

void
applyConfigOption(SystemConfig &cfg, const std::string &key,
                  const std::string &value)
{
    const auto it = handlers().find(key);
    if (it == handlers().end())
        cmp_fatal("unknown config key '", key, "'");
    it->second.set(cfg, key, value);
}

void
loadConfig(SystemConfig &cfg, std::istream &is)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            cmp_fatal("config line ", lineno, " has no '=': '", line,
                      "'");
        applyConfigOption(cfg, trim(line.substr(0, eq)),
                          trim(line.substr(eq + 1)));
    }
}

void
loadConfigFile(SystemConfig &cfg, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        cmp_fatal("cannot open config file '", path, "'");
    loadConfig(cfg, is);
}

void
saveConfig(const SystemConfig &cfg, std::ostream &os)
{
    os << "# cmpcache system configuration\n";
    for (const auto &[key, handler] : handlers())
        os << key << " = " << handler.get(cfg) << "\n";
}

const std::vector<std::string> &
configKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> k;
        for (const auto &[key, handler] : handlers())
            k.push_back(key);
        return k;
    }();
    return keys;
}

} // namespace cmpcache
