#include "sim/config_io.hh"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

SimError
configError(const std::string &what)
{
    return SimError(SimErrorKind::Config, what);
}

Expected<std::uint64_t>
toU64(const std::string &key, const std::string &v)
{
    // Reject anything but plain digits up front: std::stoull would
    // happily accept "-1" (wrapping) or "12abc" (trailing garbage).
    bool digits = !v.empty();
    for (const char c : v)
        digits = digits && c >= '0' && c <= '9';
    if (digits) {
        try {
            return std::stoull(v);
        } catch (const std::exception &) {
            // fall through: out of range
        }
    }
    return configError(cstr("config key '", key,
                            "' expects an unsigned integer, got '", v,
                            "'"));
}

Expected<double>
toDouble(const std::string &key, const std::string &v)
{
    double d = 0.0;
    std::size_t used = 0;
    try {
        d = std::stod(v, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (v.empty() || used != v.size()) {
        return configError(cstr("config key '", key,
                                "' expects a number, got '", v, "'"));
    }
    return d;
}

Expected<bool>
toBool(const std::string &key, const std::string &v)
{
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    return configError(cstr("config key '", key,
                            "' expects a boolean, got '", v, "'"));
}

struct KeyHandler
{
    std::function<Expected<void>(SystemConfig &, const std::string &,
                                 const std::string &)>
        set;
    std::function<std::string(const SystemConfig &)> get;
};

#define U64_KEY(field)                                                  \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) -> Expected<void> {                    \
            const auto r = toU64(k, v);                                 \
            if (!r)                                                     \
                return r.error();                                       \
            c.field = static_cast<decltype(c.field)>(*r);               \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &c) { return cstr(c.field); }         \
    }

#define BOOL_KEY(field)                                                 \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) -> Expected<void> {                    \
            const auto r = toBool(k, v);                                \
            if (!r)                                                     \
                return r.error();                                       \
            c.field = *r;                                               \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &c) {                                 \
                return std::string(c.field ? "true" : "false");         \
            }                                                           \
    }

#define DBL_KEY(field)                                                  \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) -> Expected<void> {                    \
            const auto r = toDouble(k, v);                              \
            if (!r)                                                     \
                return r.error();                                       \
            c.field = *r;                                               \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &c) { return cstr(c.field); }         \
    }

#define STR_KEY(field)                                                  \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &,                        \
           const std::string &v) -> Expected<void> {                    \
            c.field = v;                                                \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &c) { return c.field; }               \
    }

/**
 * Canonical topology.* keys: checked setters that reject values a
 * 32-bit shape field would silently wrap, and record that the
 * canonical style is in use so mixing it with the deprecated aliases
 * below surfaces as a named validation error.
 */
#define TOPO_U32(field)                                                 \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) -> Expected<void> {                    \
            const auto r = toU64(k, v);                                 \
            if (!r)                                                     \
                return r.error();                                       \
            if (*r > 0xffffffffull) {                                   \
                return configError(cstr("config key '", k,              \
                                        "' value ", *r,                 \
                                        " overflows 32 bits"));         \
            }                                                           \
            c.topology.field =                                          \
                static_cast<decltype(c.topology.field)>(*r);            \
            c.topology.canonicalKeysUsed = true;                        \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &c) {                                 \
                /* Save the resolved shape so a config built from    */ \
                /* legacy aliases round-trips as canonical keys.     */ \
                return cstr(c.topology.resolved().field);               \
            }                                                           \
    }

/**
 * Deprecated machine-shape aliases. They live in their own map (not
 * handlers()) so saveConfig never writes them back out; parsing one
 * parks its value on the topology's legacy fields -- folded in by
 * TopologyParams::resolved() -- and warns, naming the replacement.
 */
#define LEGACY_U32(field, replacement)                                  \
    KeyHandler                                                          \
    {                                                                   \
        [](SystemConfig &c, const std::string &k,                       \
           const std::string &v) -> Expected<void> {                    \
            const auto r = toU64(k, v);                                 \
            if (!r)                                                     \
                return r.error();                                       \
            if (*r > 0xffffffffull) {                                   \
                return configError(cstr("config key '", k,              \
                                        "' value ", *r,                 \
                                        " overflows 32 bits"));         \
            }                                                           \
            warn("config key '", k, "' is deprecated; use ",            \
                 replacement);                                          \
            c.topology.field = static_cast<unsigned>(*r);               \
            return {};                                                  \
        },                                                              \
            [](const SystemConfig &) { return std::string(); }          \
    }

const std::map<std::string, KeyHandler> &
handlers()
{
    static const std::map<std::string, KeyHandler> h = {
        {"topology.cores", TOPO_U32(cores)},
        {"topology.smt", TOPO_U32(smt)},
        {"topology.l2s", TOPO_U32(l2s)},
        {"topology.l3_slices", TOPO_U32(l3Slices)},
        {"topology.rings", TOPO_U32(rings)},
        {"topology.l2_kb_per_l2", TOPO_U32(l2KbPerL2)},
        {"topology.l3_mb_per_slice", TOPO_U32(l3MbPerSlice)},
        {"topology.layout",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        RingLayout l;
                        if (!tryRingLayoutFromString(v, l)) {
                            return configError(cstr(
                                "config key '", k,
                                "' expects single_ring|dual_ring|"
                                "hier_ring, got '", v, "'"));
                        }
                        c.topology.layout = l;
                        c.topology.canonicalKeysUsed = true;
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return std::string(
                            toString(c.topology.layout));
                    }}},
        {"cpu.outstanding", U64_KEY(cpu.maxOutstanding)},
        {"cpu.blocked_retry", U64_KEY(cpu.blockedRetry)},
        {"l2.size_bytes", U64_KEY(l2.sizeBytes)},
        {"l2.assoc", U64_KEY(l2.assoc)},
        {"l2.line_size", U64_KEY(l2.lineSize)},
        {"l2.slices", U64_KEY(l2.slices)},
        {"l2.hit_latency", U64_KEY(l2.hitLatency)},
        {"l2.supply_latency", U64_KEY(l2.supplyLatency)},
        {"l2.fill_latency", U64_KEY(l2.fillLatency)},
        {"l2.mshrs", U64_KEY(l2.mshrs)},
        {"l2.wbq_depth", U64_KEY(l2.wbqDepth)},
        {"l2.retry_backoff", U64_KEY(l2.retryBackoff)},
        {"l2.clean_interventions", BOOL_KEY(l2.cleanInterventions)},
        {"l3.size_bytes", U64_KEY(l3.sizeBytes)},
        {"l3.assoc", U64_KEY(l3.assoc)},
        {"l3.line_size", U64_KEY(l3.lineSize)},
        {"l3.access_latency", U64_KEY(l3.accessLatency)},
        {"l3.bank_occupancy", U64_KEY(l3.bankOccupancy)},
        {"l3.write_occupancy", U64_KEY(l3.writeOccupancy)},
        {"l3.squash_occupancy", U64_KEY(l3.squashOccupancy)},
        {"l3.wb_queue_depth", U64_KEY(l3.wbQueueDepth)},
        {"mem.access_latency", U64_KEY(mem.accessLatency)},
        {"mem.channel_occupancy", U64_KEY(mem.channelOccupancy)},
        {"obs.sample_every", U64_KEY(obs.sampleEvery)},
        {"obs.trace", BOOL_KEY(obs.traceEnabled)},
        {"obs.trace_capacity", U64_KEY(obs.traceCapacity)},
        {"obs.ingest", BOOL_KEY(obs.ingestGauges)},
        {"arrival.rate", DBL_KEY(arrival.rate)},
        {"arrival.burst_factor", DBL_KEY(arrival.burstFactor)},
        {"arrival.burst_period", U64_KEY(arrival.burstPeriod)},
        {"arrival.seed", U64_KEY(arrival.seed)},
        {"stream.queue_capacity", U64_KEY(stream.queueCapacity)},
        {"stream.demux_capacity", U64_KEY(stream.demuxCapacity)},
        {"arrival.model",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        if (v == "closed")
                            c.arrival.model = ArrivalModel::Closed;
                        else if (v == "open")
                            c.arrival.model = ArrivalModel::Open;
                        else
                            return configError(cstr(
                                "config key '", k,
                                "' expects closed|open, got '", v,
                                "'"));
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return std::string(toString(c.arrival.model));
                    }}},
        {"stream.overflow",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        if (v == "block")
                            c.stream.overflow = OverflowPolicy::Block;
                        else if (v == "drop")
                            c.stream.overflow = OverflowPolicy::Drop;
                        else
                            return configError(cstr(
                                "config key '", k,
                                "' expects block|drop, got '", v,
                                "'"));
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return std::string(
                            c.stream.overflow == OverflowPolicy::Block
                                ? "block"
                                : "drop");
                    }}},
        {"ring.addr_slot_cycles", U64_KEY(ring.addrSlotCycles)},
        {"ring.snoop_latency", U64_KEY(ring.snoopLatency)},
        {"ring.hop_cycles", U64_KEY(ring.hopCycles)},
        {"ring.segment_occupancy", U64_KEY(ring.segmentOccupancy)},
        {"wbht.entries", U64_KEY(policy.wbht.entries)},
        {"wbht.assoc", U64_KEY(policy.wbht.assoc)},
        {"wbht.lines_per_entry", U64_KEY(policy.wbht.linesPerEntry)},
        {"snarf.entries", U64_KEY(policy.snarf.entries)},
        {"snarf.assoc", U64_KEY(policy.snarf.assoc)},
        {"snarf.buffers", U64_KEY(policy.snarfBuffers)},
        {"retry.window", U64_KEY(policy.retry.windowCycles)},
        {"retry.threshold", U64_KEY(policy.retry.threshold)},
        {"retry.initially_active",
         BOOL_KEY(policy.retry.initiallyActive)},
        {"use_retry_switch", BOOL_KEY(policy.useRetrySwitch)},
        {"snarf_shared_victims", BOOL_KEY(policy.snarfSharedVictims)},
        {"wbht_informed_replacement",
         BOOL_KEY(policy.wbhtInformedReplacement)},
        {"run.threads",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        if (v == "auto") {
                            c.runThreads =
                                SystemConfig::RunThreadsAuto;
                            return {};
                        }
                        const auto r = toU64(k, v);
                        if (!r)
                            return r.error();
                        c.runThreads = static_cast<unsigned>(*r);
                        return {};
                    },
                    [](const SystemConfig &c) {
                        if (c.runThreads
                            == SystemConfig::RunThreadsAuto)
                            return std::string("auto");
                        return cstr(c.runThreads);
                    }}},
        {"run.fastpath", BOOL_KEY(runFastpath)},
        {"obs.sched", BOOL_KEY(obs.schedGauges)},
        {"warmup", BOOL_KEY(warmupPass)},
        {"reuse_tracker", BOOL_KEY(enableWbReuseTracker)},
        {"fault.plan", STR_KEY(fault.plan)},
        {"fault.seed", U64_KEY(fault.seed)},
        {"check.oracle", BOOL_KEY(check.oracle)},
        {"check.invariants_every", U64_KEY(check.invariantsEvery)},
        {"watchdog.every", U64_KEY(watchdog.every)},
        {"watchdog.stall_checks", U64_KEY(watchdog.stallChecks)},
        {"watchdog.max_txn_age", U64_KEY(watchdog.maxTxnAge)},
        {"watchdog.wall_secs", U64_KEY(watchdog.wallSecs)},
        {"policy",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        WbPolicy p;
                        if (!tryWbPolicyFromString(v, p)) {
                            return configError(cstr(
                                "config key '", k,
                                "' expects baseline|wbht|wbht-global|"
                                "snarf|combined, got '", v, "'"));
                        }
                        c.policy.policy = p;
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return std::string(toString(c.policy.policy));
                    }}},
        {"snarf_insert",
         KeyHandler{[](SystemConfig &c, const std::string &k,
                       const std::string &v) -> Expected<void> {
                        if (v == "mru")
                            c.policy.snarfInsert = InsertPos::Mru;
                        else if (v == "lru")
                            c.policy.snarfInsert = InsertPos::Lru;
                        else
                            return configError(cstr(
                                "config key '", k,
                                "' expects mru|lru, got '", v, "'"));
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return std::string(
                            c.policy.snarfInsert == InsertPos::Mru
                                ? "mru"
                                : "lru");
                    }}},
        {"l2.repl",
         KeyHandler{[](SystemConfig &c, const std::string &,
                       const std::string &v) -> Expected<void> {
                        c.l2.replPolicy = v;
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return c.l2.replPolicy;
                    }}},
        {"l3.repl",
         KeyHandler{[](SystemConfig &c, const std::string &,
                       const std::string &v) -> Expected<void> {
                        c.l3.replPolicy = v;
                        return {};
                    },
                    [](const SystemConfig &c) {
                        return c.l3.replPolicy;
                    }}},
    };
    return h;
}

const std::map<std::string, KeyHandler> &
legacyHandlers()
{
    static const std::map<std::string, KeyHandler> h = {
        {"num_l2s", LEGACY_U32(legacyNumL2s, "topology.l2s (with "
                               "topology.cores/topology.smt)")},
        {"threads_per_l2",
         LEGACY_U32(legacyThreadsPerL2,
                    "topology.cores and topology.smt")},
        {"ring.num_stops",
         LEGACY_U32(legacyRingStops,
                    "topology.l2s (stop count is derived)")},
        {"l3.slices", LEGACY_U32(legacyL3Slices, "topology.l3_slices")},
    };
    return h;
}

#undef U64_KEY
#undef BOOL_KEY
#undef DBL_KEY
#undef STR_KEY
#undef TOPO_U32
#undef LEGACY_U32

} // namespace

Expected<void>
applyConfigOption(SystemConfig &cfg, const std::string &key,
                  const std::string &value)
{
    const auto it = handlers().find(key);
    if (it != handlers().end())
        return it->second.set(cfg, key, value);
    const auto lit = legacyHandlers().find(key);
    if (lit != legacyHandlers().end())
        return lit->second.set(cfg, key, value);
    return configError(cstr("unknown config key '", key, "'"));
}

Expected<void>
loadConfig(SystemConfig &cfg, std::istream &is)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            return configError(cstr("config line ", lineno,
                                    " has no '=': '", line, "'"));
        }
        const auto r = applyConfigOption(cfg, trim(line.substr(0, eq)),
                                         trim(line.substr(eq + 1)));
        if (!r) {
            return SimError(r.error().kind,
                            cstr("config line ", lineno, ": ",
                                 r.error().message));
        }
    }
    return {};
}

Expected<void>
loadConfigFile(SystemConfig &cfg, const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return SimError(SimErrorKind::Io,
                        cstr("cannot open config file '", path, "'"));
    }
    const auto r = loadConfig(cfg, is);
    if (!r) {
        return SimError(r.error().kind,
                        cstr(path, ": ", r.error().message));
    }
    return {};
}

void
saveConfig(const SystemConfig &cfg, std::ostream &os)
{
    os << "# cmpcache system configuration\n";
    for (const auto &[key, handler] : handlers())
        os << key << " = " << handler.get(cfg) << "\n";
}

const std::vector<std::string> &
configKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> k;
        for (const auto &[key, handler] : handlers())
            k.push_back(key);
        return k;
    }();
    return keys;
}

} // namespace cmpcache
