#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "sim/invariants.hh"
#include "sim/result_json.hh"
#include "sim/simulation.hh"
#include "stats/sink.hh"
#include "trace/workload_config.hh"
#include "trace/workloads_commercial.hh"
#include "trace/workloads_stress.hh"

namespace cmpcache
{

namespace
{

bool
contains(const std::vector<std::string> &names, const std::string &n)
{
    return std::find(names.begin(), names.end(), n) != names.end();
}

std::string
fmtSeconds(double s)
{
    char buf[32];
    if (s < 10.0)
        std::snprintf(buf, sizeof(buf), "%.2fs", s);
    else if (s < 120.0)
        std::snprintf(buf, sizeof(buf), "%.1fs", s);
    else
        std::snprintf(buf, sizeof(buf), "%.0fm%02.0fs", s / 60.0,
                      s - 60.0 * static_cast<int>(s / 60.0));
    return buf;
}

} // namespace

bool
isSweepWorkload(const std::string &name)
{
    return contains(workloads::allNames(), name)
           || contains(workloads::stressNames(), name);
}

WorkloadParams
sweepWorkloadByName(const std::string &name,
                    std::uint64_t records_per_thread,
                    std::uint64_t seed)
{
    if (contains(workloads::allNames(), name))
        return workloads::byName(name, records_per_thread, seed);
    if (contains(workloads::stressNames(), name))
        return workloads::stressByName(name, records_per_thread, seed);
    cmp_fatal("unknown sweep workload '", name,
              "' (commercial: TP, CPW2, NotesBench, Trade2; stress: "
              "uniform, streaming, pingpong, thrash, "
              "producer_consumer, migratory, false_sharing)");
}

std::string
SweepJob::label() const
{
    return cstr(workload, "/", toString(policy), "/o", outstanding);
}

std::size_t
SweepSpec::size() const
{
    return workloads.size() * policies.size() * outstanding.size();
}

void
SweepSpec::validate() const
{
    if (workloads.empty())
        cmp_fatal("sweep has no workloads");
    if (policies.empty())
        cmp_fatal("sweep has no policies");
    if (outstanding.empty())
        cmp_fatal("sweep has no outstanding-miss limits");
    if (recordsPerThread == 0)
        cmp_fatal("sweep needs recordsPerThread > 0");
    for (const auto &w : workloads) {
        if (!isSweepWorkload(w))
            cmp_fatal("unknown sweep workload '", w, "'");
    }
    for (const auto o : outstanding) {
        if (o == 0)
            cmp_fatal("outstanding-miss limit must be positive");
    }
    base.validate();
}

std::vector<SweepJob>
SweepSpec::expand() const
{
    validate();
    std::vector<SweepJob> jobs;
    jobs.reserve(size());
    for (const auto &w : workloads) {
        for (const auto p : policies) {
            for (const auto o : outstanding) {
                SweepJob job;
                job.index = static_cast<unsigned>(jobs.size());
                job.workload = w;
                job.policy = p;
                job.outstanding = o;

                job.config = base;
                job.config.policy.policy = p;
                if (p == WbPolicy::Combined) {
                    // The paper's Combined row keeps total table
                    // space constant by halving both tables.
                    job.config.policy.wbht.entries = std::max<
                        std::uint64_t>(1, base.policy.wbht.entries / 2);
                    job.config.policy.snarf.entries = std::max<
                        std::uint64_t>(1, base.policy.snarf.entries / 2);
                }
                job.config.cpu.maxOutstanding = o;

                job.params =
                    sweepWorkloadByName(w, recordsPerThread, seed);
                for (const auto &[key, value] : workloadOverrides)
                    applyWorkloadOption(job.params, key, value);
                job.params.numThreads = job.config.numThreads();
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

void
SweepProgressPrinter::jobStarted(const SweepJob &job, unsigned total)
{
    os_ << "sweep: [" << job.index + 1 << "/" << total << "] start "
        << job.label() << "\n";
    os_.flush();
}

void
SweepProgressPrinter::jobFinished(const SweepJob &job,
                                  const SweepJobResult &r,
                                  unsigned done, unsigned total,
                                  double eta_seconds)
{
    if (!r.ok) {
        os_ << "sweep: [" << done << "/" << total << "] ERROR "
            << job.label() << ": [" << r.errorKind << "] " << r.error
            << "\n";
        os_.flush();
        return;
    }
    os_ << "sweep: [" << done << "/" << total << "] done  "
        << job.label() << ": " << r.result.execTime << " cycles in "
        << fmtSeconds(r.wallSeconds) << " ("
        << static_cast<std::uint64_t>(r.cyclesPerSec) << " cyc/s, "
        << static_cast<std::uint64_t>(r.eventsPerSec) << " ev/s)";
    if (eta_seconds >= 0.0 && done < total)
        os_ << ", eta " << fmtSeconds(eta_seconds);
    os_ << "\n";
    os_.flush();
}

std::vector<SweepJobResult>
runSweep(const SweepSpec &spec, unsigned num_threads,
         SweepObserver *observer)
{
    using Clock = std::chrono::steady_clock;

    const std::vector<SweepJob> jobs = spec.expand();
    std::vector<SweepJobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const auto total = static_cast<unsigned>(jobs.size());
    unsigned pool = std::clamp(num_threads, 1u, total);
    // Nested parallelism budget: when each job runs its own parallel
    // event kernel (run.threads >= 1), shrink the job pool so the
    // product of pools stays within the requested thread count
    // instead of oversubscribing the machine.
    if (spec.base.resolvedRunThreads() > 1)
        pool = std::max(1u, num_threads / spec.base.resolvedRunThreads());

    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> done{0};
    std::mutex observer_mutex;
    const auto sweep_start = Clock::now();

    const auto worker = [&]() {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                break;
            const SweepJob &job = jobs[i];
            if (observer) {
                std::lock_guard<std::mutex> lock(observer_mutex);
                observer->jobStarted(job, total);
            }

            SweepJobResult r;
            const auto job_start = Clock::now();
            try {
                Simulation sim(job.config, job.params);
                r.result = sim.run();
                r.eventsExecuted = sim.system().totalExecuted();
                if (spec.checkCoherence)
                    r.coherenceViolations =
                        checkCoherence(sim.system()).violations;
                if (sim.sampled())
                    r.samples = sim.samples();
                if (sim.traced())
                    r.trace = sim.traceEvents();
                if (spec.statsFormat != StatsFormat::None) {
                    std::ostringstream dump;
                    switch (spec.statsFormat) {
                      case StatsFormat::Text:
                        stats::writeText(sim.system(), dump);
                        break;
                      case StatsFormat::Csv:
                        stats::writeCsv(sim.system(), dump);
                        break;
                      case StatsFormat::Json:
                        stats::writeJson(sim.system(), dump);
                        break;
                      case StatsFormat::None:
                        break;
                    }
                    r.statsDump = dump.str();
                }
            } catch (const SimException &e) {
                r.ok = false;
                r.errorKind = toString(e.error().kind);
                r.error = e.error().message;
            } catch (const std::exception &e) {
                r.ok = false;
                r.errorKind = toString(SimErrorKind::Internal);
                r.error = e.what();
            }
            if (!r.ok) {
                // Keep the grid aligned: error cells still identify
                // themselves, but carry no measurements.
                r.result = ExperimentResult{};
                r.result.workload = job.workload;
                r.result.policy = toString(job.policy);
                r.result.maxOutstanding = job.outstanding;
                r.coherenceViolations = 0;
                r.eventsExecuted = 0;
                r.samples = SampleSeries{};
                r.trace.clear();
                r.statsDump.clear();
                // Rerun identity: everything needed to replay this
                // one cell standalone, as a one-liner.
                r.seed = job.params.seed;
                r.faultPlan = job.config.fault.plan;
                r.faultSeed = job.config.fault.seed;
                // Rerun identity wants what actually ran, so "auto"
                // is recorded as its resolution on this host.
                r.runThreads = job.config.resolvedRunThreads();
                const TopologyParams shape = job.config.shape();
                r.topologySummary = cstr(
                    "cores=", shape.cores, " smt=", shape.smt,
                    " l2s=", shape.l2s, " layout=",
                    toString(shape.layout));
                std::ostringstream cmd;
                cmd << "cmpcache serve --workload=" << job.workload
                    << " --refs=" << job.params.recordsPerThread
                    << " --seed=" << job.params.seed
                    << " policy=" << toString(job.policy)
                    << " cpu.outstanding=" << job.outstanding
                    << " warmup="
                    << (job.config.warmupPass ? "true" : "false")
                    << " topology.cores=" << shape.cores
                    << " topology.smt=" << shape.smt
                    << " topology.l2s=" << shape.l2s
                    << " topology.layout=" << toString(shape.layout);
                if (shape.layout == RingLayout::HierRing)
                    cmd << " topology.rings=" << shape.rings;
                if (!job.config.fault.plan.empty()) {
                    cmd << " 'fault.plan="
                        << job.config.fault.plan
                        << "' fault.seed=" << job.config.fault.seed;
                }
                for (const auto &[k, v] : spec.workloadOverrides)
                    cmd << " " << k << "=" << v;
                r.rerun = cmd.str();
            }
            r.wallSeconds =
                std::chrono::duration<double>(Clock::now() - job_start)
                    .count();
            r.cyclesPerSec =
                r.wallSeconds > 0.0
                    ? static_cast<double>(r.result.execTime)
                          / r.wallSeconds
                    : 0.0;
            r.eventsPerSec =
                r.wallSeconds > 0.0
                    ? static_cast<double>(r.eventsExecuted)
                          / r.wallSeconds
                    : 0.0;
            results[i] = std::move(r);

            const unsigned d = ++done;
            if (observer) {
                const double elapsed =
                    std::chrono::duration<double>(Clock::now()
                                                  - sweep_start)
                        .count();
                // Completion rate already reflects the pool width.
                const double eta =
                    d > 0 ? elapsed * (total - d) / d : -1.0;
                std::lock_guard<std::mutex> lock(observer_mutex);
                observer->jobFinished(job, results[i], d, total, eta);
            }
        }
    };

    if (pool == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }
    return results;
}

namespace
{

template <typename T, typename Fn>
void
writeJsonList(std::ostream &os, const std::vector<T> &xs, Fn &&fn)
{
    os << "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i)
            os << ", ";
        fn(xs[i]);
    }
    os << "]";
}

void
writeSpecAxes(std::ostream &os, const SweepSpec &spec)
{
    os << "  \"workloads\": ";
    writeJsonList(os, spec.workloads, [&os](const std::string &w) {
        os << '"' << jsonEscape(w) << '"';
    });
    os << ",\n  \"policies\": ";
    writeJsonList(os, spec.policies, [&os](WbPolicy p) {
        os << '"' << toString(p) << '"';
    });
    os << ",\n  \"outstanding\": ";
    writeJsonList(os, spec.outstanding,
                  [&os](unsigned o) { os << o; });
    os << ",\n  \"recordsPerThread\": " << spec.recordsPerThread
       << ",\n  \"seed\": " << spec.seed;
    if (!spec.workloadOverrides.empty()) {
        os << ",\n  \"workloadOverrides\": {";
        bool first = true;
        for (const auto &[key, value] : spec.workloadOverrides) {
            os << (first ? "" : ", ") << '"' << jsonEscape(key)
               << "\": \"" << jsonEscape(value) << '"';
            first = false;
        }
        os << "}";
    }
}

} // namespace

void
writeSweepResultsJson(std::ostream &os, const SweepSpec &spec,
                      const std::vector<SweepJobResult> &results)
{
    os << "{\n  \"schema\": \"cmpcache-sweep-results-v2\",\n"
       << "  \"schemaVersion\": " << kResultSchemaVersion << ",\n";
    writeSpecAxes(os, spec);
    os << ",\n  \"checkCoherence\": "
       << (spec.checkCoherence ? "true" : "false");
    if (spec.checkCoherence) {
        os << ",\n  \"coherenceViolations\": ";
        writeJsonList(os, results, [&os](const SweepJobResult &r) {
            os << r.coherenceViolations;
        });
    }
    if (spec.base.obs.sampleEvery > 0) {
        os << ",\n  \"sampleEvery\": " << spec.base.obs.sampleEvery
           << ",\n  \"timeSeries\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            writeSampleSeriesJson(os, results[i].samples, 4);
            if (i + 1 < results.size())
                os << ",";
            os << "\n";
        }
        os << "  ]";
    }
    os << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepJobResult &r = results[i];
        if (r.ok) {
            writeResultJson(os, r.result, 4);
        } else {
            os << "    {\n"
               << "      \"schemaVersion\": " << kResultSchemaVersion
               << ",\n      \"status\": \"error\",\n"
               << "      \"errorKind\": \"" << jsonEscape(r.errorKind)
               << "\",\n      \"error\": \"" << jsonEscape(r.error)
               << "\",\n      \"workload\": \""
               << jsonEscape(r.result.workload)
               << "\",\n      \"policy\": \""
               << jsonEscape(r.result.policy)
               << "\",\n      \"maxOutstanding\": "
               << r.result.maxOutstanding
               << ",\n      \"seed\": " << r.seed
               << ",\n      \"topology\": \""
               << jsonEscape(r.topologySummary)
               << "\",\n      \"faultPlan\": \""
               << jsonEscape(r.faultPlan)
               << "\",\n      \"faultSeed\": " << r.faultSeed
               << ",\n      \"rerun\": \"" << jsonEscape(r.rerun)
               << "\"\n    }";
        }
        if (i + 1 < results.size())
            os << ",";
        os << "\n";
    }
    os << "  ]\n}\n";
}

void
writeSweepBenchJson(std::ostream &os, const SweepSpec &spec,
                    const std::vector<SweepJobResult> &results,
                    unsigned num_threads, double total_wall_seconds)
{
    std::uint64_t total_cycles = 0;
    std::uint64_t total_events = 0;
    for (const auto &r : results) {
        total_cycles += r.result.execTime;
        total_events += r.eventsExecuted;
    }

    os << "{\n  \"schema\": \"cmpcache-sweep-bench-v1\",\n";
    writeSpecAxes(os, spec);
    os << ",\n  \"threads\": " << num_threads
       << ",\n  \"jobs\": " << results.size()
       << ",\n  \"totalWallSeconds\": "
       << jsonDouble(total_wall_seconds)
       << ",\n  \"totalSimCycles\": " << total_cycles
       << ",\n  \"totalEvents\": " << total_events
       << ",\n  \"aggregateCyclesPerSec\": "
       << jsonDouble(total_wall_seconds > 0.0
                         ? static_cast<double>(total_cycles)
                               / total_wall_seconds
                         : 0.0)
       << ",\n  \"aggregateEventsPerSec\": "
       << jsonDouble(total_wall_seconds > 0.0
                         ? static_cast<double>(total_events)
                               / total_wall_seconds
                         : 0.0)
       << ",\n  \"perJob\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    {\"workload\": \""
           << jsonEscape(r.result.workload) << "\", \"policy\": \""
           << jsonEscape(r.result.policy)
           << "\", \"outstanding\": " << r.result.maxOutstanding
           << ", \"simCycles\": " << r.result.execTime
           << ", \"events\": " << r.eventsExecuted
           << ", \"wallSeconds\": " << jsonDouble(r.wallSeconds)
           << ", \"cyclesPerSec\": " << jsonDouble(r.cyclesPerSec)
           << ", \"eventsPerSec\": " << jsonDouble(r.eventsPerSec)
           << "}";
        if (i + 1 < results.size())
            os << ",";
        os << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace cmpcache
