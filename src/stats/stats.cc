#include "stats/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{
namespace stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    cmp_assert(parent != nullptr, "stat '", name_, "' needs a group");
    parent->addStat(this);
}

void
Scalar::emit(StatSink &sink, const std::string &prefix) const
{
    sink.visitScalar(prefix + name(), *this);
}

void
Average::emit(StatSink &sink, const std::string &prefix) const
{
    sink.visitAverage(prefix + name(), *this);
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     double min, double max, std::size_t buckets)
    : Stat(parent, std::move(name), std::move(desc)),
      min_(min),
      max_(max),
      bucketWidth_((max - min) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    cmp_assert(max > min && buckets > 0,
               "histogram needs max > min and at least one bucket");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketWidth_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

void
Histogram::emit(StatSink &sink, const std::string &prefix) const
{
    sink.visitHistogram(prefix + name(), *this);
}

Formula::Formula(Group *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::emit(StatSink &sink, const std::string &prefix) const
{
    sink.visitFormula(prefix + name(), *this);
}

Group::Group(std::string name) : name_(std::move(name)) {}

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    cmp_assert(parent_ != nullptr, "child group '", name_,
               "' needs a parent");
    parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    children_.erase(std::remove(children_.begin(), children_.end(), g),
                    children_.end());
}

std::string
Group::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
Group::resetStats()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *g : children_)
        g->resetStats();
}

void
Group::emitStats(StatSink &sink) const
{
    const std::string prefix = path() + ".";
    for (const auto *s : stats_)
        s->emit(sink, prefix);
    for (const auto *g : children_)
        g->emitStats(sink);
}

void
Group::forEachStat(
    const std::function<void(const std::string &, const Stat &)> &fn)
    const
{
    const std::string prefix = path() + ".";
    for (const auto *s : stats_)
        fn(prefix + s->name(), *s);
    for (const auto *g : children_)
        g->forEachStat(fn);
}

const Stat *
Group::find(const std::string &dotted) const
{
    const auto dot = dotted.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : stats_)
            if (s->name() == dotted)
                return s;
        return nullptr;
    }
    const std::string head = dotted.substr(0, dot);
    const std::string rest = dotted.substr(dot + 1);
    for (const auto *g : children_)
        if (g->name() == head)
            return g->find(rest);
    return nullptr;
}

} // namespace stats
} // namespace cmpcache
