#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace cmpcache
{
namespace stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    cmp_assert(parent != nullptr, "stat '", name_, "' needs a group");
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << " # " << desc()
       << " (samples=" << count_ << ")\n";
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     double min, double max, std::size_t buckets)
    : Stat(parent, std::move(name), std::move(desc)),
      min_(min),
      max_(max),
      bucketWidth_((max - min) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    cmp_assert(max > min && buckets > 0,
               "histogram needs max > min and at least one bucket");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketWidth_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".mean " << mean() << " # " << desc()
       << "\n";
    os << prefix << name() << ".count " << count_ << "\n";
    if (underflow_)
        os << prefix << name() << ".underflow " << underflow_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        const double lo = min_ + bucketWidth_ * static_cast<double>(i);
        os << prefix << name() << ".bucket[" << lo << ","
           << lo + bucketWidth_ << ") " << buckets_[i] << "\n";
    }
    if (overflow_)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

Formula::Formula(Group *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

Group::Group(std::string name) : name_(std::move(name)) {}

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    cmp_assert(parent_ != nullptr, "child group '", name_,
               "' needs a parent");
    parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    children_.erase(std::remove(children_.begin(), children_.end(), g),
                    children_.end());
}

std::string
Group::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
Group::resetStats()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *g : children_)
        g->resetStats();
}

void
Group::dump(std::ostream &os) const
{
    const std::string prefix = path() + ".";
    for (const auto *s : stats_)
        s->dump(os, prefix);
    for (const auto *g : children_)
        g->dump(os);
}

void
Group::dumpCsv(std::ostream &os) const
{
    // Reuse the text dump, then rewrite it: simplest correct approach
    // would duplicate formatting; instead emit name,value pairs here.
    const std::string prefix = path() + ".";
    for (const auto *s : stats_) {
        std::ostringstream tmp;
        s->dump(tmp, prefix);
        std::string line;
        std::istringstream in(tmp.str());
        while (std::getline(in, line)) {
            const auto sp = line.find(' ');
            if (sp == std::string::npos)
                continue;
            auto end = line.find(" #");
            if (end == std::string::npos)
                end = line.size();
            os << line.substr(0, sp) << ","
               << line.substr(sp + 1, end - sp - 1) << "\n";
        }
    }
    for (const auto *g : children_)
        g->dumpCsv(os);
}

namespace
{

void
jsonLines(const Group &g, std::ostream &os, bool &first)
{
    std::ostringstream csv;
    g.dumpCsv(csv);
    std::string line;
    std::istringstream in(csv.str());
    while (std::getline(in, line)) {
        const auto comma = line.rfind(',');
        if (comma == std::string::npos)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"" << line.substr(0, comma)
           << "\": " << line.substr(comma + 1);
    }
}

} // namespace

void
Group::dumpJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    jsonLines(*this, os, first);
    os << "\n}\n";
}

const Stat *
Group::find(const std::string &dotted) const
{
    const auto dot = dotted.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : stats_)
            if (s->name() == dotted)
                return s;
        return nullptr;
    }
    const std::string head = dotted.substr(0, dot);
    const std::string rest = dotted.substr(dot + 1);
    for (const auto *g : children_)
        if (g->name() == head)
            return g->find(rest);
    return nullptr;
}

} // namespace stats
} // namespace cmpcache
