#include "stats/sink.hh"

#include <sstream>

#include "common/logging.hh"

namespace cmpcache
{
namespace stats
{

namespace
{

/** Default ostream formatting, detached from the target stream's
 * state (precision, flags) so output is caller-independent. */
template <typename T>
std::string
fmt(T v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

/** "bucket[lo,hi)" suffix of one histogram bucket. */
std::string
bucketKey(const Histogram &h, std::size_t i)
{
    std::ostringstream os;
    const double lo = h.bucketLow(i);
    os << "bucket[" << lo << "," << lo + h.bucketWidth() << ")";
    return os.str();
}

} // namespace

void
TextSink::visitScalar(const std::string &path, const Scalar &s)
{
    os_ << path << " " << s.value() << " # " << s.desc() << "\n";
}

void
TextSink::visitAverage(const std::string &path, const Average &s)
{
    os_ << path << " " << fmt(s.mean()) << " # " << s.desc()
        << " (samples=" << s.count() << ")\n";
}

void
TextSink::visitHistogram(const std::string &path, const Histogram &s)
{
    os_ << path << ".mean " << fmt(s.mean()) << " # " << s.desc()
        << "\n";
    os_ << path << ".count " << s.count() << "\n";
    if (s.underflow())
        os_ << path << ".underflow " << s.underflow() << "\n";
    for (std::size_t i = 0; i < s.numBuckets(); ++i) {
        if (!s.bucketCount(i))
            continue;
        os_ << path << "." << bucketKey(s, i) << " " << s.bucketCount(i)
            << "\n";
    }
    if (s.overflow())
        os_ << path << ".overflow " << s.overflow() << "\n";
}

void
TextSink::visitFormula(const std::string &path, const Formula &s)
{
    os_ << path << " " << fmt(s.value()) << " # " << s.desc() << "\n";
}

void
CsvSink::visitScalar(const std::string &path, const Scalar &s)
{
    os_ << path << "," << s.value() << "\n";
}

void
CsvSink::visitAverage(const std::string &path, const Average &s)
{
    os_ << path << "," << fmt(s.mean()) << "\n";
}

void
CsvSink::visitHistogram(const std::string &path, const Histogram &s)
{
    os_ << path << ".mean," << fmt(s.mean()) << "\n";
    os_ << path << ".count," << s.count() << "\n";
    if (s.underflow())
        os_ << path << ".underflow," << s.underflow() << "\n";
    for (std::size_t i = 0; i < s.numBuckets(); ++i) {
        if (!s.bucketCount(i))
            continue;
        os_ << path << "." << bucketKey(s, i) << ","
            << s.bucketCount(i) << "\n";
    }
    if (s.overflow())
        os_ << path << ".overflow," << s.overflow() << "\n";
}

void
CsvSink::visitFormula(const std::string &path, const Formula &s)
{
    os_ << path << "," << fmt(s.value()) << "\n";
}

void
JsonSink::row(const std::string &key, const std::string &value)
{
    cmp_assert(!closed_, "JsonSink visited after close()");
    if (!first_)
        os_ << ",\n";
    first_ = false;
    os_ << "  \"" << key << "\": " << value;
}

void
JsonSink::close()
{
    cmp_assert(!closed_, "JsonSink closed twice");
    closed_ = true;
    os_ << "\n}\n";
}

void
JsonSink::visitScalar(const std::string &path, const Scalar &s)
{
    row(path, fmt(s.value()));
}

void
JsonSink::visitAverage(const std::string &path, const Average &s)
{
    row(path, fmt(s.mean()));
}

void
JsonSink::visitHistogram(const std::string &path, const Histogram &s)
{
    row(path + ".mean", fmt(s.mean()));
    row(path + ".count", fmt(s.count()));
    if (s.underflow())
        row(path + ".underflow", fmt(s.underflow()));
    for (std::size_t i = 0; i < s.numBuckets(); ++i) {
        if (!s.bucketCount(i))
            continue;
        row(path + "." + bucketKey(s, i), fmt(s.bucketCount(i)));
    }
    if (s.overflow())
        row(path + ".overflow", fmt(s.overflow()));
}

void
JsonSink::visitFormula(const std::string &path, const Formula &s)
{
    row(path, fmt(s.value()));
}

void
writeText(const Group &g, std::ostream &os)
{
    TextSink sink(os);
    g.emitStats(sink);
}

void
writeCsv(const Group &g, std::ostream &os)
{
    CsvSink sink(os);
    g.emitStats(sink);
}

void
writeJson(const Group &g, std::ostream &os)
{
    JsonSink sink(os);
    g.emitStats(sink);
    sink.close();
}

} // namespace stats
} // namespace cmpcache
