/**
 * @file
 * Lightweight statistics package.
 *
 * Every simulated component owns a stats::Group and registers named
 * statistics with it. Groups nest, forming a dotted hierarchy
 * (e.g. "system.l2_1.wbht.hits"). Output goes through the StatSink
 * visitor interface (src/stats/sink.hh): a Group emits every stat in
 * registration order into a sink, and the sink decides the format
 * (text, CSV, JSON, an in-memory time series, ...). Statistics can be
 * reset between warmup and measurement phases.
 */

#ifndef CMPCACHE_STATS_STATS_HH
#define CMPCACHE_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cmpcache
{
namespace stats
{

class Group;
class Scalar;
class Average;
class Histogram;
class Formula;

/**
 * Visitor receiving every statistic of a Group subtree, one typed
 * callback per stat, in registration order. @p path is the full
 * dotted path including the stat name ("system.l2_0.hits").
 *
 * Implementations: TextSink / CsvSink / JsonSink (sink.hh) for the
 * classic dump formats, SamplerSink (obs/sampler.hh) for periodic
 * time-series capture.
 */
class StatSink
{
  public:
    virtual ~StatSink() = default;

    virtual void visitScalar(const std::string &path, const Scalar &s)
        = 0;
    virtual void visitAverage(const std::string &path, const Average &s)
        = 0;
    virtual void visitHistogram(const std::string &path,
                                const Histogram &s)
        = 0;
    virtual void visitFormula(const std::string &path, const Formula &s)
        = 0;
};

/** Base class of all statistics. */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Zero the statistic (used after cache warmup). */
    virtual void reset() = 0;

    /** Visit @p sink with this stat at path @p prefix + name. */
    virtual void emit(StatSink &sink, const std::string &prefix) const
        = 0;

    /**
     * The stat's instantaneous numeric value, as captured by the
     * periodic sampler: a Scalar's count, an Average's or Histogram's
     * mean, a Formula's evaluation.
     */
    virtual double sampledValue() const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically increasing (or explicitly set) counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void set(std::uint64_t v) { value_ = v; }

    std::uint64_t value() const { return value_; }

    void reset() override { value_ = 0; }
    void emit(StatSink &sink, const std::string &prefix) const override;
    double sampledValue() const override
    {
        return static_cast<double>(value_);
    }

  private:
    std::uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void reset() override { sum_ = 0.0; count_ = 0; }
    void emit(StatSink &sink, const std::string &prefix) const override;
    double sampledValue() const override { return mean(); }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max); samples outside the range
 * land in underflow/overflow buckets.
 */
class Histogram : public Stat
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              double min, double max, std::size_t buckets);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketLow(std::size_t i) const
    {
        return min_ + bucketWidth_ * static_cast<double>(i);
    }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset() override;
    void emit(StatSink &sink, const std::string &prefix) const override;
    double sampledValue() const override { return mean(); }

  private:
    double min_;
    double max_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** A value computed from other statistics at visit time. */
class Formula : public Stat
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void reset() override {}
    void emit(StatSink &sink, const std::string &prefix) const override;
    double sampledValue() const override { return value(); }

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups.
 */
class Group
{
  public:
    /** Root group. */
    explicit Group(std::string name);
    /** Child group; registers itself with @p parent. */
    Group(Group *parent, std::string name);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Full dotted path from the root. */
    std::string path() const;

    /** Recursively zero every stat in this subtree. */
    void resetStats();

    /**
     * Visit every stat in this subtree in registration order: a
     * group's own stats first, then its children, depth first. All
     * output paths (text, CSV, JSON, sampling) build on this.
     */
    void emitStats(StatSink &sink) const;

    /**
     * Invoke @p fn for every stat in the subtree with its full dotted
     * path, in the same order as emitStats. Used by the sampler to
     * enumerate sampleable stats without formatting anything.
     */
    void forEachStat(
        const std::function<void(const std::string &, const Stat &)>
            &fn) const;

    /** Find a stat by dotted path relative to this group; null if
     * absent. */
    const Stat *find(const std::string &dotted) const;

  private:
    friend class Stat;

    void addStat(Stat *s) { stats_.push_back(s); }
    void addChild(Group *g) { children_.push_back(g); }
    void removeChild(Group *g);

    Group *parent_ = nullptr;
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

} // namespace stats
} // namespace cmpcache

#endif // CMPCACHE_STATS_STATS_HH
