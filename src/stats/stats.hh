/**
 * @file
 * Lightweight statistics package.
 *
 * Every simulated component owns a stats::Group and registers named
 * statistics with it. Groups nest, forming a dotted hierarchy
 * (e.g. "system.l2_1.wbht.hits"). Statistics can be dumped as
 * human-readable text or CSV, and reset between warmup and measurement
 * phases.
 */

#ifndef CMPCACHE_STATS_STATS_HH
#define CMPCACHE_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace cmpcache
{
namespace stats
{

class Group;

/** Base class of all statistics. */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Zero the statistic (used after cache warmup). */
    virtual void reset() = 0;

    /** Append "name value" lines to @p os, prefixed by @p prefix. */
    virtual void dump(std::ostream &os, const std::string &prefix) const
        = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically increasing (or explicitly set) counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void set(std::uint64_t v) { value_ = v; }

    std::uint64_t value() const { return value_; }

    void reset() override { value_ = 0; }
    void dump(std::ostream &os, const std::string &prefix) const override;

  private:
    std::uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void reset() override { sum_ = 0.0; count_ = 0; }
    void dump(std::ostream &os, const std::string &prefix) const override;

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [min, max); samples outside the range
 * land in underflow/overflow buckets.
 */
class Histogram : public Stat
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              double min, double max, std::size_t buckets);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset() override;
    void dump(std::ostream &os, const std::string &prefix) const override;

  private:
    double min_;
    double max_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** A value computed from other statistics at dump time. */
class Formula : public Stat
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void reset() override {}
    void dump(std::ostream &os, const std::string &prefix) const override;

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups.
 */
class Group
{
  public:
    /** Root group. */
    explicit Group(std::string name);
    /** Child group; registers itself with @p parent. */
    Group(Group *parent, std::string name);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Full dotted path from the root. */
    std::string path() const;

    /** Recursively zero every stat in this subtree. */
    void resetStats();

    /** Recursively dump "path.stat value # desc" text lines. */
    void dump(std::ostream &os) const;

    /** Recursively dump "path.stat,value" CSV lines. */
    void dumpCsv(std::ostream &os) const;

    /** Dump the subtree as a flat JSON object
     * {"path.stat": value, ...}. */
    void dumpJson(std::ostream &os) const;

    /** Find a stat by dotted path relative to this group; null if
     * absent. */
    const Stat *find(const std::string &dotted) const;

  private:
    friend class Stat;

    void addStat(Stat *s) { stats_.push_back(s); }
    void addChild(Group *g) { children_.push_back(g); }
    void removeChild(Group *g);

    Group *parent_ = nullptr;
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

} // namespace stats
} // namespace cmpcache

#endif // CMPCACHE_STATS_STATS_HH
