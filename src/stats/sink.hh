/**
 * @file
 * Concrete StatSink implementations for the classic output formats.
 *
 * A Group subtree is serialized by visiting it with a sink:
 *
 *     stats::writeText(system, std::cout);       // "path value # desc"
 *     stats::writeCsv(system, file);             // "path,value"
 *     stats::writeJson(system, file);            // {"path": value, ...}
 *
 * The sinks replace the old Group::dump / dumpCsv / dumpJson trio;
 * their output is byte-identical to what those produced. The periodic
 * time-series sampler (src/obs/sampler.hh) is just another sink.
 */

#ifndef CMPCACHE_STATS_SINK_HH
#define CMPCACHE_STATS_SINK_HH

#include <ostream>
#include <string>

#include "stats/stats.hh"

namespace cmpcache
{
namespace stats
{

/**
 * Human-readable text: "path value # desc" lines, histograms expanded
 * into .mean/.count/.bucket[lo,hi) rows.
 */
class TextSink : public StatSink
{
  public:
    explicit TextSink(std::ostream &os) : os_(os) {}

    void visitScalar(const std::string &path, const Scalar &s) override;
    void visitAverage(const std::string &path,
                      const Average &s) override;
    void visitHistogram(const std::string &path,
                        const Histogram &s) override;
    void visitFormula(const std::string &path,
                      const Formula &s) override;

  private:
    std::ostream &os_;
};

/** "path,value" rows (histograms expanded as in TextSink). */
class CsvSink : public StatSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}

    void visitScalar(const std::string &path, const Scalar &s) override;
    void visitAverage(const std::string &path,
                      const Average &s) override;
    void visitHistogram(const std::string &path,
                        const Histogram &s) override;
    void visitFormula(const std::string &path,
                      const Formula &s) override;

  private:
    std::ostream &os_;
};

/**
 * Flat JSON object {"path": value, ...}. The object is opened on
 * construction; call close() (exactly once) after the last visit to
 * balance the braces. The writeJson() helper handles this.
 */
class JsonSink : public StatSink
{
  public:
    explicit JsonSink(std::ostream &os) : os_(os) { os_ << "{\n"; }

    void close();

    void visitScalar(const std::string &path, const Scalar &s) override;
    void visitAverage(const std::string &path,
                      const Average &s) override;
    void visitHistogram(const std::string &path,
                        const Histogram &s) override;
    void visitFormula(const std::string &path,
                      const Formula &s) override;

  private:
    void row(const std::string &key, const std::string &value);

    std::ostream &os_;
    bool first_ = true;
    bool closed_ = false;
};

/** Serialize @p g as text lines ("path value # desc"). */
void writeText(const Group &g, std::ostream &os);

/** Serialize @p g as "path,value" CSV rows. */
void writeCsv(const Group &g, std::ostream &os);

/** Serialize @p g as one flat JSON object. */
void writeJson(const Group &g, std::ostream &os);

} // namespace stats
} // namespace cmpcache

#endif // CMPCACHE_STATS_SINK_HH
