#include "obs/sampler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{

Sampler::Sampler(EventQueue &eq, const stats::Group &root,
                 Tick interval)
    : eq_(eq),
      root_(root),
      interval_(interval),
      event_([this] { fire(); }, "obs-sampler", Event::StatPri)
{
    cmp_assert(interval_ > 0, "sampler interval must be positive");
    series_.interval = interval_;
}

bool
Sampler::watch(const std::string &path)
{
    if (std::find(series_.names.begin(), series_.names.end(), path)
        != series_.names.end())
        return false;
    const stats::Stat *s = root_.find(path);
    if (!s)
        return false;
    cmp_assert(series_.ticks.empty(),
               "cannot add channels once sampling has produced data");
    series_.names.push_back(path);
    series_.values.emplace_back();
    stats_.push_back(s);
    return true;
}

std::size_t
Sampler::watchMatching(const SamplerSink::Filter &filter)
{
    // Paths arrive with the root group's own name prefixed
    // ("system.ring.requests"); both the filter and the channel names
    // use root-relative paths, matching watch().
    const std::string prefix = root_.path() + ".";
    const auto strip = [&prefix](const std::string &p) {
        return p.compare(0, prefix.size(), prefix) == 0
                   ? p.substr(prefix.size())
                   : p;
    };
    SamplerSink sink(filter ? SamplerSink::Filter(
                         [&](const std::string &p) {
                             return filter(strip(p));
                         })
                            : SamplerSink::Filter{});
    root_.emitStats(sink);
    std::size_t added = 0;
    for (const auto &ch : sink.channels()) {
        std::string rel = ch.path;
        if (rel.compare(0, prefix.size(), prefix) == 0)
            rel = rel.substr(prefix.size());
        if (std::find(series_.names.begin(), series_.names.end(), rel)
            != series_.names.end())
            continue;
        cmp_assert(series_.ticks.empty(),
                   "cannot add channels once sampling has produced "
                   "data");
        series_.names.push_back(std::move(rel));
        series_.values.emplace_back();
        stats_.push_back(ch.stat);
        ++added;
    }
    return added;
}

void
Sampler::start()
{
    cmp_assert(!started_, "sampler started twice");
    started_ = true;
    eq_.schedule(&event_, eq_.curTick() + interval_);
}

void
Sampler::fire()
{
    series_.ticks.push_back(eq_.curTick());
    for (std::size_t i = 0; i < stats_.size(); ++i)
        series_.values[i].push_back(stats_[i]->sampledValue());

    // Reschedule only while the simulation itself still has work:
    // a lone self-rescheduling sampler must not keep the queue alive.
    const std::size_t pending =
        pendingProbe_ ? pendingProbe_() : eq_.numPending();
    if (pending > 0)
        eq_.schedule(&event_, eq_.curTick() + interval_);
}

} // namespace cmpcache
