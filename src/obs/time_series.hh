/**
 * @file
 * In-memory time series produced by the periodic sampler
 * (obs/sampler.hh) and its deterministic JSON block writer.
 *
 * A SampleSeries is column-oriented: one shared tick axis plus one
 * value column per watched statistic. Columns are named with the
 * stat's dotted path relative to the sampled root group
 * ("ring.pending_now").
 */

#ifndef CMPCACHE_OBS_TIME_SERIES_HH
#define CMPCACHE_OBS_TIME_SERIES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cmpcache
{

struct SampleSeries
{
    /** Sampling interval the series was captured with. */
    Tick interval = 0;

    /** Tick of each sample (shared by all channels, ascending). */
    std::vector<Tick> ticks;

    /** Channel names, in watch order. */
    std::vector<std::string> names;

    /** values[channel][sample]; every column has ticks.size()
     * entries. */
    std::vector<std::vector<double>> values;

    bool empty() const { return ticks.empty(); }
    std::size_t numSamples() const { return ticks.size(); }
    std::size_t numChannels() const { return names.size(); }
};

bool operator==(const SampleSeries &a, const SampleSeries &b);
bool operator!=(const SampleSeries &a, const SampleSeries &b);

/**
 * Write @p s as a JSON object:
 *
 *     {
 *       "sampleEvery": 5000,
 *       "ticks": [5000, 10000, ...],
 *       "series": {
 *         "ring.pending_now": [0, 3, ...],
 *         ...
 *       }
 *     }
 *
 * Deterministic (jsonDouble formatting); every line including the
 * opening brace is prefixed with @p indent spaces so the block can be
 * embedded at any nesting depth.
 */
void writeSampleSeriesJson(std::ostream &os, const SampleSeries &s,
                           unsigned indent = 0);

} // namespace cmpcache

#endif // CMPCACHE_OBS_TIME_SERIES_HH
