/**
 * @file
 * Configuration of the observability layer (docs/observability.md).
 *
 * Everything defaults to off: with sampleEvery == 0 no sampler event
 * is ever scheduled and with traceEnabled == false no recorder is
 * attached, so an unobserved simulation executes the exact same event
 * sequence (and produces byte-identical results) as one built before
 * this layer existed.
 */

#ifndef CMPCACHE_OBS_OBS_CONFIG_HH
#define CMPCACHE_OBS_OBS_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace cmpcache
{

struct ObsConfig
{
    /** Sampling interval in core cycles; 0 disables the sampler. */
    Tick sampleEvery = 0;

    /** Record coherence-transaction duration events for Chrome-trace
     * export. */
    bool traceEnabled = false;

    /** Ring-buffer capacity of the trace recorder (newest events are
     * kept once it wraps). */
    std::uint64_t traceCapacity = 65536;

    /**
     * Register live streaming-ingest gauges (ingest.* stats: queue
     * depth, ingested/dropped counts, producer waits). Off by
     * default: the gauges read wall-clock-dependent reader-thread
     * counters, so they are inherently non-deterministic and must
     * not appear in outputs that are compared byte-for-byte.
     * `cmpcache serve` turns them on.
     */
    bool ingestGauges = false;

    /**
     * Register parallel-scheduler phase gauges (sched.* stats: round
     * counts, per-phase wall seconds) and turn on their wall-clock
     * collection in the domain scheduler. Off by default for the same
     * reason as ingestGauges: wall-clock readings are non-
     * deterministic and must not appear in byte-compared outputs.
     * No-op under the serial kernel. Benches turn this on.
     */
    bool schedGauges = false;
};

} // namespace cmpcache

#endif // CMPCACHE_OBS_OBS_CONFIG_HH
