/**
 * @file
 * Bounded recording of coherence-transaction timing and export to the
 * Chrome trace-event JSON format (loadable in Perfetto / chrome://
 * tracing; see docs/observability.md for the schema).
 *
 * The recorder is a fixed-capacity ring buffer: producers (the ring
 * interconnect) call record() unconditionally and the newest
 * `capacity` events survive, so tracing a long run has bounded memory
 * no matter how hot the bus is. Events use plain fields (static
 * strings, ticks, ids) so this library depends only on common/ --
 * the interconnect links against obs, never the reverse.
 */

#ifndef CMPCACHE_OBS_TRACE_EXPORT_HH
#define CMPCACHE_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"
#include "obs/time_series.hh"

namespace cmpcache
{

/**
 * One completed span. `name`/`cat`/`result` must point to storage
 * outliving the recorder (string literals: bus-command and
 * combined-response names).
 */
struct TraceEvent
{
    const char *name = "";   // e.g. "Read", "WriteBackDirty"
    const char *cat = "";    // e.g. "coherence"
    Tick start = 0;          // span begin (transaction issue)
    Tick end = 0;            // span end (data delivered / combined)
    std::uint32_t track = 0; // originating agent (Chrome "tid")
    std::uint64_t id = 0;    // per-recorder transaction ordinal
    std::uint64_t addr = 0;  // line address
    const char *result = ""; // combined response, e.g. "Retry"
};

bool operator==(const TraceEvent &a, const TraceEvent &b);

class TraceRecorder
{
  public:
    explicit TraceRecorder(std::size_t capacity);

    /** Append @p ev, evicting the oldest event once full. The
     * recorder assigns the event's id (recording ordinal). */
    void record(TraceEvent ev);

    std::size_t capacity() const { return capacity_; }
    /** Events currently held (<= capacity). */
    std::size_t size() const;
    /** Total record() calls, including evicted events. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events lost to ring-buffer wrap-around. */
    std::uint64_t dropped() const;

    /** The surviving events, oldest first. */
    std::vector<TraceEvent> events() const;

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;
};

/**
 * Write a Chrome trace-event JSON file: one complete-event ("ph":"X")
 * per TraceEvent and, when @p series is given, one counter track
 * ("ph":"C") per sampled channel. Ticks are exported as microseconds
 * (1 tick = 1 us in the viewer's timeline). Events are emitted in
 * ascending timestamp order; ties keep recording order.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const SampleSeries *series = nullptr);

} // namespace cmpcache

#endif // CMPCACHE_OBS_TRACE_EXPORT_HH
