/**
 * @file
 * Periodic statistic sampler (docs/observability.md).
 *
 * The Sampler owns an event-kernel callback that fires every
 * `interval` ticks at Event::StatPri -- after all same-cycle model
 * activity -- and appends the instantaneous value of every watched
 * statistic to an in-memory SampleSeries. Watching resolves each
 * dotted path through Group::find() exactly once and caches the
 * resolved Stat pointer, so a sample is O(#channels) regardless of
 * the size of the stats tree.
 *
 * The sampler terminates with the simulation: after recording a
 * sample it reschedules itself only while other events are pending,
 * so it never keeps the queue alive on its own and EventQueue::run()
 * still drains.
 *
 * SamplerSink is the StatSink face of the same machinery: visiting a
 * Group subtree with it enumerates sampleable stats (optionally
 * through a path filter), which backs Sampler::watchMatching().
 */

#ifndef CMPCACHE_OBS_SAMPLER_HH
#define CMPCACHE_OBS_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "obs/time_series.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cmpcache
{

/**
 * StatSink that collects (path, stat) channels instead of formatting
 * anything. All four visit methods funnel into the same registration;
 * the optional filter decides which paths are kept.
 */
class SamplerSink : public stats::StatSink
{
  public:
    using Filter = std::function<bool(const std::string &)>;

    struct Channel
    {
        std::string path;
        const stats::Stat *stat;
    };

    explicit SamplerSink(Filter filter = {})
        : filter_(std::move(filter))
    {
    }

    void
    visitScalar(const std::string &path,
                const stats::Scalar &s) override
    {
        add(path, s);
    }
    void
    visitAverage(const std::string &path,
                 const stats::Average &s) override
    {
        add(path, s);
    }
    void
    visitHistogram(const std::string &path,
                   const stats::Histogram &s) override
    {
        add(path, s);
    }
    void
    visitFormula(const std::string &path,
                 const stats::Formula &s) override
    {
        add(path, s);
    }

    const std::vector<Channel> &channels() const { return channels_; }

  private:
    void
    add(const std::string &path, const stats::Stat &s)
    {
        if (!filter_ || filter_(path))
            channels_.push_back({path, &s});
    }

    Filter filter_;
    std::vector<Channel> channels_;
};

class Sampler
{
  public:
    /**
     * @param eq       queue driving the simulation being observed
     * @param root     group subtree the watch paths are relative to
     * @param interval sampling period in ticks (> 0)
     */
    Sampler(EventQueue &eq, const stats::Group &root, Tick interval);

    /**
     * Watch one stat by dotted path relative to the root group
     * ("ring.pending_now"). The path is resolved once, here; the
     * cached pointer makes subsequent samples O(1) per channel.
     * @return false if the path does not name a stat (or is already
     *         watched)
     */
    bool watch(const std::string &path);

    /**
     * Watch every stat in the subtree whose root-relative path the
     * filter admits (all of them with a null filter), in emission
     * order. @return the number of channels added.
     */
    std::size_t watchMatching(const SamplerSink::Filter &filter);

    /** Schedule the first sample one interval from now. */
    void start();

    /**
     * Override the "is the simulation still busy?" question that
     * gates rescheduling. The default asks the sampler's own queue;
     * multi-queue (parallel) runs install an aggregate across every
     * domain queue so the sampler neither stops early nor keeps an
     * otherwise-drained machine alive.
     */
    void setPendingProbe(std::function<std::size_t()> probe)
    {
        pendingProbe_ = std::move(probe);
    }

    std::size_t numChannels() const { return series_.names.size(); }
    bool started() const { return started_; }

    /** The captured series (grows until the simulation drains). */
    const SampleSeries &series() const { return series_; }

  private:
    void fire();

    EventQueue &eq_;
    const stats::Group &root_;
    Tick interval_;
    std::vector<const stats::Stat *> stats_;
    SampleSeries series_;
    EventFunctionWrapper event_;
    std::function<std::size_t()> pendingProbe_;
    bool started_ = false;
};

} // namespace cmpcache

#endif // CMPCACHE_OBS_SAMPLER_HH
