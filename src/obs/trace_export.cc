#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "common/logging.hh"

namespace cmpcache
{

bool
operator==(const TraceEvent &a, const TraceEvent &b)
{
    return std::strcmp(a.name, b.name) == 0
           && std::strcmp(a.cat, b.cat) == 0 && a.start == b.start
           && a.end == b.end && a.track == b.track && a.id == b.id
           && a.addr == b.addr && std::strcmp(a.result, b.result) == 0;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    cmp_assert(capacity_ > 0, "trace recorder needs capacity > 0");
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
TraceRecorder::record(TraceEvent ev)
{
    ev.id = recorded_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[static_cast<std::size_t>(ev.id % capacity_)] = ev;
    }
}

std::size_t
TraceRecorder::size() const
{
    return ring_.size();
}

std::uint64_t
TraceRecorder::dropped() const
{
    return recorded_ - ring_.size();
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (recorded_ <= capacity_) {
        out = ring_;
    } else {
        // The buffer has wrapped: the oldest surviving event sits at
        // the next write position.
        const auto head =
            static_cast<std::size_t>(recorded_ % capacity_);
        out.insert(out.end(), ring_.begin() + head, ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + head);
    }
    return out;
}

namespace
{

struct TraceLine
{
    Tick ts;
    std::string json;
};

std::string
hexAddr(std::uint64_t addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const SampleSeries *series)
{
    std::vector<TraceLine> lines;
    lines.reserve(events.size()
                  + (series ? series->numSamples()
                                  * series->numChannels()
                            : 0));

    for (const auto &ev : events) {
        std::ostringstream l;
        l << "{\"name\": \"" << jsonEscape(ev.name) << "\", \"cat\": \""
          << jsonEscape(ev.cat) << "\", \"ph\": \"X\", \"ts\": "
          << ev.start << ", \"dur\": " << ev.end - ev.start
          << ", \"pid\": 0, \"tid\": " << ev.track
          << ", \"args\": {\"addr\": \"" << hexAddr(ev.addr)
          << "\", \"txn\": " << ev.id << ", \"resp\": \""
          << jsonEscape(ev.result) << "\"}}";
        lines.push_back({ev.start, l.str()});
    }

    if (series) {
        for (std::size_t i = 0; i < series->numSamples(); ++i) {
            for (std::size_t c = 0; c < series->numChannels(); ++c) {
                std::ostringstream l;
                l << "{\"name\": \"" << jsonEscape(series->names[c])
                  << "\", \"ph\": \"C\", \"ts\": " << series->ticks[i]
                  << ", \"pid\": 0, \"args\": {\"value\": "
                  << jsonDouble(series->values[c][i]) << "}}";
                lines.push_back({series->ticks[i], l.str()});
            }
        }
    }

    std::stable_sort(lines.begin(), lines.end(),
                     [](const TraceLine &a, const TraceLine &b) {
                         return a.ts < b.ts;
                     });

    os << "{\n\"traceEvents\": [";
    for (std::size_t i = 0; i < lines.size(); ++i)
        os << (i ? ",\n" : "\n") << lines[i].json;
    os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

} // namespace cmpcache
