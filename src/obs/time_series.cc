#include "obs/time_series.hh"

#include <ostream>

#include "common/json.hh"

namespace cmpcache
{

bool
operator==(const SampleSeries &a, const SampleSeries &b)
{
    return a.interval == b.interval && a.ticks == b.ticks
           && a.names == b.names && a.values == b.values;
}

bool
operator!=(const SampleSeries &a, const SampleSeries &b)
{
    return !(a == b);
}

void
writeSampleSeriesJson(std::ostream &os, const SampleSeries &s,
                      unsigned indent)
{
    const std::string pad(indent, ' ');
    os << pad << "{\n";
    os << pad << "  \"sampleEvery\": " << s.interval << ",\n";
    os << pad << "  \"ticks\": [";
    for (std::size_t i = 0; i < s.ticks.size(); ++i)
        os << (i ? ", " : "") << s.ticks[i];
    os << "],\n";
    os << pad << "  \"series\": {";
    for (std::size_t c = 0; c < s.names.size(); ++c) {
        os << (c ? "," : "") << "\n";
        os << pad << "    \"" << jsonEscape(s.names[c]) << "\": [";
        for (std::size_t i = 0; i < s.values[c].size(); ++i)
            os << (i ? ", " : "") << jsonDouble(s.values[c][i]);
        os << "]";
    }
    if (!s.names.empty())
        os << "\n" << pad << "  ";
    os << "}\n";
    os << pad << "}";
}

} // namespace cmpcache
