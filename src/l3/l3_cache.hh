/**
 * @file
 * The off-chip L3 victim cache controller.
 *
 * The L3 absorbs both clean and dirty L2 victims (no inclusion with
 * the L2s). Its directory is on chip -- so snooping it is free -- but
 * the data arrays are off chip behind a dedicated pathway, giving the
 * 167-cycle load-to-use latency of Table 3. Key protocol behaviours
 * from the paper:
 *
 *  - a clean write back whose line is already valid is *squashed*
 *    (the data-ring transfer is cancelled);
 *  - write backs are *retried* when the incoming data queue of the
 *    target slice is full ("L3-issued retries");
 *  - the L3 retains lines it supplies to read misses (so repeated
 *    evict/miss cycles of the same line keep hitting).
 */

#ifndef CMPCACHE_L3_L3_CACHE_HH
#define CMPCACHE_L3_L3_CACHE_HH

#include <functional>
#include <string>
#include <vector>

#include "mem/tag_array.hh"
#include "ring/ring.hh"
#include "sim/sim_object.hh"

namespace cmpcache
{

struct L3Params
{
    std::uint64_t sizeBytes = 16ull * 1024 * 1024; ///< 4 slices x 4 MB
    unsigned assoc = 16;
    unsigned lineSize = 128;
    unsigned slices = 4;
    std::string replPolicy = "lru";

    Tick accessLatency = 112; ///< data-array access when supplying
    Tick bankOccupancy = 8;   ///< slice busy time per data read
    Tick writeOccupancy = 24; ///< incoming-queue residency per write
    /** Array-write time charged against the slice bank (delays
     * demand reads of the same slice). */
    Tick bankWriteOccupancy = 8;
    /** Queue/directory residency of a *squashed* write back: even a
     * redundant clean write back occupies L3 control resources while
     * it is snooped -- the pressure the WBHT exists to remove. */
    Tick squashOccupancy = 6;
    unsigned wbQueueDepth = 10;///< incoming WB queue entries per slice
};

class L3Cache : public SimObject, public BusAgent
{
  public:
    L3Cache(stats::Group *parent, EventQueue &eq, AgentId id,
            RingStop ring_stop, const L3Params &p);

    /** Dirty victims leave through the dedicated memory pathway. */
    void setMemWriteFn(std::function<void()> fn)
    {
        memWrite_ = std::move(fn);
    }

    /** Conformance oracle (check.oracle; null disables reporting).
     * The L3 reports its victim disposals: dirty castouts move the
     * shadow version to memory, dropped clean victims are accounted
     * copy losses. */
    void setConformance(VersionOracle *o) { oracle_ = o; }

    /** Oracle peek used by the WBHT scoring and Table 1. */
    bool hasLineValid(Addr addr) const
    {
        return tags_.peek(addr) != nullptr;
    }

    // BusAgent interface
    AgentId agentId() const override { return id_; }
    RingStop ringStop() const override { return stop_; }
    SnoopResponse snoop(const BusRequest &req) override;
    void observeCombined(const BusRequest &req,
                         const CombinedResult &res) override;
    Tick scheduleSupply(const BusRequest &req, Tick combine_time)
        override;
    void receiveWriteBack(const BusRequest &req) override;

    TagArray &tags() { return tags_; }
    const L3Params &params() const { return params_; }

    std::uint64_t loadLookups() const { return loadLookups_.value(); }
    std::uint64_t loadHits() const { return loadHits_.value(); }

    /**
     * "L3 Load Hit Rate" in the paper's sense: of the load misses
     * that had to be serviced from beyond the L2s (no intervention),
     * the fraction the L3 caught rather than memory.
     */
    double loadHitRate() const;
    std::uint64_t retriesIssued() const
    {
        return retriesIssued_.value();
    }
    std::uint64_t supplies() const { return supplies_.value(); }
    std::uint64_t cleanWbSeen() const { return cleanWbSeen_.value(); }
    std::uint64_t cleanWbAlreadyValid() const
    {
        return cleanWbAlreadyValid_.value();
    }

    /** Occupied incoming-queue entries across slices (watchdog
     * diagnostics). */
    unsigned incomingBusy() const
    {
        unsigned n = 0;
        for (const auto b : wbQueueBusy_)
            n += b;
        return n;
    }

  private:
    /**
     * Claim incoming-queue resources for a snooped write back.
     * @param squash short control-path occupancy only
     * @return false (and count a retry) when the slice queue is full
     */
    bool reserveQueueSlot(const BusRequest &req, bool squash);

    unsigned sliceOf(Addr line) const
    {
        return static_cast<unsigned>((line / params_.lineSize)
                                     % params_.slices);
    }

    AgentId id_;
    RingStop stop_;
    L3Params params_;
    TagArray tags_;

    std::function<void()> memWrite_;
    VersionOracle *oracle_ = nullptr;

    /** Occupied incoming-queue entries per slice. */
    std::vector<unsigned> wbQueueBusy_;
    /** Reservation made during snoop of the current transaction. */
    std::uint64_t reservedTxn_ = 0;
    unsigned reservedSlice_ = 0;
    bool haveReservation_ = false;

    std::vector<Tick> bankFree_;

    stats::Scalar loadLookups_;
    stats::Scalar loadHits_;
    stats::Scalar loadsServed_;
    stats::Scalar loadsToMemory_;
    stats::Scalar storeLookups_;
    stats::Scalar storeHits_;
    stats::Scalar supplies_;
    stats::Scalar cleanWbSeen_;
    stats::Scalar cleanWbAlreadyValid_;
    stats::Scalar dirtyWbSeen_;
    stats::Scalar wbAbsorbed_;
    stats::Scalar retriesIssued_;
    stats::Scalar invalidations_;
    stats::Scalar victimsToMemory_;
    stats::Scalar victimsDropped_;
    /** Occupied incoming-queue entries across slices (sampler
     * probe). */
    stats::Formula incomingQueueBusyNow_;
};

} // namespace cmpcache

#endif // CMPCACHE_L3_L3_CACHE_HH
