#include "l3/l3_cache.hh"

#include <algorithm>

#include "check/version_oracle.hh"
#include "coherence/protocol.hh"
#include "common/logging.hh"

namespace cmpcache
{

L3Cache::L3Cache(stats::Group *parent, EventQueue &eq, AgentId id,
                 RingStop ring_stop, const L3Params &p)
    : SimObject(parent, "l3", eq),
      id_(id),
      stop_(ring_stop),
      params_(p),
      tags_(p.sizeBytes, p.assoc, p.lineSize,
            makeReplacementPolicy(p.replPolicy)),
      wbQueueBusy_(p.slices, 0),
      bankFree_(p.slices, 0),
      loadLookups_(this, "load_lookups",
                   "directory lookups for Read requests"),
      loadHits_(this, "load_hits", "directory hits for Read requests"),
      loadsServed_(this, "loads_served",
                   "load misses supplied by the L3 data arrays"),
      loadsToMemory_(this, "loads_to_memory",
                     "load misses that fell through to memory"),
      storeLookups_(this, "store_lookups",
                    "directory lookups for ReadExcl requests"),
      storeHits_(this, "store_hits",
                 "directory hits for ReadExcl requests"),
      supplies_(this, "supplies", "lines supplied to L2 misses"),
      cleanWbSeen_(this, "clean_wb_seen",
                   "clean write backs snooped"),
      cleanWbAlreadyValid_(this, "clean_wb_already_valid",
                           "clean write backs already valid here "
                           "(Table 1 numerator)"),
      dirtyWbSeen_(this, "dirty_wb_seen",
                   "dirty write backs snooped"),
      wbAbsorbed_(this, "wb_absorbed", "write backs written into the "
                  "victim cache"),
      retriesIssued_(this, "retries_issued",
                     "write backs refused for lack of queue space"),
      invalidations_(this, "invalidations",
                     "lines invalidated by ReadExcl/Upgrade"),
      victimsToMemory_(this, "victims_to_memory",
                       "dirty L3 victims written to memory"),
      victimsDropped_(this, "victims_dropped",
                      "clean L3 victims dropped"),
      incomingQueueBusyNow_(this, "incoming_queue_busy_now",
                            "occupied incoming-queue entries across "
                            "all slices right now",
                            [this] {
                                unsigned busy = 0;
                                for (const auto b : wbQueueBusy_)
                                    busy += b;
                                return static_cast<double>(busy);
                            })
{
}

double
L3Cache::loadHitRate() const
{
    const auto n = loadsServed_.value() + loadsToMemory_.value();
    return n ? static_cast<double>(loadsServed_.value())
                   / static_cast<double>(n)
             : 0.0;
}

SnoopResponse
L3Cache::snoop(const BusRequest &req)
{
    SnoopResponse resp;
    resp.responder = id_;
    const Addr line = req.lineAddr;
    const bool present = tags_.peek(line) != nullptr;

    switch (req.cmd) {
      case BusCmd::Read:
        ++loadLookups_;
        if (present) {
            ++loadHits_;
            resp.l3Hit = true;
        }
        return resp;

      case BusCmd::ReadExcl:
        ++storeLookups_;
        if (present) {
            ++storeHits_;
            resp.l3Hit = true;
        }
        return resp;

      case BusCmd::Upgrade:
        resp.l3Hit = present;
        return resp;

      case BusCmd::WbClean:
        ++cleanWbSeen_;
        if (present) {
            ++cleanWbAlreadyValid_;
            resp.l3Hit = true; // combined response will squash
            // Even a squashed write back occupies queue/directory
            // resources while it is processed; with the queue full
            // the L3 must retry it like any other write back.
            if (!reserveQueueSlot(req, /*squash=*/true))
                resp.retry = true;
            return resp;
        }
        break;

      case BusCmd::WbDirty:
        ++dirtyWbSeen_;
        resp.l3Hit = present;
        break;
    }

    // Write back needing absorption: reserve an incoming-queue slot
    // if the target slice has room, else signal retry.
    if (reserveQueueSlot(req, /*squash=*/false))
        resp.wbAccept = true;
    else
        resp.retry = true;
    return resp;
}

bool
L3Cache::reserveQueueSlot(const BusRequest &req, bool squash)
{
    const unsigned slice = sliceOf(req.lineAddr);
    if (wbQueueBusy_[slice] >= params_.wbQueueDepth) {
        ++retriesIssued_;
        return false;
    }
    if (squash) {
        // Short control-path occupancy, consumed unconditionally.
        ++wbQueueBusy_[slice];
        eventq().at(
            curTick() + params_.squashOccupancy,
            [this, slice] {
                cmp_assert(wbQueueBusy_[slice] > 0,
                           "L3 queue underflow");
                --wbQueueBusy_[slice];
            },
            "l3-squash-release");
        return true;
    }
    // Full absorption: tentatively reserve; observeCombined consumes
    // or releases it depending on the combined outcome.
    reservedTxn_ = req.txnId;
    reservedSlice_ = slice;
    haveReservation_ = true;
    return true;
}

void
L3Cache::observeCombined(const BusRequest &req, const CombinedResult &res)
{
    // Resolve any reservation made while snooping this transaction.
    if (haveReservation_ && reservedTxn_ == req.txnId) {
        haveReservation_ = false;
        if (res.resp == CombinedResp::WbAcceptL3) {
            ++wbQueueBusy_[reservedSlice_];
        }
        // Otherwise (snarfed, squashed, retried elsewhere) the slot
        // is simply not consumed.
    }

    if (res.resp == CombinedResp::Retry)
        return;

    if (req.cmd == BusCmd::Read) {
        if (res.resp == CombinedResp::L3Data)
            ++loadsServed_;
        else if (res.resp == CombinedResp::MemData)
            ++loadsToMemory_;
    }

    // Stores gaining ownership invalidate our copy.
    if (req.cmd == BusCmd::ReadExcl || req.cmd == BusCmd::Upgrade) {
        if (TagEntry *e = tags_.lookup(req.lineAddr, false)) {
            tags_.invalidate(e);
            ++invalidations_;
        }
    }
}

Tick
L3Cache::scheduleSupply(const BusRequest &req, Tick combine_time)
{
    const unsigned slice = sliceOf(req.lineAddr);
    const Tick start = std::max(combine_time, bankFree_[slice]);
    bankFree_[slice] = start + params_.bankOccupancy;
    ++supplies_;
    // Supplying refreshes the line's recency.
    tags_.lookup(req.lineAddr, true);
    return start + params_.accessLatency;
}

void
L3Cache::receiveWriteBack(const BusRequest &req)
{
    const Addr line = req.lineAddr;
    const bool dirty = req.cmd == BusCmd::WbDirty;
    const unsigned slice = sliceOf(line);

    ++wbAbsorbed_;

    // The accepted data has landed: close the oracle's in-flight
    // window for this line (memory-supply tolerance ends here).
    if (oracle_)
        oracle_->onWbArrivedL3(line, dirty, curTick());

    // The array write competes with demand reads for the slice bank.
    bankFree_[slice] =
        std::max(bankFree_[slice], curTick()) + params_.bankWriteOccupancy;

    TagEntry *entry = tags_.lookup(line);
    if (entry) {
        // Rare: the line re-appeared (e.g. dirty WB racing an earlier
        // clean copy). Just refresh the state.
        if (dirty)
            entry->state = LineState::Modified;
    } else {
        TagEntry *victim = tags_.findVictim(line);
        if (victim->valid()) {
            if (isDirty(victim->state)) {
                ++victimsToMemory_;
                if (oracle_)
                    oracle_->onMemoryWrite(id_, victim->lineAddr,
                                           curTick());
                if (memWrite_)
                    memWrite_();
            } else {
                ++victimsDropped_;
                if (oracle_)
                    oracle_->onDropCopy(id_, victim->lineAddr,
                                        curTick());
            }
        }
        tags_.insert(victim, line,
                     dirty ? LineState::Modified : LineState::Shared);
    }

    // Free the incoming-queue slot once the array write completes.
    eventq().at(
        curTick() + params_.writeOccupancy,
        [this, slice] {
            cmp_assert(wbQueueBusy_[slice] > 0, "L3 queue underflow");
            --wbQueueBusy_[slice];
        },
        "l3-write-release");
}

} // namespace cmpcache
