#include "cpu/trace_cpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{

TraceCpu::TraceCpu(stats::Group *parent, EventQueue &eq,
                   const std::string &name, ThreadId tid,
                   const CpuParams &p, L2Cache &l2,
                   std::unique_ptr<TraceSource> source)
    : SimObject(parent, name, eq),
      tid_(tid),
      params_(p),
      l2_(l2),
      source_(std::move(source)),
      attemptEvent_([this] { attempt(); }, name + "-attempt"),
      issued_(this, "issued", "references issued to the L2"),
      hitsSeen_(this, "hits", "references that hit"),
      missesSeen_(this, "misses", "references that missed"),
      blockedSeen_(this, "blocked",
                   "attempts rejected by full L2 resources"),
      slotStalls_(this, "slot_stalls",
                  "stalls at the outstanding-miss limit")
{
    cmp_assert(params_.maxOutstanding > 0,
               "need at least one outstanding miss");
    if (params_.arrival == ArrivalModel::Open) {
        arrivalLag_.emplace(this, "arrival_lag",
                            "ticks issued after the open-loop arrival "
                            "clock");
    }
}

void
TraceCpu::startup()
{
    loadNextRecord();
    if (haveRecord_)
        scheduleAttempt(issueTime());
    else
        checkDone();
}

void
TraceCpu::loadNextRecord()
{
    if (sourceExhausted_) {
        haveRecord_ = false;
        return;
    }
    haveRecord_ = source_->next(cur_);
    if (!haveRecord_)
        sourceExhausted_ = true;
    else if (params_.arrival == ArrivalModel::Open)
        nextArrival_ += cur_.gap;
}

Tick
TraceCpu::issueTime() const
{
    // Closed loop: think time relative to now (the previous issue).
    // Open loop: the record's absolute arrival; when the thread has
    // fallen behind, scheduleAttempt clamps to "now" and the backlog
    // drains as a burst without shifting later arrivals.
    return params_.arrival == ArrivalModel::Open
               ? nextArrival_
               : curTick() + cur_.gap;
}

void
TraceCpu::scheduleAttempt(Tick when)
{
    when = std::max(when, curTick());
    if (!attemptEvent_.scheduled()) {
        eventq().schedule(&attemptEvent_, when);
    } else if (attemptEvent_.when() > when) {
        eventq().reschedule(&attemptEvent_, when);
    }
}

void
TraceCpu::attempt()
{
    if (!haveRecord_) {
        checkDone();
        return;
    }

    if (outstanding_ >= params_.maxOutstanding) {
        // Stall at the memory-pressure limit; onMissComplete wakes us.
        ++slotStalls_;
        waitingForSlot_ = true;
        return;
    }

    const auto res = l2_.access(tid_, cur_.addr, cur_.op);
    switch (res) {
      case L2Cache::AccessResult::Blocked:
        ++blockedSeen_;
        scheduleAttempt(curTick() + params_.blockedRetry);
        return;

      case L2Cache::AccessResult::Hit:
        ++hitsSeen_;
        break;

      case L2Cache::AccessResult::Miss:
        ++missesSeen_;
        ++outstanding_;
        break;
    }

    ++issued_;
    if (arrivalLag_) {
        arrivalLag_->sample(curTick() >= nextArrival_
                                ? static_cast<double>(curTick()
                                                      - nextArrival_)
                                : 0.0);
    }
    loadNextRecord();
    if (haveRecord_)
        scheduleAttempt(issueTime());
    else
        checkDone();
}

void
TraceCpu::onMissComplete()
{
    cmp_assert(outstanding_ > 0, "completion without outstanding miss");
    --outstanding_;
    if (waitingForSlot_) {
        waitingForSlot_ = false;
        scheduleAttempt(curTick());
    }
    checkDone();
}

void
TraceCpu::checkDone()
{
    if (done_ || haveRecord_ || !sourceExhausted_ || outstanding_ > 0)
        return;
    done_ = true;
    finishTick_ = curTick();
}

} // namespace cmpcache
