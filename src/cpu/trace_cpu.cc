#include "cpu/trace_cpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/domain_scheduler.hh"

namespace cmpcache
{

namespace
{

/** Strict (tick, key) order on raw event positions. */
bool
posBefore(Tick at, std::uint64_t ak, Tick bt, std::uint64_t bk)
{
    return at != bt ? at < bt : ak < bk;
}

} // namespace

TraceCpu::TraceCpu(stats::Group *parent, EventQueue &eq,
                   const std::string &name, ThreadId tid,
                   const CpuParams &p, L2Cache &l2,
                   std::unique_ptr<TraceSource> source)
    : SimObject(parent, name, eq),
      tid_(tid),
      params_(p),
      l2_(l2),
      source_(std::move(source)),
      attemptEvent_([this] { attempt(); }, name + "-attempt"),
      issued_(this, "issued", "references issued to the L2"),
      hitsSeen_(this, "hits", "references that hit"),
      missesSeen_(this, "misses", "references that missed"),
      blockedSeen_(this, "blocked",
                   "attempts rejected by full L2 resources"),
      slotStalls_(this, "slot_stalls",
                  "stalls at the outstanding-miss limit")
{
    cmp_assert(params_.maxOutstanding > 0,
               "need at least one outstanding miss");
    if (params_.arrival == ArrivalModel::Open) {
        arrivalLag_.emplace(this, "arrival_lag",
                            "ticks issued after the open-loop arrival "
                            "clock");
    }
}

void
TraceCpu::startup()
{
    loadNextRecord();
    if (haveRecord_)
        scheduleAttempt(issueTime());
    else
        checkDone();
}

void
TraceCpu::loadNextRecord()
{
    if (sourceExhausted_) {
        haveRecord_ = false;
        return;
    }
    haveRecord_ = source_->next(cur_);
    if (!haveRecord_)
        sourceExhausted_ = true;
    else if (params_.arrival == ArrivalModel::Open)
        nextArrival_ += cur_.gap;
}

Tick
TraceCpu::issueTime() const
{
    // Closed loop: think time relative to now (the previous issue).
    // Open loop: the record's absolute arrival; when the thread has
    // fallen behind, scheduleAttempt clamps to "now" and the backlog
    // drains as a burst without shifting later arrivals.
    return params_.arrival == ArrivalModel::Open
               ? nextArrival_
               : curTick() + cur_.gap;
}

void
TraceCpu::scheduleAttempt(Tick when)
{
    when = std::max(when, curTick());
    if (!attemptEvent_.scheduled()) {
        eventq().schedule(&attemptEvent_, when);
    } else if (attemptEvent_.when() > when) {
        eventq().reschedule(&attemptEvent_, when);
    }
}

void
TraceCpu::attempt()
{
    if (!haveRecord_) {
        checkDone();
        return;
    }

    if (outstanding_ >= params_.maxOutstanding) {
        // Stall at the memory-pressure limit; onMissComplete wakes us.
        ++slotStalls_;
        waitingForSlot_ = true;
        return;
    }

    const auto res = l2_.access(tid_, cur_.addr, cur_.op);
    switch (res) {
      case L2Cache::AccessResult::Blocked:
        ++blockedSeen_;
        scheduleAttempt(curTick() + params_.blockedRetry);
        return;

      case L2Cache::AccessResult::Hit:
        ++hitsSeen_;
        break;

      case L2Cache::AccessResult::Miss:
        ++missesSeen_;
        ++outstanding_;
        break;
    }

    finishRecord();
    if (!haveRecord_) {
        checkDone();
        return;
    }
    if (params_.fastpath && res == L2Cache::AccessResult::Hit) {
        batchHits();
        return;
    }
    scheduleAttempt(issueTime());
}

void
TraceCpu::finishRecord()
{
    ++issued_;
    if (arrivalLag_) {
        arrivalLag_->sample(curTick() >= nextArrival_
                                ? static_cast<double>(curTick()
                                                      - nextArrival_)
                                : 0.0);
    }
    loadNextRecord();
}

void
TraceCpu::batchHits()
{
    EventQueue &q = eventq();

    // The batch bound, fixed for the whole span because a hit
    // schedules nothing: the queue's earliest pending tick (any event
    // at or before ours -- a peer CPU, a fill, the sampler -- would
    // serially interleave; equal-tick entries always win because the
    // hypothetical attempt is bounded by the largest key its priority
    // class allows, so ties conservatively end the batch and the tick
    // bound needs no key, no bucket sort and no liveness scan), the
    // innermost run()'s tick budget, and, inside a parallel round,
    // the scheduler's cut (at or past it, cross-domain work could
    // legally observe this thread).
    const Tick head_tick = q.nextPendingTick();
    const Tick budget = q.runBudget();
    Tick cut_tick = 0;
    std::uint64_t cut_key = 0;
    const bool in_round =
        DomainScheduler::currentExecBound(cut_tick, cut_key);
    const std::uint64_t hyp_key =
        EventQueue::makeKey(Event::DefaultPri, EventQueue::SeqMask);

    // Invariant over the span: every reference hits, so outstanding_
    // never moves and the slot-stall check stays false exactly as in
    // the event-per-reference kernel.
    for (;;) {
        const Tick when = std::max(issueTime(), q.curTick());
        if (when > budget)
            break;
        if (when >= head_tick)
            break;
        if (in_round && !posBefore(when, hyp_key, cut_tick, cut_key))
            break;
        if (!l2_.wouldHit(cur_.addr, cur_.op))
            break;

        // Commit: advance the thread-local clock to the reference's
        // exact serial tick, account the attempt event the serial
        // kernel would have scheduled and popped here (inside a
        // parallel round this also keeps the birth-order bookkeeping
        // exact, so later births renumber to their serial sequences),
        // then run the full-side-effect access.
        q.syncTo(when);
        q.countVirtualExecuted();
        DomainScheduler::noteVirtualStep(q, when,
                                         attemptEvent_.priority());
        const auto res = l2_.access(tid_, cur_.addr, cur_.op);
        cmp_assert(res == L2Cache::AccessResult::Hit,
                   "wouldHit probe diverged from access");
        ++hitsSeen_;
        finishRecord();
        if (!haveRecord_) {
            checkDone();
            return;
        }
    }
    scheduleAttempt(issueTime());
}

void
TraceCpu::onMissComplete()
{
    cmp_assert(outstanding_ > 0, "completion without outstanding miss");
    --outstanding_;
    if (waitingForSlot_) {
        waitingForSlot_ = false;
        scheduleAttempt(curTick());
    }
    checkDone();
}

void
TraceCpu::checkDone()
{
    if (done_ || haveRecord_ || !sourceExhausted_ || outstanding_ > 0)
        return;
    done_ = true;
    finishTick_ = curTick();
}

} // namespace cmpcache
