/**
 * @file
 * Trace-driven hardware-thread model.
 *
 * One TraceCpu replays the L2-traffic stream of one hardware thread
 * (the paper's traces are per-thread L2 traffic captured on real
 * hardware). The single knob the paper sweeps -- "maximum outstanding
 * loads per thread" (its memory-pressure axis, 1..6) -- is the
 * outstanding-miss limit here: the thread keeps issuing references
 * (spaced by each record's compute gap) until it would exceed the
 * limit, then stalls until a miss completes.
 */

#ifndef CMPCACHE_CPU_TRACE_CPU_HH
#define CMPCACHE_CPU_TRACE_CPU_HH

#include <functional>
#include <memory>
#include <optional>

#include "l2/l2_cache.hh"
#include "sim/sim_object.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace cmpcache
{

struct CpuParams
{
    /** Max outstanding read+write misses per thread (paper: 1..6). */
    unsigned maxOutstanding = 6;
    /** Back-off when the L2 rejects an access (resources full). */
    Tick blockedRetry = 8;
    /**
     * How record gaps are interpreted (docs/serving.md). Closed loop:
     * a gap is think time after the previous issue, so a stall pushes
     * every later reference back (the batch-replay behavior). Open
     * loop: gaps accumulate on an absolute arrival clock; a stalled
     * thread falls behind the clock and catches up in a burst.
     */
    ArrivalModel arrival = ArrivalModel::Closed;
    /**
     * Batch consecutive private-cache hits without scheduling an
     * event per reference (run.fastpath; see docs/parallel.md,
     * "The hit fast path"). Bit-identical output either way.
     */
    bool fastpath = true;
};

class TraceCpu : public SimObject
{
  public:
    TraceCpu(stats::Group *parent, EventQueue &eq,
             const std::string &name, ThreadId tid, const CpuParams &p,
             L2Cache &l2, std::unique_ptr<TraceSource> source);

    /** Begin replay (schedules the first reference). */
    void startup() override;

    /** Routed from the L2: one of this thread's misses completed. */
    void onMissComplete();

    bool done() const { return done_; }
    /** Tick at which the last reference (and miss) completed. */
    Tick finishTick() const { return finishTick_; }

    std::uint64_t issued() const { return issued_.value(); }

  private:
    void scheduleAttempt(Tick when);
    void attempt();
    /**
     * The hit fast path: after an accepted reference, keep consuming
     * records in a loop -- advancing the local clock with syncTo
     * instead of an event per reference -- for as long as each next
     * reference (a) would hit with no pending coherence state,
     * (b) would be the very next event the kernel pops, and (c) sits
     * below the run budget and (in a parallel round) the scheduler's
     * cut. Every batched reference performs its full side effects at
     * its exact serial tick and counts as one virtually executed
     * event, so output -- stats, oracle stamps, event counts -- is
     * byte-identical to the unbatched kernel.
     */
    void batchHits();
    /** Post-access bookkeeping: issue count, lag, next record. */
    void finishRecord();
    void loadNextRecord();
    void checkDone();
    /** When the current record wants to issue, per arrival model. */
    Tick issueTime() const;

    ThreadId tid_;
    CpuParams params_;
    L2Cache &l2_;
    std::unique_ptr<TraceSource> source_;

    TraceRecord cur_;
    bool haveRecord_ = false;
    bool sourceExhausted_ = false;
    unsigned outstanding_ = 0;
    bool waitingForSlot_ = false;
    bool done_ = false;
    Tick finishTick_ = 0;
    /** Open loop: absolute arrival time of the current record. */
    Tick nextArrival_ = 0;

    EventFunctionWrapper attemptEvent_;

    stats::Scalar issued_;
    stats::Scalar hitsSeen_;
    stats::Scalar missesSeen_;
    stats::Scalar blockedSeen_;
    stats::Scalar slotStalls_;
    /**
     * Open loop only (absent in closed mode so closed-loop stat
     * dumps stay byte-identical): how far behind its arrival clock
     * each reference issued, in ticks.
     */
    std::optional<stats::Average> arrivalLag_;
};

} // namespace cmpcache

#endif // CMPCACHE_CPU_TRACE_CPU_HH
