#include "fault/fault_plan.hh"

#include <sstream>

namespace cmpcache
{

namespace
{

struct KindInfo
{
    FaultKind kind;
    const char *name;
    /** Default argument when the spec omits one. */
    std::uint64_t defaultArg;
    /** Argument is a permille and must stay <= 1000. */
    bool permille;
};

constexpr KindInfo kKinds[] = {
    {FaultKind::L3Retry, "l3_retry", 1000, true},
    {FaultKind::Nack, "nack", 1000, true},
    {FaultKind::Delay, "delay", 8, false},
    {FaultKind::DropSnarf, "drop_snarf", 1000, true},
    {FaultKind::DisableWbht, "disable_wbht", 0, false},
    {FaultKind::DisableSnarf, "disable_snarf", 0, false},
    {FaultKind::WbBlindSpot, "wb_blind_spot", 0, false},
};

const KindInfo *
kindByName(const std::string &name)
{
    for (const auto &k : kKinds)
        if (name == k.name)
            return &k;
    return nullptr;
}

const KindInfo &
kindInfo(FaultKind kind)
{
    for (const auto &k : kKinds)
        if (k.kind == kind)
            return k;
    return kKinds[0]; // unreachable: every kind is in the table
}

SimError
planError(std::size_t window, const std::string &what)
{
    return SimError(SimErrorKind::Config,
                    "fault plan window " + std::to_string(window + 1)
                        + ": " + what);
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty()
        || s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        out = std::stoull(s);
    } catch (...) {
        return false;
    }
    return true;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, sep))
        out.push_back(item);
    return out;
}

} // namespace

const char *
toString(FaultKind k)
{
    return kindInfo(k).name;
}

const FaultWindow *
FaultPlan::active(FaultKind kind, Tick now) const
{
    for (const auto &w : windows)
        if (w.kind == kind && w.covers(now))
            return &w;
    return nullptr;
}

Expected<FaultPlan>
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty())
        return plan;

    const auto entries = split(spec, ';');
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string &entry = entries[i];
        if (entry.empty())
            continue; // tolerate a trailing ';'
        const auto parts = split(entry, ':');
        if (parts.size() < 3 || parts.size() > 4)
            return planError(i, "expected kind:from:until[:arg], got '"
                                    + entry + "'");
        const KindInfo *info = kindByName(parts[0]);
        if (!info)
            return planError(i, "unknown fault kind '" + parts[0]
                                    + "' (expected l3_retry, nack, "
                                      "delay, drop_snarf, "
                                      "disable_wbht, disable_snarf or "
                                      "wb_blind_spot)");
        FaultWindow w;
        w.kind = info->kind;
        if (!parseU64(parts[1], w.from))
            return planError(i, "bad start cycle '" + parts[1] + "'");
        if (parts[2] == "end") {
            w.until = MaxTick;
        } else if (!parseU64(parts[2], w.until)) {
            return planError(i, "bad end cycle '" + parts[2]
                                    + "' (number or 'end')");
        }
        if (w.until <= w.from) {
            // Name the kind and bounds: a degenerate window would
            // otherwise read as "injection configured" yet never fire.
            return planError(
                i, "degenerate " + std::string(info->name) + " window ["
                       + std::to_string(w.from) + ", " + parts[2]
                       + ") is empty (until <= from), so it would "
                         "never fire");
        }
        w.arg = info->defaultArg;
        if (parts.size() == 4) {
            if (!parseU64(parts[3], w.arg))
                return planError(i, "bad argument '" + parts[3] + "'");
            if (info->permille && w.arg > 1000)
                return planError(i, "permille argument "
                                        + parts[3] + " exceeds 1000");
            if (w.kind == FaultKind::Delay && w.arg == 0)
                return planError(i, "delay needs a positive cycle "
                                    "count");
        }
        plan.windows.push_back(w);
    }
    return plan;
}

std::string
formatFaultPlan(const FaultPlan &plan)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < plan.windows.size(); ++i) {
        const FaultWindow &w = plan.windows[i];
        if (i)
            os << ";";
        os << toString(w.kind) << ":" << w.from << ":";
        if (w.until == MaxTick)
            os << "end";
        else
            os << w.until;
        if (w.arg != kindInfo(w.kind).defaultArg)
            os << ":" << w.arg;
    }
    return os.str();
}

} // namespace cmpcache
