/**
 * @file
 * The runtime side of fault injection.
 *
 * A FaultInjector owns a parsed FaultPlan plus its private seeded RNG
 * and answers point queries from the ring and the L2s ("should this
 * write back be forced to Retry right now?"). Every injected fault is
 * counted in `fault.*` stats, and an instantaneous gauge exposes the
 * number of active windows to the obs sampler.
 *
 * The injector is only constructed when a plan is configured
 * (fault.plan non-empty), so fault-free runs carry no stats group, no
 * probes and no RNG -- their output stays byte-identical to a build
 * without this subsystem.
 *
 * Determinism: all queries happen on the (single-threaded) event loop
 * in event order, so RNG consumption -- and therefore every injection
 * decision -- is a pure function of the plan, the seed and the
 * workload.
 */

#ifndef CMPCACHE_FAULT_FAULT_INJECTOR_HH
#define CMPCACHE_FAULT_FAULT_INJECTOR_HH

#include <functional>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_plan.hh"
#include "stats/stats.hh"

namespace cmpcache
{

class FaultInjector : public stats::Group
{
  public:
    FaultInjector(stats::Group *parent, const FaultPlan &plan);

    /** Let the windows_active_now gauge read the current tick. */
    void setTimeSource(std::function<Tick()> now)
    {
        timeSource_ = std::move(now);
    }

    const FaultPlan &plan() const { return plan_; }

    // --- ring-side queries (counted when they fire) ---

    /** Extra address-phase cycles for a launch at @p now (0 = none). */
    Tick launchDelay(Tick now);

    /** Force a Retry combined response for a write back at @p now?
     * Only call for write-back transactions. */
    bool forceL3Retry(Tick now);

    /** Force a Retry combined response for any transaction at
     * @p now? */
    bool nack(Tick now);

    /** Clear snarf-accept offers from the snoop responses gathered at
     * @p now? Only call for snarf-flagged write backs. */
    bool suppressSnarf(Tick now);

    // --- L2-side gates (pure; not counted, sampled via gauges) ---

    /** Are WBHT decisions forced off at @p now? */
    bool wbhtDisabled(Tick now) const
    {
        return plan_.active(FaultKind::DisableWbht, now) != nullptr;
    }

    /** Are snarf offers / hint flagging forced off at @p now? */
    bool snarfDisabled(Tick now) const
    {
        return plan_.active(FaultKind::DisableSnarf, now) != nullptr;
    }

    /**
     * TEST ONLY: hide transient write-back copies (wbq entries,
     * pending snarfs, in-flight fills) from write-back snoops at
     * @p now, re-opening the PR-1 stale-data race for the conformance
     * oracle and the chaos minimizer to catch.
     */
    bool wbBlindSpot(Tick now) const
    {
        return plan_.active(FaultKind::WbBlindSpot, now) != nullptr;
    }

  private:
    /** Window lookup + permille draw; counts into @p counter. */
    bool draw(FaultKind kind, Tick now, stats::Scalar &counter);

    FaultPlan plan_;
    Rng rng_;
    std::function<Tick()> timeSource_;

    stats::Scalar forcedL3Retries_;
    stats::Scalar nacks_;
    stats::Scalar delayedLaunches_;
    stats::Scalar delayCycles_;
    stats::Scalar snarfSuppressed_;
    stats::Formula windowsActiveNow_;
};

} // namespace cmpcache

#endif // CMPCACHE_FAULT_FAULT_INJECTOR_HH
