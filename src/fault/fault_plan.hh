/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a schedule of fault windows, each forcing one kind of
 * abnormal protocol behaviour over a cycle range. Plans are built from
 * a compact spec string (the `fault.plan` config key):
 *
 *     kind:from:until[:arg][;kind:from:until[:arg]]...
 *
 * where `until` may be `end` (open-ended) and `arg` depends on the
 * kind:
 *
 *     l3_retry      force Retry combined responses for write backs
 *                   (arg: permille of write backs affected, def. 1000)
 *     nack          force Retry for *all* transactions
 *                   (arg: permille affected, default 1000)
 *     delay         stretch the address phase of launched requests
 *                   (arg: extra cycles, default 8)
 *     drop_snarf    suppress snarf-accept offers, so no peer L2 wins
 *                   write backs (arg: permille affected, default 1000)
 *     disable_wbht  gate WBHT decisions off (table keeps learning)
 *     disable_snarf stop snarf offers *and* snarf-hint flagging
 *     wb_blind_spot TEST ONLY: re-open the PR-1 snarf/write-back race
 *                   by hiding wbq/pending-snarf/in-flight-fill copies
 *                   from write-back snoops -- a seeded stale-data bug
 *                   for exercising the conformance oracle and the
 *                   chaos minimizer (never use in experiments)
 *
 * Example -- a retry storm between cycles 0 and 2M, with snarfing
 * knocked out for the second half:
 *
 *     fault.plan = l3_retry:0:2000000;disable_snarf:1000000:2000000
 *     fault.seed = 42
 *
 * Probabilistic windows (permille < 1000) consume the injector's own
 * seeded RNG, so a given plan + seed is bit-reproducible regardless of
 * sweep thread count.
 */

#ifndef CMPCACHE_FAULT_FAULT_PLAN_HH
#define CMPCACHE_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace cmpcache
{

/** The injectable abnormal behaviours. */
enum class FaultKind
{
    L3Retry,      ///< write backs answered with Retry
    Nack,         ///< any transaction answered with Retry
    Delay,        ///< address-phase launches stretched
    DropSnarf,    ///< snarf-accept offers suppressed at combine
    DisableWbht,  ///< WBHT decisions forced inactive
    DisableSnarf, ///< snarf offers and hint flagging forced off
    WbBlindSpot,  ///< TEST ONLY: hide transient write-back copies
                  ///< from snoops (reintroduces the PR-1 race family)
};

const char *toString(FaultKind k);

/** One scheduled injection: @p kind active over [from, until). */
struct FaultWindow
{
    FaultKind kind = FaultKind::L3Retry;
    Tick from = 0;
    Tick until = MaxTick;
    /** Kind-specific argument: permille for the probabilistic kinds,
     * extra cycles for Delay; unused otherwise. */
    std::uint64_t arg = 0;

    bool covers(Tick now) const { return now >= from && now < until; }
};

/** A full injection schedule plus the RNG seed it draws from. */
struct FaultPlan
{
    std::vector<FaultWindow> windows;
    std::uint64_t seed = 1;

    bool empty() const { return windows.empty(); }

    /** First window of @p kind covering @p now, or null. */
    const FaultWindow *active(FaultKind kind, Tick now) const;
};

/**
 * Parse a plan spec string (see the file comment for the grammar).
 * An empty spec yields an empty plan. Errors name the offending
 * window so config-validation messages stay actionable.
 */
Expected<FaultPlan> parseFaultPlan(const std::string &spec);

/** Inverse of parseFaultPlan (round-trippable, for saveConfig). */
std::string formatFaultPlan(const FaultPlan &plan);

/** The `fault.*` slice of SystemConfig. Faults are fully inert --
 * no stats group, no probes, no RNG -- until a plan is set. */
struct FaultConfig
{
    /** Plan spec string; empty = fault injection disabled. */
    std::string plan;
    /** Seed for the injector's private RNG. */
    std::uint64_t seed = 1;

    bool enabled() const { return !plan.empty(); }
};

} // namespace cmpcache

#endif // CMPCACHE_FAULT_FAULT_PLAN_HH
