#include "fault/fault_injector.hh"

namespace cmpcache
{

FaultInjector::FaultInjector(stats::Group *parent,
                             const FaultPlan &plan)
    : stats::Group(parent, "fault"),
      plan_(plan),
      rng_(plan.seed),
      forcedL3Retries_(this, "forced_l3_retries",
                       "write backs forced to a Retry response"),
      nacks_(this, "nacks", "transactions NACKed (forced Retry)"),
      delayedLaunches_(this, "delayed_launches",
                       "address-ring launches stretched by a delay "
                       "window"),
      delayCycles_(this, "delay_cycles",
                   "total extra address-phase cycles injected"),
      snarfSuppressed_(this, "snarf_suppressed",
                       "write backs whose snarf offers were cleared"),
      windowsActiveNow_(this, "windows_active_now",
                        "fault windows covering the current cycle",
                        [this] {
                            if (!timeSource_)
                                return 0.0;
                            const Tick now = timeSource_();
                            double n = 0.0;
                            for (const auto &w : plan_.windows)
                                n += w.covers(now) ? 1.0 : 0.0;
                            return n;
                        })
{
}

bool
FaultInjector::draw(FaultKind kind, Tick now, stats::Scalar &counter)
{
    const FaultWindow *w = plan_.active(kind, now);
    if (!w)
        return false;
    if (w->arg < 1000 && rng_.below(1000) >= w->arg)
        return false;
    ++counter;
    return true;
}

Tick
FaultInjector::launchDelay(Tick now)
{
    const FaultWindow *w = plan_.active(FaultKind::Delay, now);
    if (!w)
        return 0;
    ++delayedLaunches_;
    delayCycles_ += w->arg;
    return static_cast<Tick>(w->arg);
}

bool
FaultInjector::forceL3Retry(Tick now)
{
    return draw(FaultKind::L3Retry, now, forcedL3Retries_);
}

bool
FaultInjector::nack(Tick now)
{
    return draw(FaultKind::Nack, now, nacks_);
}

bool
FaultInjector::suppressSnarf(Tick now)
{
    return draw(FaultKind::DropSnarf, now, snarfSuppressed_);
}

} // namespace cmpcache
