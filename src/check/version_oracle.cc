#include "check/version_oracle.hh"

#include <algorithm>
#include <sstream>

#include "common/error.hh"

namespace cmpcache
{

VersionOracle::Holder *
VersionOracle::find(LineShadow &s, AgentId agent)
{
    for (auto &h : s.holders)
        if (h.agent == agent)
            return &h;
    return nullptr;
}

void
VersionOracle::setHolder(LineShadow &s, AgentId agent,
                         std::uint64_t version, bool dirty)
{
    if (Holder *h = find(s, agent)) {
        h->version = version;
        h->dirty = dirty;
        return;
    }
    s.holders.push_back(Holder{agent, version, dirty});
}

bool
VersionOracle::eraseHolder(LineShadow &s, AgentId agent, Holder &out)
{
    for (auto it = s.holders.begin(); it != s.holders.end(); ++it) {
        if (it->agent == agent) {
            out = *it;
            s.holders.erase(it);
            return true;
        }
    }
    return false;
}

bool
VersionOracle::anyAt(const LineShadow &s, std::uint64_t version) const
{
    for (const auto &h : s.holders)
        if (h.version == version)
            return true;
    return false;
}

bool
VersionOracle::anyDirtyAt(const LineShadow &s,
                          std::uint64_t version) const
{
    for (const auto &h : s.holders)
        if (h.dirty && h.version == version)
            return true;
    return false;
}

std::uint64_t
VersionOracle::maxAvailable(const LineShadow &s) const
{
    std::uint64_t best = s.mem;
    for (const auto &h : s.holders)
        best = std::max(best, h.version);
    return best;
}

void
VersionOracle::reconcileAccountedDrop(LineShadow &s,
                                      const Holder &dropped)
{
    if (dropped.version != s.committed)
        return;
    if (!anyAt(s, s.committed) && s.mem != s.committed) {
        // The last copy of the newest version is gone by an accounted
        // loss: the machine can only ever serve an older version
        // again, so the shadow model degrades with it.
        s.committed = maxAvailable(s);
        s.lossAccounted = true;
        ++reconciled_;
        return;
    }
    if (dropped.dirty && !anyDirtyAt(s, s.committed)
        && s.mem != s.committed) {
        // Clean equivalents survive, but nobody carries write-back
        // responsibility for them any more: if they too get dropped
        // later (legal for clean copies), that is this loss's fault.
        s.lossAccounted = true;
        ++reconciled_;
    }
}

void
VersionOracle::raise(const LineShadow &s, Tick now, Addr line,
                     AgentId agent, std::uint64_t expected,
                     std::uint64_t observed, const std::string &what)
{
    if (s.tainted || violation_.armed)
        return;
    std::ostringstream os;
    os << "coherence conformance violation at tick " << now << ": "
       << what << ", line 0x" << std::hex << line << std::dec
       << ", agent " << static_cast<unsigned>(agent)
       << ", expected version " << expected << ", observed version "
       << observed;
    violation_.armed = true;
    violation_.message = os.str();
}

void
VersionOracle::validateSupplier(LineShadow &s, Tick now, Addr line,
                                AgentId agent, const char *who)
{
    ++checked_;
    Holder *h = find(s, agent);
    if (!h) {
        raise(s, now, line, agent,
              s.committed, 0,
              std::string(who) + " chosen as data source but holds no "
              "shadow copy");
        return;
    }
    // An accounted loss already degraded this line (write-back
    // responsibility for the newest version was deliberately dropped):
    // downstream stale supplies are that loss's fault, not a new bug.
    if (h->version != s.committed && !s.lossAccounted)
        raise(s, now, line, agent, s.committed, h->version,
              std::string(who) + " supplies stale data");
}

void
VersionOracle::onStore(AgentId agent, Addr line, Tick now)
{
    std::lock_guard<std::mutex> lock(mu_);
    LineShadow &s = shadow(line);
    Holder *h = find(s, agent);
    if (!h) {
        raise(s, now, line, agent, s.committed, 0,
              "store committed at an agent with no shadow copy");
    } else if (h->version != s.committed && !s.lossAccounted
               && !(h->dirty && anyDirtyAt(s, s.committed))) {
        // Tolerated when this dirty copy is a covered duplicate: the
        // architected snarf-after-refetch window can leave two live
        // dirty lineages of one line (the snarf winner and the
        // refetching issuer), and whichever stores later commits on
        // the one that briefly fell behind. As long as a dirty holder
        // covers the newest version no data is lost; the store folds
        // the lineages back into a single newest version below.
        raise(s, now, line, agent, s.committed, h->version,
              "store committed on a stale copy");
    }
    ++s.committed;
    setHolder(s, agent, s.committed, true);
    ++stamped_;
}

void
VersionOracle::onSeedCopy(AgentId agent, Addr line, bool dirty)
{
    std::lock_guard<std::mutex> lock(mu_);
    setHolder(shadow(line), agent, 0, dirty);
}

void
VersionOracle::sealSeeding()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &kv : lines_) {
        unsigned l2_holders = 0;
        for (const auto &h : kv.second.holders)
            if (h.agent != l3Agent_)
                ++l2_holders;
        if (l2_holders >= 2) {
            kv.second.tainted = true;
            ++tainted_;
        }
    }
}

void
VersionOracle::onDropCopy(AgentId agent, Addr line, Tick now)
{
    (void)now;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    Holder dropped;
    if (eraseHolder(it->second, agent, dropped))
        reconcileAccountedDrop(it->second, dropped);
}

void
VersionOracle::onLocalSquash(AgentId agent, Addr line, Tick now)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    LineShadow &s = it->second;
    Holder dropped;
    if (!eraseHolder(s, agent, dropped))
        return;
    if (dropped.version == s.committed && !anyAt(s, s.committed)
        && s.mem != s.committed) {
        if (s.lossAccounted) {
            // Downstream effect of an earlier accounted loss.
            s.committed = maxAvailable(s);
            ++reconciled_;
        } else {
            raise(s, now, line, agent, s.committed, dropped.version,
                  "squashed write back dropped the only copy of the "
                  "newest version");
        }
    }
}

void
VersionOracle::onWbArrivedL3(Addr line, bool dirty, Tick now)
{
    (void)now;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    LineShadow &s = it->second;
    if (s.l3Inflight > 0)
        --s.l3Inflight;
    // An invalidation may have overtaken the delivery; the machine
    // installs the copy regardless, so the shadow must track it (at
    // the committed version -- the lineage convention for the
    // architected windows).
    if (Holder *l3 = find(s, l3Agent_))
        l3->dirty = l3->dirty || dirty;
    else
        setHolder(s, l3Agent_, s.committed, dirty);
}

void
VersionOracle::onMemoryWrite(AgentId l3_agent, Addr line, Tick now)
{
    (void)now;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    Holder dropped;
    if (eraseHolder(it->second, l3_agent, dropped))
        it->second.mem = std::max(it->second.mem, dropped.version);
}

void
VersionOracle::dropOthers(LineShadow &s, AgentId keep)
{
    // Invalidations broadcast by an effective ReadExcl / Upgrade.
    // Set the survivor up first so reconciliation sees it.
    for (std::size_t i = 0; i < s.holders.size();) {
        if (s.holders[i].agent == keep) {
            ++i;
            continue;
        }
        const Holder dropped = s.holders[i];
        s.holders.erase(s.holders.begin()
                        + static_cast<std::ptrdiff_t>(i));
        reconcileAccountedDrop(s, dropped);
    }
}

void
VersionOracle::applyFill(LineShadow &s, const BusRequest &req)
{
    const bool store_intent = req.cmd != BusCmd::Read;
    if (Holder *h = find(s, req.requester)) {
        // The requester already tracks a copy (self-race: the line is
        // parked in its own write-back queue). Keep the newer version
        // and its write-back responsibility.
        h->version = std::max(h->version, s.committed);
        h->dirty = h->dirty || store_intent;
        return;
    }
    setHolder(s, req.requester, s.committed, store_intent);
}

void
VersionOracle::onCombined(const BusRequest &req,
                          const CombinedResult &res, Tick now)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        const Addr line = req.lineAddr;
        LineShadow &s = shadow(line);

        // An L2 can legitimately demand-miss a line still parked in
        // its own write-back queue and be served older data by the
        // L3 or memory -- the newest version never left the
        // requester, so that stale supply is the machine's accepted
        // self-race, not a conformance bug.
        const Holder *rh = find(s, req.requester);
        const bool self_race = rh && rh->version == s.committed;

        switch (res.resp) {
          case CombinedResp::Retry:
            break;

          case CombinedResp::L2Data:
            if (!self_race)
                validateSupplier(s, now, line, res.source, "peer L2");
            else
                ++checked_;
            applyFill(s, req);
            if (req.cmd == BusCmd::ReadExcl)
                dropOthers(s, req.requester);
            break;

          case CombinedResp::L3Data:
            if (!self_race)
                validateSupplier(s, now, line, l3Agent_, "L3");
            else
                ++checked_;
            applyFill(s, req);
            if (req.cmd == BusCmd::ReadExcl)
                dropOthers(s, req.requester);
            break;

          case CombinedResp::MemData:
            ++checked_;
            // Tolerated while an accepted write back's data is still
            // crossing the data ring to the L3 (s.l3Inflight): the
            // machine's L3 cannot snoop-hit or supply it yet, so
            // memory is its only source -- an architected window.
            if (!self_race && s.l3Inflight == 0
                && s.mem != s.committed && !s.lossAccounted)
                raise(s, now, line, req.requester, s.committed, s.mem,
                      "memory supplies stale data");
            applyFill(s, req);
            if (req.cmd == BusCmd::ReadExcl)
                dropOthers(s, req.requester);
            break;

          case CombinedResp::Upgraded: {
            ++checked_;
            // Tolerant when the requester's entry is gone: the L2
            // notices the lost copy at observe time and refetches
            // with ReadExcl instead of writing.
            if (Holder *h = find(s, req.requester)) {
                if (h->version != s.committed && !s.lossAccounted)
                    raise(s, now, line, req.requester, s.committed,
                          h->version,
                          "upgrade granted on a stale copy");
                h->dirty = true;
            }
            dropOthers(s, req.requester);
            break;
          }

          case CombinedResp::WbAcceptL3: {
            ++checked_;
            Holder *h = find(s, req.requester);
            if (!h) {
                raise(s, now, line, req.requester, s.committed, 0,
                      "write back from an agent with no shadow copy");
                break;
            }
            // Only a *dirty* write back asserts "this is the newest
            // data": a clean one can legally carry an older version
            // (a stale copy created by the architected snarf-after-
            // refetch window being cycled back out). And even a dirty
            // one is tolerated while another dirty holder still
            // covers the newest version -- snarfing an own write back
            // that raced the issuer's refetch duplicates the dirty
            // copy, and the duplicate goes stale at the next silent
            // store. Stale copies are tracked at their true version
            // and flagged the moment they actually supply a demand
            // request.
            if (req.cmd == BusCmd::WbDirty
                && h->version != s.committed && !s.lossAccounted
                && !anyDirtyAt(s, s.committed))
                raise(s, now, line, req.requester, s.committed,
                      h->version, "write back carries stale data");
            // The version transfers to the L3; whether the issuer
            // keeps a copy is its own call (it may have refetched the
            // line while the write back waited), reported via
            // onDropCopy / onLocalSquash from the issuer itself.
            const std::uint64_t v = h->version;
            Holder *l3 = find(s, l3Agent_);
            const bool dirty =
                req.cmd == BusCmd::WbDirty || (l3 && l3->dirty);
            setHolder(s, l3Agent_, l3 ? std::max(l3->version, v) : v,
                      dirty);
            // The data still has to cross the data ring; until
            // onWbArrivedL3 the machine's L3 cannot serve it.
            ++s.l3Inflight;
            break;
          }

          case CombinedResp::WbSnarfed: {
            ++checked_;
            Holder *h = find(s, req.requester);
            if (!h) {
                raise(s, now, line, req.requester, s.committed, 0,
                      "snarfed write back from an agent with no "
                      "shadow copy");
                break;
            }
            // Same rules as WbAcceptL3: a snarfed clean write back may
            // legally move an architected-stale copy between caches,
            // and a stale dirty one is covered while another dirty
            // holder keeps the newest version; the snarfer is tracked
            // at the true (possibly old) version so a later stale
            // supply flags.
            if (req.cmd == BusCmd::WbDirty
                && h->version != s.committed && !s.lossAccounted
                && !anyDirtyAt(s, s.committed))
                raise(s, now, line, req.requester, s.committed,
                      h->version, "snarfed write back carries stale "
                      "data");
            setHolder(s, res.source, h->version,
                      req.cmd == BusCmd::WbDirty);
            break;
          }

          case CombinedResp::WbSquashed:
            // The squash drops the issuer's queued copy; the issuer
            // reports it via onLocalSquash (which flags if nothing
            // newer survives) once it knows whether its tags still
            // hold the line.
            ++checked_;
            break;
        }
    }
    throwIfViolated();
}

void
VersionOracle::throwIfViolated()
{
    std::string message;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!violation_.armed)
            return;
        message = violation_.message;
        // Disarm so a handler inspecting the system afterwards does
        // not re-trip on every later serial point.
        violation_.armed = false;
    }
    if (snapshot_)
        message += "\n" + snapshot_();
    throw SimException(SimError(SimErrorKind::Conformance, message));
}

bool
VersionOracle::violated() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return violation_.armed;
}

std::string
VersionOracle::violationMessage() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return violation_.message;
}

} // namespace cmpcache
