/**
 * @file
 * Seeded chaos-fuzzing driver for the coherence protocol
 * (`cmpcache chaos`; docs/robustness.md).
 *
 * Each sample draws an adversarial configuration from a deterministic
 * RNG stream -- a sharing-heavy stress workload (producer_consumer,
 * migratory, false_sharing, pingpong), a machine topology, an event-
 * kernel thread count and a benign fault-injection plan (retry
 * storms, delays, snarf suppression) -- and runs it with the full
 * conformance stack forced on: the version oracle validates every
 * data delivery and a periodic online sweep re-checks the structural
 * coherence invariants mid-run.
 *
 * The first failing sample is minimized into a self-contained
 * reproducer: the interleaved trace is delta-debugged (ddmin) down to
 * the fewest records that still fail, the fault plan is pruned and
 * its windows tightened, and the result is written as a trace file +
 * config file + one-line rerun command. A failure found on a laptop
 * at 2 a.m. becomes a deterministic regression test by breakfast.
 */

#ifndef CMPCACHE_CHECK_CHAOS_HH
#define CMPCACHE_CHECK_CHAOS_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cmpcache
{

struct ChaosOptions
{
    /** Master seed; every sample derives its own RNG stream. */
    std::uint64_t seed = 1;
    /** Samples to draw (sampling stops at the first failure). */
    unsigned samples = 16;
    /** References per hardware thread per sample. */
    std::uint64_t recordsPerThread = 1200;
    /** Wall-clock budget in seconds over sampling AND minimization;
     * 0 = unlimited. Minimization returns its best-so-far when the
     * box closes. */
    double timeBoxSecs = 0.0;
    /** Randomize benign fault windows into the samples. */
    bool withFaults = true;
    /** Extra fault-plan spec appended to every sample verbatim. The
     * forced-failure smoke test injects `wb_blind_spot:...` here. */
    std::string extraFaultPlan;
    /** Minimize the first failure into a reproducer bundle. */
    bool minimize = true;
    /** ddmin stops early once the trace is this small. */
    std::size_t minimizeTargetRecords = 200;
    /** Cap on minimization re-runs (each is a full simulation). */
    unsigned minimizeMaxRuns = 400;
    /** Directory for the reproducer bundle (created if missing). */
    std::string reproDir = "chaos-repro";
};

/** What a chaos run found; returned by runChaos for the CLI/tests. */
struct ChaosReport
{
    unsigned samplesRun = 0;
    bool failed = false;

    /** Filled when failed: the failing sample. */
    std::string failureKind;    ///< SimErrorKind name
    std::string failureMessage; ///< the structured error text
    std::string sampleSummary;  ///< workload + machine + fault plan
    std::uint64_t failingSeed = 0;

    /** Filled when a reproducer was minimized and written. */
    bool reproWritten = false;
    std::size_t originalRecords = 0;
    std::size_t minimizedRecords = 0;
    std::string minimizedFaultPlan;
    std::string reproTracePath;
    std::string reproConfigPath;
    /** One line: re-run the exact failure from a shell. */
    std::string rerunCommand;
};

/**
 * Run the chaos sweep. Progress and findings go to @p log (one line
 * per sample/minimization round); the returned report carries
 * everything the caller needs for exit codes and assertions.
 */
ChaosReport runChaos(const ChaosOptions &opts, std::ostream &log);

} // namespace cmpcache

#endif // CMPCACHE_CHECK_CHAOS_HH
