#include "check/chaos.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "fault/fault_plan.hh"
#include "sim/config_io.hh"
#include "sim/simulation.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "trace/workloads_stress.hh"

namespace cmpcache
{

namespace
{

/** Wall-clock budget shared by sampling and minimization. */
class Deadline
{
  public:
    explicit Deadline(double secs)
        : bounded_(secs > 0.0),
          until_(std::chrono::steady_clock::now()
                 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         secs > 0.0 ? secs : 0.0)))
    {
    }

    bool expired() const
    {
        return bounded_
               && std::chrono::steady_clock::now() >= until_;
    }

  private:
    bool bounded_;
    std::chrono::steady_clock::time_point until_;
};

/** One drawn point of the chaos sample space. */
struct Sample
{
    SystemConfig cfg;
    WorkloadParams workload;
    std::uint64_t seed = 0;
    std::string summary;
};

struct RunOutcome
{
    bool failed = false;
    SimErrorKind kind = SimErrorKind::Internal;
    std::string message;
};

/**
 * Config-shaped errors are bugs in the sample space itself, not
 * findings; let them escape to the CLI as kind Config.
 */
bool
isFinding(SimErrorKind kind)
{
    return kind != SimErrorKind::Config && kind != SimErrorKind::Io;
}

RunOutcome
runWorkload(const SystemConfig &cfg, const WorkloadParams &wl)
{
    try {
        Simulation sim(cfg, wl);
        sim.run();
    } catch (const SimException &e) {
        if (!isFinding(e.error().kind))
            throw;
        return {true, e.error().kind, e.error().message};
    }
    return {};
}

RunOutcome
runTrace(const SystemConfig &cfg,
         const std::vector<TraceRecord> &records)
{
    try {
        Simulation sim(cfg,
                       splitByThread(records, cfg.numThreads()),
                       "chaos-repro");
        sim.run();
    } catch (const SimException &e) {
        if (!isFinding(e.error().kind))
            throw;
        return {true, e.error().kind, e.error().message};
    }
    return {};
}

/** Benign (non-test-only) fault kinds the sampler may inject. */
std::string
randomFaultWindows(Rng &rng)
{
    const unsigned count = static_cast<unsigned>(rng.below(3));
    std::string spec;
    for (unsigned i = 0; i < count; ++i) {
        const Tick from = rng.below(200000);
        const Tick until = from + 20000 + rng.below(180000);
        std::ostringstream w;
        switch (rng.below(6)) {
          case 0:
            w << "l3_retry:" << from << ":" << until << ":"
              << rng.inRange(100, 400);
            break;
          case 1:
            w << "nack:" << from << ":" << until << ":"
              << rng.inRange(50, 250);
            break;
          case 2:
            w << "delay:" << from << ":" << until << ":"
              << rng.inRange(2, 12);
            break;
          case 3:
            w << "drop_snarf:" << from << ":" << until << ":"
              << rng.inRange(200, 800);
            break;
          case 4:
            w << "disable_wbht:" << from << ":" << until;
            break;
          default:
            w << "disable_snarf:" << from << ":" << until;
            break;
        }
        if (!spec.empty())
            spec += ";";
        spec += w.str();
    }
    return spec;
}

Sample
drawSample(const ChaosOptions &opts, unsigned index)
{
    // splitmix-style per-sample stream: nearby master seeds and
    // sample indices land far apart.
    Rng rng(opts.seed * 0x9e3779b97f4a7c15ull
            + (index + 1) * 0xbf58476d1ce4e5b9ull);

    Sample s;
    s.seed = rng.next() | 1;

    // Machine shape: small enough to run thousands of samples, varied
    // enough to cover every interconnect layout and the thread-count
    // dependent collector paths.
    switch (rng.below(4)) {
      case 0:
        s.cfg.topology.cores = 2;
        s.cfg.topology.l2s = 2;
        break;
      case 1:
        s.cfg.topology.cores = 4;
        s.cfg.topology.l2s = 4;
        break;
      case 2:
        s.cfg.topology.cores = 4;
        s.cfg.topology.l2s = 4;
        s.cfg.topology.layout = RingLayout::DualRing;
        break;
      default:
        s.cfg.topology.cores = 4;
        s.cfg.topology.l2s = 4;
        s.cfg.topology.layout = RingLayout::HierRing;
        s.cfg.topology.rings = 2;
        break;
    }
    s.cfg.topology.smt = 2;

    static const unsigned kRunThreads[] = {0, 2, 4};
    s.cfg.runThreads = kRunThreads[rng.below(3)];

    // The full conformance stack, always on; chaos runs start cold
    // (warmup would taint multi-holder lines out of oracle coverage).
    s.cfg.check.oracle = true;
    s.cfg.check.invariantsEvery = 4096;
    s.cfg.warmupPass = false;
    s.cfg.maxTicks = 100ull * 1000 * 1000;
    // A wedged protocol should diagnose itself, not eat the time box.
    s.cfg.watchdog.every = 200000;
    s.cfg.watchdog.stallChecks = 25;

    std::string plan;
    if (opts.withFaults)
        plan = randomFaultWindows(rng);
    if (!opts.extraFaultPlan.empty()) {
        if (!plan.empty())
            plan += ";";
        plan += opts.extraFaultPlan;
    }
    s.cfg.fault.plan = plan;
    s.cfg.fault.seed = rng.next() | 1;

    const unsigned threads = s.cfg.topology.cores * s.cfg.topology.smt;
    switch (rng.below(4)) {
      case 0:
        s.workload = workloads::producerConsumerStress(
            opts.recordsPerThread, s.seed,
            64ull << (2 * rng.below(3))); // 64 / 256 / 1024 lines
        break;
      case 1:
        s.workload = workloads::migratoryStress(
            opts.recordsPerThread, s.seed, 16ull << (2 * rng.below(2)));
        break;
      case 2:
        s.workload = workloads::falseSharingStress(
            opts.recordsPerThread, s.seed, 8ull << rng.below(3));
        break;
      default:
        s.workload = workloads::pingpongStress(
            opts.recordsPerThread, s.seed, 128ull << (2 * rng.below(2)));
        break;
    }
    s.workload.numThreads = threads;

    // Pin the line size so a trace-driven re-run (which takes the
    // config as-is) sees the exact machine the workload run resolved.
    s.cfg.l2.lineSize = s.workload.lineSize;
    s.cfg.l3.lineSize = s.workload.lineSize;

    std::ostringstream sum;
    sum << s.workload.name << " shared_lines="
        << s.workload.sharedLines << " cores="
        << s.cfg.topology.cores << "x" << s.cfg.topology.smt
        << " l2s=" << s.cfg.topology.l2s << " layout="
        << toString(s.cfg.topology.layout) << " run.threads="
        << s.cfg.runThreads << " seed=" << s.seed << " fault.plan='"
        << s.cfg.fault.plan << "' fault.seed=" << s.cfg.fault.seed;
    s.summary = sum.str();
    return s;
}

/**
 * Budgeted failure predicate for the minimizer: every probe is a
 * full simulation, so both a run cap and the wall-clock deadline
 * bound it. An exhausted budget answers "does not fail", which makes
 * the minimizer keep its current (still-failing) candidate.
 */
class FailProbe
{
  public:
    FailProbe(SimErrorKind kind, unsigned max_runs,
              const Deadline &deadline)
        : kind_(kind), maxRuns_(max_runs), deadline_(deadline)
    {
    }

    bool exhausted() const
    {
        return runs_ >= maxRuns_ || deadline_.expired();
    }

    unsigned runs() const { return runs_; }

    bool operator()(const SystemConfig &cfg,
                    const std::vector<TraceRecord> &records)
    {
        if (exhausted())
            return false;
        ++runs_;
        const RunOutcome out = runTrace(cfg, records);
        return out.failed && out.kind == kind_;
    }

  private:
    SimErrorKind kind_;
    unsigned runs_ = 0;
    unsigned maxRuns_;
    const Deadline &deadline_;
};

/**
 * Zeller's ddmin over the interleaved record vector: repeatedly try
 * dropping one of n chunks; on success restart with coarser
 * granularity, otherwise refine until chunks are single records.
 */
std::vector<TraceRecord>
ddminTrace(const SystemConfig &cfg, std::vector<TraceRecord> records,
           std::size_t target, FailProbe &fails, std::ostream &log)
{
    std::size_t n = 2;
    while (records.size() >= 2 && records.size() > target
           && !fails.exhausted()) {
        const std::size_t chunk =
            (records.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t i = 0; i < n && !reduced; ++i) {
            const std::size_t lo = i * chunk;
            if (lo >= records.size())
                break;
            const std::size_t hi =
                std::min(records.size(), lo + chunk);
            std::vector<TraceRecord> candidate;
            candidate.reserve(records.size() - (hi - lo));
            candidate.insert(candidate.end(), records.begin(),
                             records.begin()
                                 + static_cast<std::ptrdiff_t>(lo));
            candidate.insert(candidate.end(),
                             records.begin()
                                 + static_cast<std::ptrdiff_t>(hi),
                             records.end());
            if (fails(cfg, candidate)) {
                records = std::move(candidate);
                n = n > 2 ? n - 1 : 2;
                reduced = true;
                log << "chaos: ddmin kept failure at "
                    << records.size() << " records ("
                    << fails.runs() << " runs)\n";
            }
        }
        if (!reduced) {
            if (n >= records.size())
                break;
            n = std::min(records.size(), n * 2);
        }
    }
    return records;
}

/**
 * Prune fault windows the failure does not need, then tighten the
 * survivors' cycle ranges by bisection.
 */
std::string
minimizeFaultPlan(SystemConfig cfg,
                  const std::vector<TraceRecord> &records,
                  FailProbe &fails, std::ostream &log)
{
    const auto parsed = parseFaultPlan(cfg.fault.plan);
    if (!parsed.ok() || parsed->empty())
        return cfg.fault.plan;
    FaultPlan plan = *parsed;

    const auto failsWith = [&](const FaultPlan &p) {
        SystemConfig c = cfg;
        c.fault.plan = formatFaultPlan(p);
        return fails(c, records);
    };

    // Drop whole windows.
    for (std::size_t i = 0; i < plan.windows.size();) {
        FaultPlan candidate = plan;
        candidate.windows.erase(
            candidate.windows.begin()
            + static_cast<std::ptrdiff_t>(i));
        if (failsWith(candidate)) {
            plan = std::move(candidate);
            log << "chaos: fault plan pruned to "
                << plan.windows.size() << " window(s)\n";
        } else {
            ++i;
        }
    }

    // Tighten each survivor (finite windows only).
    for (auto &w : plan.windows) {
        for (int round = 0; round < 6 && w.until != MaxTick; ++round) {
            const Tick len = w.until - w.from;
            if (len <= 1)
                break;
            FaultPlan candidate = plan;
            bool shrunk = false;
            // Halve from the tail, then from the head.
            for (auto &cw : candidate.windows) {
                if (cw.from == w.from && cw.until == w.until
                    && cw.kind == w.kind) {
                    cw.until = cw.from + len / 2;
                    break;
                }
            }
            if (failsWith(candidate)) {
                w.until = w.from + len / 2;
                shrunk = true;
            } else {
                candidate = plan;
                for (auto &cw : candidate.windows) {
                    if (cw.from == w.from && cw.until == w.until
                        && cw.kind == w.kind) {
                        cw.from = cw.until - len / 2;
                        break;
                    }
                }
                if (failsWith(candidate)) {
                    w.from = w.until - len / 2;
                    shrunk = true;
                }
            }
            if (!shrunk)
                break;
        }
    }
    return formatFaultPlan(plan);
}

} // namespace

ChaosReport
runChaos(const ChaosOptions &opts, std::ostream &log)
{
    const Deadline deadline(opts.timeBoxSecs);
    ChaosReport report;

    Sample failing;
    RunOutcome failure;
    for (unsigned i = 0; i < opts.samples; ++i) {
        if (deadline.expired()) {
            log << "chaos: time box closed after "
                << report.samplesRun << " sample(s)\n";
            break;
        }
        Sample s = drawSample(opts, i);
        log << "chaos: sample " << (i + 1) << "/" << opts.samples
            << " " << s.summary << "\n";
        ++report.samplesRun;
        const RunOutcome out = runWorkload(s.cfg, s.workload);
        if (!out.failed)
            continue;

        report.failed = true;
        report.failureKind = toString(out.kind);
        report.failureMessage = out.message;
        report.sampleSummary = s.summary;
        report.failingSeed = s.seed;
        failing = std::move(s);
        failure = out;
        log << "chaos: FAILURE (" << report.failureKind << ") on "
            << report.sampleSummary << "\n";
        break;
    }
    if (!report.failed) {
        log << "chaos: " << report.samplesRun
            << " sample(s), no conformance failures\n";
        return report;
    }

    // Reproduce the failure through the trace-driven path the
    // reproducer bundle will use; then minimize.
    std::vector<TraceRecord> records =
        SyntheticWorkload(failing.workload).materialize();
    report.originalRecords = records.size();

    FailProbe fails(failure.kind, opts.minimizeMaxRuns, deadline);
    if (!fails(failing.cfg, records)) {
        log << "chaos: warning: failure did not reproduce from the "
               "materialized trace; writing the unminimized bundle\n";
    } else if (opts.minimize) {
        records = ddminTrace(failing.cfg, std::move(records),
                             opts.minimizeTargetRecords, fails, log);
        failing.cfg.fault.plan = minimizeFaultPlan(
            failing.cfg, records, fails, log);
        log << "chaos: minimized " << report.originalRecords
            << " -> " << records.size() << " records in "
            << fails.runs() << " re-runs\n";
    }
    report.minimizedRecords = records.size();
    report.minimizedFaultPlan = failing.cfg.fault.plan;

    // Write the self-contained reproducer bundle.
    std::error_code ec;
    std::filesystem::create_directories(opts.reproDir, ec);
    if (ec) {
        log << "chaos: cannot create repro dir '" << opts.reproDir
            << "': " << ec.message() << "\n";
        return report;
    }
    report.reproTracePath = opts.reproDir + "/repro_trace.txt";
    report.reproConfigPath = opts.reproDir + "/repro.conf";
    const auto wrote = writeTraceFile(report.reproTracePath, records,
                                      TraceFormat::Text);
    if (!wrote.ok()) {
        log << "chaos: " << wrote.error().message << "\n";
        return report;
    }
    {
        std::ofstream os(report.reproConfigPath);
        if (!os) {
            log << "chaos: cannot write '" << report.reproConfigPath
                << "'\n";
            return report;
        }
        os << "# chaos reproducer: " << report.sampleSummary << "\n"
           << "# failure (" << report.failureKind << "): first line "
           << "of the original report below\n# "
           << report.failureMessage.substr(
                  0, report.failureMessage.find('\n'))
           << "\n";
        saveConfig(failing.cfg, os);
    }
    report.rerunCommand = cstr("cmpcache serve --trace=",
                               report.reproTracePath,
                               " --config=", report.reproConfigPath);
    report.reproWritten = true;
    log << "chaos: reproducer written (" << records.size()
        << " records); rerun with:\n  " << report.rerunCommand
        << "\n";
    return report;
}

} // namespace cmpcache
