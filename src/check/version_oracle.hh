/**
 * @file
 * Online coherence conformance oracle (the check.oracle config key).
 *
 * The oracle keeps a shadow write-epoch model of every cache line the
 * simulated machine touches: each committed store bumps the line's
 * version, and every copy of the line (per-L2, L3) is tracked with the
 * version it was filled or written at. Memory carries its own version.
 * Because the timing simulator carries no data, the version number
 * stands in for the line's contents: two copies at the same version
 * are byte-identical by construction, and a supplier whose version is
 * below the newest committed one is serving *stale data*.
 *
 * Validation happens at the protocol's own serialization point -- the
 * combined response -- where the ring reports every transaction to
 * the oracle (Ring::setConformance). Any stale supply (demand fill
 * from an L2, the L3 or memory; a won snarf; a write back carrying an
 * old version) raises a structured SimException of kind Conformance
 * naming the exact tick, line, supplying agent and the expected vs
 * observed version, plus a machine-state snapshot -- so the whole
 * PR-1 family of snarf/write-back races is caught at the cycle it
 * happens instead of as silent timing skew.
 *
 * Tolerance rules (why a green run stays green):
 *
 *  - The simulator *accounts* a few deliberate data losses (a won
 *    dirty snarf dropped because the winner's WB queue filled up;
 *    the L3 invalidating a copy on Upgrade without a castout). The
 *    oracle mirrors them: when an accounted drop removes the last
 *    copy of the newest version, the committed version rolls back to
 *    the newest surviving copy instead of flagging, and the line is
 *    marked so later downstream effects of the same loss do not
 *    false-positive either.
 *  - Functional warmup seeds each L2 independently and can install
 *    the same line writable in two L2s -- a known approximation. Such
 *    multi-seeded lines are tainted at seal time and exempt from
 *    validation; everything else keeps full rigor.
 *  - Three architected races are modeled, not flagged: an L2 that
 *    demand-misses a line parked in its own write-back queue is
 *    legally served older data (the newest version never left it);
 *    while an accepted write back's data is still crossing the data
 *    ring to the L3 a concurrent miss is legally served by memory
 *    (onWbArrivedL3 closes that window); and snarfing an L2's *own*
 *    queued write back while that L2 refetches the line duplicates
 *    its dirty lineage, so a stale clean write back, a stale dirty
 *    write back whose newest version another dirty holder still
 *    covers, and a store committing on the briefly-behind duplicate
 *    are tolerated (tracked at their true versions) -- the raise
 *    fires the moment a stale copy actually *supplies* a demand
 *    request.
 *
 * Thread safety: store/drop hooks fire from domain-worker threads
 * when run.threads > 0, so all state sits behind a mutex and
 * violations are *recorded* first and thrown at the next serial point
 * (every combine, plus throwIfViolated() at end of run).
 */

#ifndef CMPCACHE_CHECK_VERSION_ORACLE_HH
#define CMPCACHE_CHECK_VERSION_ORACLE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/bus.hh"
#include "common/types.hh"

namespace cmpcache
{

class VersionOracle
{
  public:
    /** @p l3_agent distinguishes the L3's shadow copy from L2 copies
     * (warmup taint counts L2 holders only). */
    explicit VersionOracle(AgentId l3_agent) : l3Agent_(l3_agent) {}

    /** Appended to the violation message at throw time (serial). */
    using SnapshotFn = std::function<std::string()>;
    void setSnapshotFn(SnapshotFn fn) { snapshot_ = std::move(fn); }

    // --- system hooks -------------------------------------------

    /** A store committed at @p agent (silent hit, granted upgrade, or
     * store waiters completing on a fill). Validates the agent's copy
     * is the newest version, then opens a new write epoch. */
    void onStore(AgentId agent, Addr line, Tick now);

    /** Functional warmup installed a copy (version 0). */
    void onSeedCopy(AgentId agent, Addr line, bool dirty);

    /** Warmup done: taint lines seeded writable into several L2s. */
    void sealSeeding();

    /** An *accounted* copy drop (won snarf dropped, snarf victim
     * reserved away, shared victim displaced, clean L3 victim). */
    void onDropCopy(AgentId agent, Addr line, Tick now);

    /** A copy dropped on a path that is only safe when the newest
     * version survives elsewhere (a WBHT abort, a squashed write
     * back whose cache no longer holds the line): flags when it was
     * the last copy of the newest version. */
    void onLocalSquash(AgentId agent, Addr line, Tick now);

    /** A dirty L3 victim was cast out to memory. */
    void onMemoryWrite(AgentId l3_agent, Addr line, Tick now);

    /**
     * The data of an accepted write back reached the L3 array. Between
     * the WbAcceptL3 combine and this call the newest version rides
     * the data ring: the machine's L3 cannot supply or snoop-hit it
     * yet, so a concurrent demand miss is legally served by memory
     * (an architected window, like the self-refetch race). The oracle
     * counts in-flight deliveries per line and tolerates memory
     * supplies while the count is nonzero.
     *
     * An invalidation (effective ReadExcl/Upgrade) can overtake the
     * delivery: the machine still installs the copy when the data
     * lands. The arrival therefore re-registers the L3's shadow
     * holder if it went missing mid-flight -- at the committed
     * version, the same convention the self-refetch tolerance uses
     * for lineages the architected windows make imprecise.
     */
    void onWbArrivedL3(Addr line, bool dirty, Tick now);

    /** The ring's combined response: validate the chosen supplier /
     * write-back issuer against the shadow model and apply ownership
     * transfers. Throws pending violations (serial point). */
    void onCombined(const BusRequest &req, const CombinedResult &res,
                    Tick now);

    // --- reporting ----------------------------------------------

    /** Throw the first recorded violation, if any (serial point). */
    void throwIfViolated();

    bool violated() const;
    /** The first violation's message ("" when clean). */
    std::string violationMessage() const;

    std::uint64_t deliveriesChecked() const { return checked_; }
    std::uint64_t storesStamped() const { return stamped_; }
    std::uint64_t taintedLines() const { return tainted_; }
    std::uint64_t reconciliations() const { return reconciled_; }

  private:
    struct Holder
    {
        AgentId agent = 0;
        std::uint64_t version = 0;
        /** Carries write-back responsibility for this version. */
        bool dirty = false;
    };

    struct LineShadow
    {
        std::uint64_t committed = 0;
        std::uint64_t mem = 0;
        /** Warmup seeded this line writable in several L2s. */
        bool tainted = false;
        /** An accounted loss already degraded this line: later
         * stale-looking effects of it must not flag. */
        bool lossAccounted = false;
        /** Accepted write backs whose data has not reached the L3
         * array yet (see onWbArrivedL3). */
        unsigned l3Inflight = 0;
        std::vector<Holder> holders;
    };

    LineShadow &shadow(Addr line) { return lines_[line]; }
    Holder *find(LineShadow &s, AgentId agent);
    void setHolder(LineShadow &s, AgentId agent, std::uint64_t version,
                   bool dirty);
    bool eraseHolder(LineShadow &s, AgentId agent, Holder &out);
    bool anyAt(const LineShadow &s, std::uint64_t version) const;
    bool anyDirtyAt(const LineShadow &s, std::uint64_t version) const;
    std::uint64_t maxAvailable(const LineShadow &s) const;

    /** Post-drop bookkeeping for accounted drops: roll the committed
     * version back to the newest survivor when the last newest copy
     * went away; note lost write-back responsibility. */
    void reconcileAccountedDrop(LineShadow &s, const Holder &dropped);

    /** Invalidate every holder but @p keep (effective ReadExcl /
     * Upgrade). */
    void dropOthers(LineShadow &s, AgentId keep);

    /** Register the requester's freshly delivered copy. */
    void applyFill(LineShadow &s, const BusRequest &req);

    /** Record a violation (first one wins; no throw here). */
    void raise(const LineShadow &s, Tick now, Addr line, AgentId agent,
               std::uint64_t expected, std::uint64_t observed,
               const std::string &what);

    void validateSupplier(LineShadow &s, Tick now, Addr line,
                          AgentId agent, const char *who);

    AgentId l3Agent_;
    SnapshotFn snapshot_;

    mutable std::mutex mu_;
    std::unordered_map<Addr, LineShadow> lines_;

    struct Violation
    {
        bool armed = false;
        std::string message;
    };
    Violation violation_;

    std::uint64_t checked_ = 0;
    std::uint64_t stamped_ = 0;
    std::uint64_t tainted_ = 0;
    std::uint64_t reconciled_ = 0;
};

} // namespace cmpcache

#endif // CMPCACHE_CHECK_VERSION_ORACLE_HH
