#include "l1/l1_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpcache
{

L1Cache::L1Cache(const L1Params &p)
    : params_(p),
      itags_(p.iSizeBytes, p.assoc, p.lineSize,
             makeReplacementPolicy(p.replPolicy)),
      dtags_(p.dSizeBytes, p.assoc, p.lineSize,
             makeReplacementPolicy(p.replPolicy))
{
}

double
L1Cache::hitRate() const
{
    const auto n = hits_ + misses_;
    return n ? static_cast<double>(hits_) / static_cast<double>(n)
             : 0.0;
}

L1Cache::Result
L1Cache::access(Addr addr, MemOp op)
{
    TagArray &tags = op == MemOp::IFetch ? itags_ : dtags_;
    Result res;

    if (TagEntry *e = tags.lookup(addr)) {
        ++hits_;
        res.hit = true;
        if (op == MemOp::Store)
            e->state = LineState::Modified;
        return res;
    }

    ++misses_;
    TagEntry *victim = tags.findVictim(addr);
    if (victim->valid() && isDirty(victim->state)) {
        ++dirtyVictims_;
        res.victimDirty = true;
        res.victimAddr = victim->lineAddr;
    }
    tags.insert(victim, addr,
                op == MemOp::Store ? LineState::Modified
                                   : LineState::Exclusive);
    return res;
}

L1FilteredSource::L1FilteredSource(std::unique_ptr<TraceSource> raw,
                                   const L1Params &p)
    : raw_(std::move(raw)), l1_(p), hitCycles_(p.hitCycles)
{
    cmp_assert(raw_ != nullptr, "L1 filter needs a raw source");
}

bool
L1FilteredSource::next(TraceRecord &rec)
{
    while (true) {
        if (!pending_.empty()) {
            rec = pending_.front();
            pending_.pop_front();
            return true;
        }

        TraceRecord raw;
        if (!raw_->next(raw))
            return false;

        const auto res = l1_.access(raw.addr, raw.op);
        if (res.hit) {
            // Absorbed: its think-time folds into the next record.
            // (Runs of L1 hits thus never reach the event kernel at
            // all; the hit runs TraceCpu's fast path batches are the
            // *L2* hits among the misses that emerge below.)
            accumulatedGap_ += raw.gap + hitCycles_;
            continue;
        }

        rec = raw;
        rec.gap = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(raw.gap + accumulatedGap_,
                                    0xffffffffull));
        accumulatedGap_ = 0;

        if (res.victimDirty) {
            // The dirty victim flows down as store traffic right
            // after the miss (the L1's write back to the L2).
            TraceRecord wb;
            wb.addr = res.victimAddr;
            wb.gap = 0;
            wb.tid = raw.tid;
            wb.op = MemOp::Store;
            pending_.push_back(wb);
        }
        return true;
    }
}

TraceBundle
filterThroughL1(TraceBundle raw, const L1Params &p)
{
    TraceBundle out;
    out.perThread.reserve(raw.perThread.size());
    for (auto &src : raw.perThread) {
        out.perThread.push_back(
            std::make_unique<L1FilteredSource>(std::move(src), p));
    }
    return out;
}

} // namespace cmpcache
