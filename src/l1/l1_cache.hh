/**
 * @file
 * Private L1 caches (paper Figure 1: Harvard-style I/D per core).
 *
 * The paper's traces are L2-traffic captures, i.e. they sit *below*
 * the L1s, so CmpSystem does not model L1 timing. This module closes
 * the loop for users with raw (pre-L1) reference streams: L1Cache is
 * a functional write-back/write-allocate filter, and L1FilteredSource
 * adapts any raw TraceSource into the L2-traffic stream CmpSystem
 * consumes -- hits are absorbed (their time folded into the next
 * record's gap), misses pass through, and dirty victims emerge as
 * store traffic.
 */

#ifndef CMPCACHE_L1_L1_CACHE_HH
#define CMPCACHE_L1_L1_CACHE_HH

#include <memory>
#include <string>

#include "common/circular_buffer.hh"
#include "mem/tag_array.hh"
#include "trace/trace.hh"

namespace cmpcache
{

struct L1Params
{
    std::uint64_t iSizeBytes = 32 * 1024;
    std::uint64_t dSizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineSize = 128;
    std::string replPolicy = "lru";
    /** Cycles a filtered L1 hit contributes to the next record's
     * gap (models the time the thread spent on absorbed hits). */
    std::uint32_t hitCycles = 1;
};

/**
 * Functional Harvard L1: reports hit/miss and dirty victims; no
 * timing of its own.
 */
class L1Cache
{
  public:
    explicit L1Cache(const L1Params &p);

    /** Outcome of one reference. */
    struct Result
    {
        bool hit = false;
        /** A dirty victim was evicted by the fill (miss only). */
        bool victimDirty = false;
        Addr victimAddr = InvalidAddr;
    };

    Result access(Addr addr, MemOp op);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t dirtyVictims() const { return dirtyVictims_; }
    double hitRate() const;

    TagArray &dtags() { return dtags_; }
    TagArray &itags() { return itags_; }

  private:
    L1Params params_;
    TagArray itags_;
    TagArray dtags_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dirtyVictims_ = 0;
};

/**
 * TraceSource adapter: raw per-thread references in, L2 traffic out.
 *
 * Like every TraceSource, this runs purely at trace time: next() must
 * not schedule events, touch an EventQueue, or read the simulated
 * clock. The CPU's hit fast path (TraceCpu::batchHits) relies on that
 * contract -- it pulls records mid-batch while the kernel's clock is
 * parked between events, having bounded the whole batch on the
 * premise that consuming a record perturbs no simulator state.
 */
class L1FilteredSource : public TraceSource
{
  public:
    L1FilteredSource(std::unique_ptr<TraceSource> raw,
                     const L1Params &p);

    bool next(TraceRecord &rec) override;

    const L1Cache &l1() const { return l1_; }

  private:
    std::unique_ptr<TraceSource> raw_;
    L1Cache l1_;
    std::uint32_t hitCycles_;
    /** Dirty victims awaiting emission as store traffic. */
    CircularBuffer<TraceRecord> pending_;
    std::uint64_t accumulatedGap_ = 0;
};

/** Filter every thread of a bundle through private L1s. */
TraceBundle filterThroughL1(TraceBundle raw, const L1Params &p);

} // namespace cmpcache

#endif // CMPCACHE_L1_L1_CACHE_HH
