/**
 * @file
 * cmpcache: the multi-tool driver. Subcommands:
 *
 *   sweep   run a {workloads} x {policies} x {outstanding} grid on a
 *           thread pool and emit deterministic JSON results plus an
 *           optional timing (bench) file
 *   serve   simulate a trace streamed from a file, FIFO or stdin
 *           (or a synthetic generator) online with bounded memory,
 *           under an open- or closed-loop arrival model
 *   chaos   seeded coherence fuzzing: adversarial sharing workloads x
 *           fault plans x topologies under the conformance oracle,
 *           with automatic reproducer minimization on failure
 *   list    print the available workloads and policies
 *   help    usage text
 *
 * Examples:
 *
 *   # the paper grid: 4 workloads x 4 policies, deterministic output
 *   cmpcache sweep --out=results.json --threads=4
 *
 *   # stream a trace through a FIFO with live ingest gauges
 *   mkfifo /tmp/t.fifo
 *   generator > /tmp/t.fifo &
 *   cmpcache serve --trace=/tmp/t.fifo --sample-every=5000 \
 *       --arrival=open:0.02 --out=result.json
 *
 *   # a quick stress grid with invariant checking and a bench file
 *   cmpcache sweep --workloads=thrash,pingpong \
 *       --policies=baseline,combined --outstanding=2,6 \
 *       --refs=2000 --check-coherence \
 *       --bench-out=bench/BENCH_stress.json
 *
 * Single-cell runs with full stats dumps remain the job of
 * examples/cmpsim.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "check/chaos.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/time_series.hh"
#include "sim/config_io.hh"
#include "sim/result_json.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "trace/trace_source.hh"
#include "trace/workload_config.hh"
#include "trace/workloads_commercial.hh"
#include "trace/workloads_stress.hh"

using namespace cmpcache;

namespace
{

void
usage()
{
    std::cout <<
        "cmpcache -- CMP cache-hierarchy simulator (ISCA'05 repro)\n\n"
        "usage: cmpcache <subcommand> [options]\n\n"
        "subcommands:\n"
        "  sweep   run a workload x policy x outstanding grid\n"
        "  serve   simulate a streamed trace (file/FIFO/stdin) or a\n"
        "          synthetic generator online with bounded memory\n"
        "  chaos   seeded coherence fuzzing under the conformance\n"
        "          oracle, with reproducer minimization on failure\n"
        "  list    print available workloads and policies\n"
        "  help    this text\n\n"
        "chaos options:\n"
        "  --seed=N              master seed (default 1); every\n"
        "                        sample derives its own stream\n"
        "  --samples=N           samples to draw (default 16); stops\n"
        "                        at the first failure\n"
        "  --refs=N              references/thread/sample (def. 1200)\n"
        "  --time-box=SECS       wall-clock budget over sampling and\n"
        "                        minimization (0 = unlimited)\n"
        "  --fault-plan=SPEC     extra fault windows appended to every\n"
        "                        sample (the forced-failure smoke\n"
        "                        injects wb_blind_spot here)\n"
        "  --no-faults           don't randomize benign fault windows\n"
        "  --no-minimize         report the failure without shrinking\n"
        "  --minimize-target=N   stop ddmin at N records (default 200)\n"
        "  --repro-dir=DIR       reproducer bundle dir (default\n"
        "                        chaos-repro)\n\n"
        "serve options:\n"
        "  --trace=PATH          stream a text or binary trace from a\n"
        "                        file or FIFO ('-' = stdin); decoded\n"
        "                        incrementally, never materialized\n"
        "  --workload=NAME       synthetic generator instead of a\n"
        "                        stream (--refs/--seed as for sweep)\n"
        "  --arrival=SPEC        closed (default) or open:<rate>;\n"
        "                        rate = mean arrivals/tick/thread,\n"
        "                        e.g. open:0.02 (arrival.* keys tune\n"
        "                        bursts and the sampler seed)\n"
        "  --sample-every=N      sample obs probes plus live ingest\n"
        "                        gauges (queue depth, ingest rate,\n"
        "                        drops) every N cycles\n"
        "  --run-threads=N|auto  per-simulation event-kernel workers\n"
        "  --out=FILE            result JSON (default: stdout);\n"
        "                        includes a timeSeries block when\n"
        "                        sampling is on\n"
        "  --config=FILE, KEY=VALUE  as for sweep; stream.* keys set\n"
        "                        queue capacity and the block|drop\n"
        "                        backpressure policy\n\n"
        "sweep options:\n"
        "  --workloads=A,B,...   default: TP,CPW2,NotesBench,Trade2\n"
        "  --policies=a,b,...    default: baseline,wbht,snarf,"
        "combined\n"
        "  --outstanding=N,M     default: 6\n"
        "  --refs=N              references/thread (default 20000,\n"
        "                        or CMPCACHE_REFS)\n"
        "  --seed=N              workload seed (default 1)\n"
        "  --threads=N           worker threads (default: hardware)\n"
        "  --run-threads=N|auto  per-simulation event-kernel workers\n"
        "                        (0 = serial kernel, the default;\n"
        "                        auto picks from the host and shape;\n"
        "                        any N gives bit-identical results)\n"
        "  --out=FILE            results JSON (default: stdout)\n"
        "  --bench-out=FILE      timing JSON, e.g. "
        "bench/BENCH_grid.json\n"
        "  --check-coherence     run the invariant checker per cell\n"
        "  --sample-every=N      sample observability probes every N\n"
        "                        cycles (0 = off, the default); adds\n"
        "                        a timeSeries block to the results\n"
        "  --trace-out=FILE      record coherence transactions and\n"
        "                        write a Chrome trace-event (Perfetto)\n"
        "                        JSON per cell; multi-cell grids get\n"
        "                        FILE.<cell-index> before the extension\n"
        "  --stats-format=F      capture a full stats dump per cell:\n"
        "                        text, csv or json (default: none)\n"
        "  --stats-out=FILE      stats dump destination (per cell,\n"
        "                        like --trace-out; default: stderr)\n"
        "  --config=FILE         base configuration file\n"
        "  KEY=VALUE             positional base-config overrides;\n"
        "                        wl.* keys adjust every cell's "
        "workload\n"
        "  --quiet               suppress progress lines\n\n"
        "exit codes: 0 ok, 1 bad arguments/config or internal error,\n"
        "2 coherence violations (sweep checker, serve conformance\n"
        "trip, or a chaos failure with its reproducer written),\n"
        "3 one or more sweep cells failed (failed cells appear as\n"
        "status:\"error\" in the results)\n";
}

/** --run-threads=N|auto (auto = SystemConfig::RunThreadsAuto). */
unsigned
parseRunThreads(const std::string &v)
{
    if (v == "auto")
        return SystemConfig::RunThreadsAuto;
    std::size_t used = 0;
    long long n = -1;
    try {
        n = std::stoll(v, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != v.size() || n < 0)
        cmp_fatal("--run-threads expects a count >= 0 or 'auto', "
                  "got '", v, "'");
    return static_cast<unsigned>(n);
}

StatsFormat
statsFormatFromString(const std::string &s)
{
    if (s == "text")
        return StatsFormat::Text;
    if (s == "csv")
        return StatsFormat::Csv;
    if (s == "json")
        return StatsFormat::Json;
    cmp_fatal("--stats-format expects text|csv|json, got '", s, "'");
}

/**
 * Per-cell output path: "trace.json" stays "trace.json" for a
 * single-cell grid and becomes "trace.3.json" for cell 3 of many.
 */
std::string
perCellPath(const std::string &base, std::size_t index,
            std::size_t total)
{
    if (total <= 1)
        return base;
    const auto dot = base.rfind('.');
    const auto slash = base.rfind('/');
    const bool has_ext =
        dot != std::string::npos
        && (slash == std::string::npos || dot > slash);
    if (!has_ext)
        return base + "." + std::to_string(index);
    return base.substr(0, dot) + "." + std::to_string(index)
           + base.substr(dot);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
listMain()
{
    std::cout << "commercial workloads:\n";
    for (const auto &w : workloads::allNames())
        std::cout << "  " << w << "\n";
    std::cout << "stress workloads:\n";
    for (const auto &w : workloads::stressNames())
        std::cout << "  " << w << "\n";
    std::cout << "policies:\n";
    for (const auto p :
         {WbPolicy::Baseline, WbPolicy::Wbht, WbPolicy::WbhtGlobal,
          WbPolicy::Snarf, WbPolicy::Combined})
        std::cout << "  " << toString(p) << "\n";
    return 0;
}

int
sweepMain(const CliArgs &args)
{
    SweepSpec spec;
    spec.workloads = splitCsv(args.getString(
        "workloads", "TP,CPW2,NotesBench,Trade2"));
    for (const auto &p : splitCsv(args.getString(
             "policies", "baseline,wbht,snarf,combined")))
        spec.policies.push_back(wbPolicyFromString(p));
    for (const auto &o : splitCsv(args.getString("outstanding", "6"))) {
        std::int64_t v = 0;
        try {
            v = std::stoll(o);
        } catch (...) {
            cmp_fatal("--outstanding expects integers, got '", o, "'");
        }
        if (v <= 0)
            cmp_fatal("--outstanding values must be positive, got '",
                      o, "'");
        spec.outstanding.push_back(static_cast<unsigned>(v));
    }
    spec.recordsPerThread = static_cast<std::uint64_t>(args.getInt(
        "refs",
        static_cast<std::int64_t>(benchRecordsPerThread(20000))));
    spec.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    spec.checkCoherence = args.getBool("check-coherence", false);

    if (args.has("config")) {
        const auto loaded =
            loadConfigFile(spec.base, args.getString("config", ""));
        if (!loaded.ok())
            cmp_fatal(loaded.error().message);
    }
    for (const auto &pos : args.positional()) {
        const auto eq = pos.find('=');
        if (eq == std::string::npos)
            cmp_fatal("positional argument '", pos,
                      "' is not a key=value override");
        const std::string key = pos.substr(0, eq);
        const std::string value = pos.substr(eq + 1);
        if (isWorkloadKey(key)) {
            spec.workloadOverrides.emplace_back(key, value);
        } else {
            const auto applied =
                applyConfigOption(spec.base, key, value);
            if (!applied.ok())
                cmp_fatal(applied.error().message);
        }
    }

    // CLI observability knobs override config-file obs.* keys.
    if (args.has("sample-every")) {
        const auto every = args.getInt("sample-every", 0);
        if (every < 0)
            cmp_fatal("--sample-every must be >= 0");
        spec.base.obs.sampleEvery = static_cast<Tick>(every);
    }
    const std::string trace_out = args.getString("trace-out", "");
    if (!trace_out.empty())
        spec.base.obs.traceEnabled = true;
    if (args.has("stats-format"))
        spec.statsFormat = statsFormatFromString(
            args.getString("stats-format", ""));
    const std::string stats_out = args.getString("stats-out", "");

    if (args.has("run-threads")) {
        spec.base.runThreads =
            parseRunThreads(args.getString("run-threads", "0"));
    }

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const auto threads = static_cast<unsigned>(
        args.getInt("threads", static_cast<std::int64_t>(hw)));
    if (threads == 0)
        cmp_fatal("--threads must be positive");

    SweepProgressPrinter progress(std::cerr);
    const bool quiet = args.getBool("quiet", false);
    if (!quiet)
        inform("sweep: ", spec.size(), " jobs on ", threads,
               " threads (", spec.workloads.size(), " workloads x ",
               spec.policies.size(), " policies x ",
               spec.outstanding.size(), " outstanding)");

    const auto start = std::chrono::steady_clock::now();
    const auto results =
        runSweep(spec, threads, quiet ? nullptr : &progress);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    const auto out = args.getString("out", "-");
    if (out == "-" || out.empty()) {
        writeSweepResultsJson(std::cout, spec, results);
    } else {
        std::ofstream os(out);
        if (!os)
            cmp_fatal("cannot write results file '", out, "'");
        writeSweepResultsJson(os, spec, results);
        if (!quiet)
            inform("sweep: results written to ", out);
    }

    if (!trace_out.empty()) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto path =
                perCellPath(trace_out, i, results.size());
            std::ofstream os(path);
            if (!os)
                cmp_fatal("cannot write trace file '", path, "'");
            const auto &r = results[i];
            writeChromeTrace(os, r.trace,
                             r.samples.empty() ? nullptr : &r.samples);
            if (!quiet)
                inform("sweep: trace written to ", path);
        }
    }

    if (spec.statsFormat != StatsFormat::None) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (stats_out.empty()) {
                std::cerr << "# stats: cell " << i << "\n"
                          << results[i].statsDump;
                continue;
            }
            const auto path =
                perCellPath(stats_out, i, results.size());
            std::ofstream os(path);
            if (!os)
                cmp_fatal("cannot write stats file '", path, "'");
            os << results[i].statsDump;
            if (!quiet)
                inform("sweep: stats written to ", path);
        }
    }

    if (args.has("bench-out")) {
        const auto path = args.getString("bench-out", "");
        std::ofstream os(path);
        if (!os)
            cmp_fatal("cannot write bench file '", path, "'");
        writeSweepBenchJson(os, spec, results, threads, wall);
        if (!quiet)
            inform("sweep: bench timing written to ", path);
    }

    if (spec.checkCoherence) {
        std::uint64_t violations = 0;
        for (const auto &r : results)
            violations += r.coherenceViolations;
        if (violations) {
            warn("sweep: ", violations,
                 " coherence invariant violations");
            return 2;
        }
    }

    std::size_t failed = 0;
    for (const auto &r : results)
        if (!r.ok)
            ++failed;
    if (failed) {
        warn("sweep: ", failed, " of ", results.size(),
             " cells failed (status \"error\" in the results)");
        return 3;
    }
    return 0;
}

int
chaosMain(const CliArgs &args)
{
    ChaosOptions opts;
    opts.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const auto samples = args.getInt("samples", 16);
    if (samples <= 0)
        cmp_fatal("--samples must be positive");
    opts.samples = static_cast<unsigned>(samples);
    opts.recordsPerThread = static_cast<std::uint64_t>(
        args.getInt("refs", 1200));
    const auto box = args.getInt("time-box", 0);
    if (box < 0)
        cmp_fatal("--time-box must be >= 0");
    opts.timeBoxSecs = static_cast<double>(box);
    opts.extraFaultPlan = args.getString("fault-plan", "");
    opts.withFaults = !args.getBool("no-faults", false);
    opts.minimize = !args.getBool("no-minimize", false);
    const auto target = args.getInt("minimize-target", 200);
    if (target < 0)
        cmp_fatal("--minimize-target must be >= 0");
    opts.minimizeTargetRecords = static_cast<std::size_t>(target);
    opts.reproDir = args.getString("repro-dir", "chaos-repro");

    const ChaosReport report = runChaos(opts, std::cerr);
    if (!report.failed)
        return 0;
    std::cerr << "chaos: failure (" << report.failureKind << "): "
              << report.failureMessage << "\n";
    if (report.reproWritten)
        std::cerr << "chaos: rerun: " << report.rerunCommand << "\n";
    return 2;
}

int
serveMain(const CliArgs &args)
{
    SystemConfig cfg;
    // serve is the live mode: ingest gauges default on (an explicit
    // obs.ingest=false override below still disables them).
    cfg.obs.ingestGauges = true;

    if (args.has("config")) {
        const auto loaded =
            loadConfigFile(cfg, args.getString("config", ""));
        if (!loaded.ok())
            cmp_fatal(loaded.error().message);
    }
    std::vector<std::pair<std::string, std::string>> wl_overrides;
    for (const auto &pos : args.positional()) {
        const auto eq = pos.find('=');
        if (eq == std::string::npos)
            cmp_fatal("positional argument '", pos,
                      "' is not a key=value override");
        const std::string key = pos.substr(0, eq);
        const std::string value = pos.substr(eq + 1);
        if (isWorkloadKey(key)) {
            wl_overrides.emplace_back(key, value);
        } else {
            const auto applied = applyConfigOption(cfg, key, value);
            if (!applied.ok())
                cmp_fatal(applied.error().message);
        }
    }

    if (args.has("arrival")) {
        const auto spec =
            parseArrivalSpec(args.getString("arrival", ""));
        if (!spec.ok())
            cmp_fatal(spec.error().message);
        // The spec sets model and rate; burst shape and the sampler
        // seed stay whatever arrival.* keys configured.
        cfg.arrival.model = spec->model;
        cfg.arrival.rate = spec->rate;
    }
    if (args.has("sample-every")) {
        const auto every = args.getInt("sample-every", 0);
        if (every < 0)
            cmp_fatal("--sample-every must be >= 0");
        cfg.obs.sampleEvery = static_cast<Tick>(every);
    }
    if (args.has("run-threads")) {
        cfg.runThreads =
            parseRunThreads(args.getString("run-threads", "0"));
    }

    const std::string trace = args.getString("trace", "");
    const std::string workload = args.getString("workload", "");
    if (trace.empty() == workload.empty()) {
        cmp_fatal("serve needs exactly one input: --trace=PATH|- or "
                  "--workload=NAME");
    }
    cfg.validate();

    const bool quiet = args.getBool("quiet", false);
    std::unique_ptr<Simulation> sim;
    if (!trace.empty()) {
        std::unique_ptr<std::istream> in;
        std::string name = trace;
        if (trace == "-") {
            in = std::make_unique<std::istream>(std::cin.rdbuf());
            name = "<stdin>";
        } else {
            auto f = std::make_unique<std::ifstream>(
                trace, std::ios::binary);
            if (!*f)
                cmp_fatal("cannot open trace stream '", trace, "'");
            in = std::move(f);
        }
        if (!quiet)
            inform("serve: streaming ", name, " (queue ",
                   cfg.stream.queueCapacity, " records, ",
                   cfg.stream.overflow == OverflowPolicy::Block
                       ? "block"
                       : "drop",
                   " on overflow, arrival ",
                   toString(cfg.arrival.model), ")");
        sim = std::make_unique<Simulation>(cfg, std::move(in),
                                           std::move(name));
    } else {
        auto params = sweepWorkloadByName(
            workload,
            static_cast<std::uint64_t>(args.getInt(
                "refs",
                static_cast<std::int64_t>(
                    benchRecordsPerThread(20000)))),
            static_cast<std::uint64_t>(args.getInt("seed", 1)));
        for (const auto &[key, value] : wl_overrides)
            applyWorkloadOption(params, key, value);
        if (!quiet)
            inform("serve: synthetic ", workload, " generator, ",
                   params.recordsPerThread, " records/thread, "
                   "arrival ", toString(cfg.arrival.model));
        sim = std::make_unique<Simulation>(cfg, params);
    }

    const auto &result = sim->run();

    const auto out = args.getString("out", "-");
    std::ofstream file;
    if (out != "-" && !out.empty()) {
        file.open(out);
        if (!file)
            cmp_fatal("cannot write results file '", out, "'");
    }
    std::ostream &os = file.is_open() ? file : std::cout;
    os << "{\n  \"schema\": \"cmpcache-serve-result-v1\",\n"
       << "  \"result\":\n";
    writeResultJson(os, result, 2);
    if (sim->sampled()) {
        os << ",\n  \"timeSeries\":\n";
        writeSampleSeriesJson(os, sim->samples(), 2);
    }
    os << "\n}\n";

    if (!quiet) {
        if (const StreamIngest *ingest = sim->ingest()) {
            inform("serve: ingested ", ingest->recordsIngested(),
                   " records (", ingest->recordsDropped(),
                   " dropped, ", ingest->producerBlockedWaits(),
                   " producer waits)");
        }
        inform("serve: finished at tick ", result.execTime,
               ", result written to ",
               file.is_open() ? out : std::string("stdout"));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv, /*allow_subcommand=*/true);
    const std::string &cmd = args.subcommand();
    if (cmd.empty() || cmd == "help" || args.getBool("help", false)) {
        usage();
        return cmd.empty() && !args.getBool("help", false) ? 1 : 0;
    }
    if (cmd == "sweep") {
        try {
            return sweepMain(args);
        } catch (const SimException &e) {
            std::cerr << "error (" << toString(e.error().kind)
                      << "): " << e.error().message << "\n";
            return 1;
        }
    }
    if (cmd == "serve") {
        try {
            return serveMain(args);
        } catch (const SimException &e) {
            std::cerr << "error (" << toString(e.error().kind)
                      << "): " << e.error().message << "\n";
            // A conformance trip on a replayed reproducer is the
            // expected outcome; give it the coherence exit code.
            return e.error().kind == SimErrorKind::Conformance ? 2
                                                               : 1;
        }
    }
    if (cmd == "chaos") {
        try {
            return chaosMain(args);
        } catch (const SimException &e) {
            std::cerr << "error (" << toString(e.error().kind)
                      << "): " << e.error().message << "\n";
            return 1;
        }
    }
    if (cmd == "list")
        return listMain();
    cmp_fatal("unknown subcommand '", cmd,
              "' (expected sweep, serve, chaos, list or help)");
}
