/**
 * @file
 * cmpcache: the multi-tool driver. Subcommands:
 *
 *   sweep   run a {workloads} x {policies} x {outstanding} grid on a
 *           thread pool and emit deterministic JSON results plus an
 *           optional timing (bench) file
 *   list    print the available workloads and policies
 *   help    usage text
 *
 * Examples:
 *
 *   # the paper grid: 4 workloads x 4 policies, deterministic output
 *   cmpcache sweep --out=results.json --threads=4
 *
 *   # a quick stress grid with invariant checking and a bench file
 *   cmpcache sweep --workloads=thrash,pingpong \
 *       --policies=baseline,combined --outstanding=2,6 \
 *       --refs=2000 --check-coherence \
 *       --bench-out=bench/BENCH_stress.json
 *
 * Single-cell runs with full stats dumps remain the job of
 * examples/cmpsim.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/cli.hh"
#include "common/logging.hh"
#include "sim/config_io.hh"
#include "sim/sweep.hh"
#include "trace/workload_config.hh"
#include "trace/workloads_commercial.hh"
#include "trace/workloads_stress.hh"

using namespace cmpcache;

namespace
{

void
usage()
{
    std::cout <<
        "cmpcache -- CMP cache-hierarchy simulator (ISCA'05 repro)\n\n"
        "usage: cmpcache <subcommand> [options]\n\n"
        "subcommands:\n"
        "  sweep   run a workload x policy x outstanding grid\n"
        "  list    print available workloads and policies\n"
        "  help    this text\n\n"
        "sweep options:\n"
        "  --workloads=A,B,...   default: TP,CPW2,NotesBench,Trade2\n"
        "  --policies=a,b,...    default: baseline,wbht,snarf,"
        "combined\n"
        "  --outstanding=N,M     default: 6\n"
        "  --refs=N              references/thread (default 20000,\n"
        "                        or CMPCACHE_REFS)\n"
        "  --seed=N              workload seed (default 1)\n"
        "  --threads=N           worker threads (default: hardware)\n"
        "  --run-threads=N       per-simulation event-kernel workers\n"
        "                        (0 = serial kernel, the default; any\n"
        "                        N gives bit-identical results)\n"
        "  --out=FILE            results JSON (default: stdout)\n"
        "  --bench-out=FILE      timing JSON, e.g. "
        "bench/BENCH_grid.json\n"
        "  --check-coherence     run the invariant checker per cell\n"
        "  --sample-every=N      sample observability probes every N\n"
        "                        cycles (0 = off, the default); adds\n"
        "                        a timeSeries block to the results\n"
        "  --trace-out=FILE      record coherence transactions and\n"
        "                        write a Chrome trace-event (Perfetto)\n"
        "                        JSON per cell; multi-cell grids get\n"
        "                        FILE.<cell-index> before the extension\n"
        "  --stats-format=F      capture a full stats dump per cell:\n"
        "                        text, csv or json (default: none)\n"
        "  --stats-out=FILE      stats dump destination (per cell,\n"
        "                        like --trace-out; default: stderr)\n"
        "  --config=FILE         base configuration file\n"
        "  KEY=VALUE             positional base-config overrides;\n"
        "                        wl.* keys adjust every cell's "
        "workload\n"
        "  --quiet               suppress progress lines\n\n"
        "exit codes: 0 ok, 1 bad arguments/config or internal error,\n"
        "2 coherence violations, 3 one or more sweep cells failed\n"
        "(failed cells appear as status:\"error\" in the results)\n";
}

StatsFormat
statsFormatFromString(const std::string &s)
{
    if (s == "text")
        return StatsFormat::Text;
    if (s == "csv")
        return StatsFormat::Csv;
    if (s == "json")
        return StatsFormat::Json;
    cmp_fatal("--stats-format expects text|csv|json, got '", s, "'");
}

/**
 * Per-cell output path: "trace.json" stays "trace.json" for a
 * single-cell grid and becomes "trace.3.json" for cell 3 of many.
 */
std::string
perCellPath(const std::string &base, std::size_t index,
            std::size_t total)
{
    if (total <= 1)
        return base;
    const auto dot = base.rfind('.');
    const auto slash = base.rfind('/');
    const bool has_ext =
        dot != std::string::npos
        && (slash == std::string::npos || dot > slash);
    if (!has_ext)
        return base + "." + std::to_string(index);
    return base.substr(0, dot) + "." + std::to_string(index)
           + base.substr(dot);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
listMain()
{
    std::cout << "commercial workloads:\n";
    for (const auto &w : workloads::allNames())
        std::cout << "  " << w << "\n";
    std::cout << "stress workloads:\n";
    for (const auto &w : workloads::stressNames())
        std::cout << "  " << w << "\n";
    std::cout << "policies:\n";
    for (const auto p :
         {WbPolicy::Baseline, WbPolicy::Wbht, WbPolicy::WbhtGlobal,
          WbPolicy::Snarf, WbPolicy::Combined})
        std::cout << "  " << toString(p) << "\n";
    return 0;
}

int
sweepMain(const CliArgs &args)
{
    SweepSpec spec;
    spec.workloads = splitCsv(args.getString(
        "workloads", "TP,CPW2,NotesBench,Trade2"));
    for (const auto &p : splitCsv(args.getString(
             "policies", "baseline,wbht,snarf,combined")))
        spec.policies.push_back(wbPolicyFromString(p));
    for (const auto &o : splitCsv(args.getString("outstanding", "6"))) {
        std::int64_t v = 0;
        try {
            v = std::stoll(o);
        } catch (...) {
            cmp_fatal("--outstanding expects integers, got '", o, "'");
        }
        if (v <= 0)
            cmp_fatal("--outstanding values must be positive, got '",
                      o, "'");
        spec.outstanding.push_back(static_cast<unsigned>(v));
    }
    spec.recordsPerThread = static_cast<std::uint64_t>(args.getInt(
        "refs",
        static_cast<std::int64_t>(benchRecordsPerThread(20000))));
    spec.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    spec.checkCoherence = args.getBool("check-coherence", false);

    if (args.has("config")) {
        const auto loaded =
            loadConfigFile(spec.base, args.getString("config", ""));
        if (!loaded.ok())
            cmp_fatal(loaded.error().message);
    }
    for (const auto &pos : args.positional()) {
        const auto eq = pos.find('=');
        if (eq == std::string::npos)
            cmp_fatal("positional argument '", pos,
                      "' is not a key=value override");
        const std::string key = pos.substr(0, eq);
        const std::string value = pos.substr(eq + 1);
        if (isWorkloadKey(key)) {
            spec.workloadOverrides.emplace_back(key, value);
        } else {
            const auto applied =
                applyConfigOption(spec.base, key, value);
            if (!applied.ok())
                cmp_fatal(applied.error().message);
        }
    }

    // CLI observability knobs override config-file obs.* keys.
    if (args.has("sample-every")) {
        const auto every = args.getInt("sample-every", 0);
        if (every < 0)
            cmp_fatal("--sample-every must be >= 0");
        spec.base.obs.sampleEvery = static_cast<Tick>(every);
    }
    const std::string trace_out = args.getString("trace-out", "");
    if (!trace_out.empty())
        spec.base.obs.traceEnabled = true;
    if (args.has("stats-format"))
        spec.statsFormat = statsFormatFromString(
            args.getString("stats-format", ""));
    const std::string stats_out = args.getString("stats-out", "");

    if (args.has("run-threads")) {
        const auto rt = args.getInt("run-threads", 0);
        if (rt < 0)
            cmp_fatal("--run-threads must be >= 0");
        spec.base.runThreads = static_cast<unsigned>(rt);
    }

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const auto threads = static_cast<unsigned>(
        args.getInt("threads", static_cast<std::int64_t>(hw)));
    if (threads == 0)
        cmp_fatal("--threads must be positive");

    SweepProgressPrinter progress(std::cerr);
    const bool quiet = args.getBool("quiet", false);
    if (!quiet)
        inform("sweep: ", spec.size(), " jobs on ", threads,
               " threads (", spec.workloads.size(), " workloads x ",
               spec.policies.size(), " policies x ",
               spec.outstanding.size(), " outstanding)");

    const auto start = std::chrono::steady_clock::now();
    const auto results =
        runSweep(spec, threads, quiet ? nullptr : &progress);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    const auto out = args.getString("out", "-");
    if (out == "-" || out.empty()) {
        writeSweepResultsJson(std::cout, spec, results);
    } else {
        std::ofstream os(out);
        if (!os)
            cmp_fatal("cannot write results file '", out, "'");
        writeSweepResultsJson(os, spec, results);
        if (!quiet)
            inform("sweep: results written to ", out);
    }

    if (!trace_out.empty()) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto path =
                perCellPath(trace_out, i, results.size());
            std::ofstream os(path);
            if (!os)
                cmp_fatal("cannot write trace file '", path, "'");
            const auto &r = results[i];
            writeChromeTrace(os, r.trace,
                             r.samples.empty() ? nullptr : &r.samples);
            if (!quiet)
                inform("sweep: trace written to ", path);
        }
    }

    if (spec.statsFormat != StatsFormat::None) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (stats_out.empty()) {
                std::cerr << "# stats: cell " << i << "\n"
                          << results[i].statsDump;
                continue;
            }
            const auto path =
                perCellPath(stats_out, i, results.size());
            std::ofstream os(path);
            if (!os)
                cmp_fatal("cannot write stats file '", path, "'");
            os << results[i].statsDump;
            if (!quiet)
                inform("sweep: stats written to ", path);
        }
    }

    if (args.has("bench-out")) {
        const auto path = args.getString("bench-out", "");
        std::ofstream os(path);
        if (!os)
            cmp_fatal("cannot write bench file '", path, "'");
        writeSweepBenchJson(os, spec, results, threads, wall);
        if (!quiet)
            inform("sweep: bench timing written to ", path);
    }

    if (spec.checkCoherence) {
        std::uint64_t violations = 0;
        for (const auto &r : results)
            violations += r.coherenceViolations;
        if (violations) {
            warn("sweep: ", violations,
                 " coherence invariant violations");
            return 2;
        }
    }

    std::size_t failed = 0;
    for (const auto &r : results)
        if (!r.ok)
            ++failed;
    if (failed) {
        warn("sweep: ", failed, " of ", results.size(),
             " cells failed (status \"error\" in the results)");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv, /*allow_subcommand=*/true);
    const std::string &cmd = args.subcommand();
    if (cmd.empty() || cmd == "help" || args.getBool("help", false)) {
        usage();
        return cmd.empty() && !args.getBool("help", false) ? 1 : 0;
    }
    if (cmd == "sweep") {
        try {
            return sweepMain(args);
        } catch (const SimException &e) {
            std::cerr << "error (" << toString(e.error().kind)
                      << "): " << e.error().message << "\n";
            return 1;
        }
    }
    if (cmd == "list")
        return listMain();
    cmp_fatal("unknown subcommand '", cmd,
              "' (expected sweep, list or help)");
}
