/**
 * @file
 * Pressure study: the paper's central experiment in miniature. For
 * one workload, sweep the memory-pressure knob (maximum outstanding
 * misses per thread, 1..6) across all five write-back policies and
 * report runtimes plus improvements over the baseline.
 *
 * Run:  ./examples/pressure_study --workload=TP [--refs=N]
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "common/cli.hh"
#include "sim/experiment.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::string name = args.getString("workload", "TP");
    const auto refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        benchRecordsPerThread(20000))));

    const std::vector<WbPolicy> policies = {
        WbPolicy::Wbht, WbPolicy::WbhtGlobal, WbPolicy::Snarf,
        WbPolicy::Combined};

    std::cout << "Pressure study: " << name << ", " << refs
              << " refs/thread\n\n";
    std::cout << std::left << std::setw(13) << "outstanding"
              << std::right << std::setw(12) << "baseline";
    for (const auto p : policies)
        std::cout << std::setw(14) << toString(p);
    std::cout << "\n";

    for (unsigned outstanding = 1; outstanding <= 6; ++outstanding) {
        const auto wl = workloads::byName(name, refs, 1);

        SystemConfig cfg;
        cfg.cpu.maxOutstanding = outstanding;
        cfg.policy.retry.windowCycles = 250000;
        cfg.policy.retry.threshold = 100;

        cfg.policy.policy = WbPolicy::Baseline;
        const auto base = runExperiment(cfg, wl);

        std::cout << std::left << std::setw(13) << outstanding
                  << std::right << std::setw(12) << base.execTime;
        for (const auto p : policies) {
            auto pc = p == WbPolicy::Combined
                          ? PolicyConfig::combinedDefault()
                          : PolicyConfig::make(p);
            pc.retry = cfg.policy.retry;
            cfg.policy = pc;
            const auto r = runExperiment(cfg, wl);
            std::cout << std::setw(13) << std::fixed
                      << std::setprecision(2)
                      << improvementPct(base, r) << "%";
        }
        std::cout << "\n";
    }
    std::cout << "\n(positive = % runtime improvement over the "
                 "baseline at the same pressure)\n";
    return 0;
}
