/**
 * @file
 * cmpsim: the full-featured command-line driver.
 *
 *   # paper workload, any config key as a positional override
 *   ./examples/cmpsim --workload=Trade2 --refs=30000 \
 *       policy=combined cpu.outstanding=6
 *
 *   # version-controlled experiment files
 *   ./examples/cmpsim --config=exp.cfg --workload=TP
 *
 *   # raw (pre-L1) trace file, filtered through private L1s
 *   ./examples/cmpsim --trace=/tmp/raw.trace --l1-filter
 *
 *   # dump every statistic and the effective configuration
 *   ./examples/cmpsim --workload=CPW2 --stats --dump-config
 *
 *   # sample probes every 1000 cycles, export a Perfetto trace
 *   ./examples/cmpsim --workload=thrash --sample-every=1000 \
 *       --trace-out=/tmp/cmpsim.trace.json
 */

#include <fstream>
#include <iostream>
#include <optional>

#include "common/cli.hh"
#include "common/logging.hh"
#include "l1/l1_cache.hh"
#include "obs/trace_export.hh"
#include "sim/config_io.hh"
#include "sim/experiment.hh"
#include "sim/simulation.hh"
#include "stats/sink.hh"
#include "trace/trace_io.hh"
#include "trace/workload_config.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

namespace
{

void
usage()
{
    std::cout <<
        "cmpsim -- CMP cache-hierarchy simulator (ISCA'05 repro)\n\n"
        "input (one of):\n"
        "  --workload=TP|CPW2|NotesBench|Trade2   synthetic workload\n"
        "  --trace=FILE                            trace file\n\n"
        "options:\n"
        "  --refs=N           references/thread for workloads\n"
        "  --seed=N           workload seed\n"
        "  --config=FILE      load key=value configuration\n"
        "  KEY=VALUE          positional config overrides, e.g.\n"
        "                     policy=wbht cpu.outstanding=6\n"
        "  --l1-filter        filter input through private L1s\n"
        "  --stats[=FILE]     dump all statistics as text\n"
        "  --csv[=FILE]       dump statistics as CSV\n"
        "  --json[=FILE]      dump statistics as JSON\n"
        "  --sample-every=N   sample observability probes every N\n"
        "                     cycles (0 = off)\n"
        "  --trace-out=FILE   write a Chrome trace-event (Perfetto)\n"
        "                     JSON of coherence transactions, with\n"
        "                     sampled counters when --sample-every\n"
        "  --dump-config      print the effective configuration\n"
        "  --help             this text\n\n"
        "config keys:\n";
    for (const auto &k : configKeys())
        std::cout << "  " << k << "\n";
    std::cout << "\nworkload keys (customize the synthetic "
                 "generator):\n";
    for (const auto &k : workloadConfigKeys())
        std::cout << "  " << k << "\n";
}

/** Write a stats dump to @p path, or to stdout when path=="true"
 * (the flag was given with no value). */
void
dumpStats(const stats::Group &root, const std::string &path,
          void (*writer)(const stats::Group &, std::ostream &))
{
    if (path == "true") {
        writer(root, std::cout);
    } else {
        std::ofstream os(path);
        if (!os)
            cmp_fatal("cannot write stats file '", path, "'");
        writer(root, os);
    }
}

int
realMain(const CliArgs &args)
{
    if (args.getBool("help", false)) {
        usage();
        return 0;
    }

    SystemConfig cfg;
    // Scaled retry switch suited to short synthetic runs; override
    // via config for paper-scale traces.
    cfg.policy.retry.windowCycles = 250000;
    cfg.policy.retry.threshold = 100;

    if (args.has("config")) {
        const auto loaded =
            loadConfigFile(cfg, args.getString("config", ""));
        if (!loaded.ok())
            cmp_fatal(loaded.error().message);
    }
    // Positional key=value arguments act as overrides; "wl.*" keys
    // customize the synthetic workload.
    std::vector<std::pair<std::string, std::string>> wl_overrides;
    for (const auto &pos : args.positional()) {
        const auto eq = pos.find('=');
        if (eq == std::string::npos)
            cmp_fatal("positional argument '", pos,
                      "' is not a key=value override");
        const auto key = pos.substr(0, eq);
        const auto value = pos.substr(eq + 1);
        if (isWorkloadKey(key)) {
            wl_overrides.emplace_back(key, value);
        } else {
            const auto applied = applyConfigOption(cfg, key, value);
            if (!applied.ok())
                cmp_fatal(applied.error().message);
        }
    }
    if (args.has("sample-every")) {
        const auto every = args.getInt("sample-every", 0);
        if (every < 0)
            cmp_fatal("--sample-every must be >= 0");
        cfg.obs.sampleEvery = static_cast<Tick>(every);
    }
    const std::string trace_out = args.getString("trace-out", "");
    if (!trace_out.empty())
        cfg.obs.traceEnabled = true;
    if (args.getBool("dump-config", false))
        saveConfig(cfg, std::cout);

    // Build the input bundle.
    TraceBundle bundle;
    std::string input_name;
    std::optional<TraceBundle> warmup;
    if (args.has("trace")) {
        auto records = readTraceFile(args.getString("trace", ""));
        if (!records.ok())
            cmp_fatal(records.error().message);
        bundle = splitByThread(*records, cfg.numThreads());
        input_name = args.getString("trace", "");
    } else {
        const auto refs = static_cast<std::uint64_t>(args.getInt(
            "refs",
            static_cast<std::int64_t>(benchRecordsPerThread(30000))));
        auto wl = workloads::byName(
            args.getString("workload", "TP"), refs,
            static_cast<std::uint64_t>(args.getInt("seed", 1)));
        for (const auto &[key, value] : wl_overrides)
            applyWorkloadOption(wl, key, value);
        input_name = wl.name;
        SyntheticWorkload synth(wl);
        bundle = synth.makeBundle();
        cfg.l2.lineSize = wl.lineSize;
        cfg.l3.lineSize = wl.lineSize;
        if (cfg.warmupPass)
            warmup = synth.makeBundle();
    }

    if (args.getBool("l1-filter", false)) {
        L1Params l1p;
        l1p.lineSize = cfg.l2.lineSize;
        bundle = filterThroughL1(std::move(bundle), l1p);
    }

    Simulation sim(cfg, std::move(bundle), input_name,
                   warmup ? &*warmup : nullptr);
    // A watchdog trip flushes whatever the tracer captured so the
    // hang can be inspected in Perfetto.
    if (!trace_out.empty())
        sim.setWatchdogFlushPath(trace_out);
    const ExperimentResult r = sim.run();
    const Tick t = r.execTime;

    std::cout << input_name << ": " << t << " cycles\n"
              << "  L2 hit rate        " << r.l2HitRatePct << "%\n"
              << "  L3 load hit rate   " << r.l3LoadHitRatePct << "%\n"
              << "  clean WB redundant " << r.cleanWbRedundantPct
              << "%\n"
              << "  L2 WB requests     " << r.l2WbRequests << "\n"
              << "  L3 retries         " << r.l3Retries << "\n"
              << "  off-chip accesses  " << r.offChipAccesses << "\n";
    if (sim.config().policy.usesWbht())
        std::cout << "  WBHT correct       " << r.wbhtCorrectPct
                  << "% (aborted " << r.wbAborted << ")\n";

    if (args.has("stats"))
        dumpStats(sim.system(), args.getString("stats", "true"),
                  &stats::writeText);
    if (args.has("csv"))
        dumpStats(sim.system(), args.getString("csv", "true"),
                  &stats::writeCsv);
    if (args.has("json"))
        dumpStats(sim.system(), args.getString("json", "true"),
                  &stats::writeJson);

    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os)
            cmp_fatal("cannot write trace file '", trace_out, "'");
        writeChromeTrace(os, sim.traceEvents(),
                         sim.sampled() ? &sim.samples() : nullptr);
        std::cerr << "trace written to " << trace_out << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    try {
        return realMain(args);
    } catch (const SimException &e) {
        std::cerr << "error (" << toString(e.error().kind)
                  << "): " << e.error().message << "\n";
        return 1;
    }
}
