/**
 * @file
 * Trace tooling example: synthesize a commercial-workload trace,
 * write it to disk (text or binary), read it back, and print a
 * summary. Demonstrates the trace-file interchange API -- the same
 * files can feed external tools or be produced by them and replayed
 * through CmpSystem via splitByThread().
 *
 * Run:  ./examples/trace_tools --workload=Trade2 --refs=2000 \
 *           --out=/tmp/trade2.trace --format=binary
 */

#include <iostream>
#include <map>

#include "common/cli.hh"
#include "sim/experiment.hh"
#include "trace/trace_io.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::string name = args.getString("workload", "TP");
    const auto refs =
        static_cast<std::uint64_t>(args.getInt("refs", 2000));
    const std::string path =
        args.getString("out", "/tmp/cmpcache_example.trace");
    const bool binary = args.getString("format", "binary") == "binary";

    // 1. Synthesize.
    const auto params = workloads::byName(
        name, refs, static_cast<std::uint64_t>(args.getInt("seed", 1)));
    SyntheticWorkload wl(params);
    const auto records = wl.materialize();
    std::cout << "synthesized " << records.size() << " references for "
              << name << "\n";

    // 2. Write to disk.
    const auto written = writeTraceFile(
        path, records,
        binary ? TraceFormat::Binary : TraceFormat::Text);
    if (!written.ok()) {
        std::cerr << "error: " << written.error().message << "\n";
        return 1;
    }
    std::cout << "wrote " << path << " ("
              << (binary ? "binary" : "text") << ")\n";

    // 3. Read back and verify.
    const auto loaded = readTraceFile(path);
    if (!loaded.ok()) {
        std::cerr << "error: " << loaded.error().message << "\n";
        return 1;
    }
    const auto &back = *loaded;
    if (back != records) {
        std::cerr << "round-trip mismatch!\n";
        return 1;
    }
    std::cout << "round-trip verified (" << back.size()
              << " records)\n\n";

    // 4. Summarize.
    std::map<MemOp, std::uint64_t> ops;
    std::map<ThreadId, std::uint64_t> per_thread;
    double gap_sum = 0.0;
    for (const auto &r : back) {
        ++ops[r.op];
        ++per_thread[r.tid];
        gap_sum += r.gap;
    }
    std::cout << "loads   " << ops[MemOp::Load] << "\n"
              << "stores  " << ops[MemOp::Store] << "\n"
              << "ifetch  " << ops[MemOp::IFetch] << "\n"
              << "threads " << per_thread.size() << "\n"
              << "mean gap " << gap_sum / back.size() << " cycles\n";

    // 5. Replay the file through the simulator.
    SystemConfig cfg;
    CmpSystem sys(cfg, splitByThread(back, params.numThreads));
    const Tick t = sys.run();
    std::cout << "\nreplayed through the paper machine in " << t
              << " cycles (L2 hit rate "
              << 100.0 * sys.l2HitRate() << "%)\n";
    return 0;
}
