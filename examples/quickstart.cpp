/**
 * @file
 * Quickstart: build the paper's CMP (Figure 1 / Table 3), replay a
 * small synthetic OLTP-like workload under the baseline policy and
 * under both adaptive mechanisms combined, and compare runtimes.
 *
 * Run:  ./examples/quickstart [--refs=N] [--outstanding=K]
 */

#include <iostream>

#include "common/cli.hh"
#include "sim/experiment.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t refs = args.getInt("refs", 20000);
    const unsigned outstanding =
        static_cast<unsigned>(args.getInt("outstanding", 6));

    // The workload: a scaled-down stand-in for the paper's TP trace.
    const WorkloadParams wl = workloads::tp(refs, /*seed=*/42);

    // The machine: paper defaults (8 cores x 2 SMT, 4 x 2 MB L2,
    // 16 MB off-chip L3 victim cache, bi-directional ring).
    SystemConfig cfg;
    cfg.cpu.maxOutstanding = outstanding;
    // Retry-rate switch scaled to short synthetic traces (paper rate:
    // 2,000 retries per 1M cycles on multi-billion-cycle captures).
    cfg.policy.retry.windowCycles = 250000;
    cfg.policy.retry.threshold = 100;

    std::cout << "cmpcache quickstart: " << wl.name << ", "
              << refs << " refs/thread, " << outstanding
              << " outstanding misses/thread\n\n";

    const auto retry = cfg.policy.retry;
    cfg.policy = PolicyConfig::make(WbPolicy::Baseline);
    cfg.policy.retry = retry;
    const ExperimentResult base = runExperiment(cfg, wl);
    std::cout << "baseline : " << base.execTime << " cycles, "
              << "L3 load hit " << base.l3LoadHitRatePct << "%, "
              << base.l2WbRequests << " write backs, "
              << base.l3Retries << " L3 retries\n";

    cfg.policy = PolicyConfig::combinedDefault();
    cfg.policy.retry = retry;
    const ExperimentResult comb = runExperiment(cfg, wl);
    std::cout << "combined : " << comb.execTime << " cycles, "
              << "L3 load hit " << comb.l3LoadHitRatePct << "%, "
              << comb.l2WbRequests << " write backs, "
              << comb.l3Retries << " L3 retries\n\n";

    std::cout << "WBHT + snarfing improve runtime by "
              << improvementPct(base, comb) << "%\n";
    return 0;
}
