/**
 * @file
 * Workload explorer: characterize any of the four commercial-workload
 * stand-ins (or a custom parameterization) on the paper's machine.
 *
 * Prints the behavioural fingerprint the paper reports per workload:
 * L3 load hit rate, clean-write-back redundancy, write-back volume,
 * retry rate, reuse percentages, and runtime under a chosen policy
 * and memory pressure.
 *
 * Run:  ./examples/workload_explorer [--workload=TP|CPW2|...|all]
 *          [--policy=baseline|wbht|wbht-global|snarf|combined]
 *          [--outstanding=N] [--refs=N] [--seed=N] [--stats]
 */

#include <iomanip>
#include <iostream>

#include "common/cli.hh"
#include "sim/experiment.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

namespace
{

void
printHeader()
{
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(11) << "cycles"
              << std::setw(9) << "L3hit%" << std::setw(9) << "redun%"
              << std::setw(10) << "WBreqs" << std::setw(10)
              << "L3retry" << std::setw(9) << "L2hit%" << std::setw(9)
              << "reuse%" << std::setw(9) << "offchip" << "\n";
}

void
printRow(const ExperimentResult &r)
{
    std::cout << std::left << std::setw(12) << r.workload
              << std::right << std::setw(11) << r.execTime
              << std::setw(9) << std::fixed << std::setprecision(1)
              << r.l3LoadHitRatePct << std::setw(9)
              << r.cleanWbRedundantPct << std::setw(10)
              << r.l2WbRequests << std::setw(10) << r.l3Retries
              << std::setw(9) << r.l2HitRatePct << std::setw(9)
              << r.wbReusedTotalPct << std::setw(9)
              << r.offChipAccesses << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::string which = args.getString("workload", "all");
    const std::string policy = args.getString("policy", "baseline");
    const auto refs = static_cast<std::uint64_t>(
        args.getInt("refs", static_cast<std::int64_t>(
                                benchRecordsPerThread(40000))));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    SystemConfig cfg;
    cfg.policy = policy == "combined"
                     ? PolicyConfig::combinedDefault()
                     : PolicyConfig::make(wbPolicyFromString(policy));
    cfg.cpu.maxOutstanding =
        static_cast<unsigned>(args.getInt("outstanding", 6));
    cfg.enableWbReuseTracker = true;
    cfg.policy.retry.windowCycles = static_cast<Tick>(
        args.getInt("retry-window", 250000));
    cfg.policy.retry.threshold = static_cast<std::uint64_t>(
        args.getInt("retry-threshold", 100));
    cfg.policy.wbht.entries = static_cast<std::uint64_t>(
        args.getInt("wbht-entries",
                    static_cast<std::int64_t>(cfg.policy.wbht.entries)));
    cfg.policy.snarf.entries = static_cast<std::uint64_t>(args.getInt(
        "snarf-entries",
        static_cast<std::int64_t>(cfg.policy.snarf.entries)));

    std::vector<std::string> names;
    if (which == "all")
        names = workloads::allNames();
    else
        names.push_back(which);

    std::cout << "policy=" << policy
              << " outstanding=" << cfg.cpu.maxOutstanding
              << " refs/thread=" << refs << "\n\n";
    printHeader();
    for (const auto &name : names) {
        const auto wl = workloads::byName(name, refs, seed);
        std::ostringstream stats;
        const auto r = runExperiment(
            cfg, wl, args.getBool("stats", false) ? &stats : nullptr);
        printRow(r);
        if (args.getBool("stats", false))
            std::cout << stats.str();
    }
    return 0;
}
