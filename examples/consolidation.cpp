/**
 * @file
 * Workload consolidation study: the CMP motivation scenario in which
 * different commercial workloads share one chip. Each L2's four
 * hardware threads run one workload; the cross-workload interference
 * (shared ring, shared L3, shared memory) and the adaptive policies'
 * behaviour under heterogeneity fall out of the simulation.
 *
 * Run:  ./examples/consolidation [--refs=N]
 *           [--mix=TP,Trade2,CPW2,NotesBench]
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "trace/workloads_commercial.hh"

using namespace cmpcache;

namespace
{

std::vector<std::string>
splitMix(const std::string &mix)
{
    std::vector<std::string> out;
    std::istringstream is(mix);
    std::string part;
    while (std::getline(is, part, ','))
        out.push_back(part);
    return out;
}

/** Bundle where L2 group g's threads run workload names[g]. */
TraceBundle
mixedBundle(const std::vector<std::string> &names, std::uint64_t refs,
            std::uint64_t seed, const SystemConfig &cfg)
{
    TraceBundle bundle;
    for (unsigned t = 0; t < cfg.numThreads(); ++t) {
        const auto &name = names[t / cfg.threadsPerL2()];
        auto params = workloads::byName(name, refs, seed);
        bundle.perThread.push_back(
            std::make_unique<WorkloadThreadSource>(
                params, static_cast<ThreadId>(t)));
    }
    return bundle;
}

struct RunOut
{
    /** Finish tick per L2 group (each group runs one workload). */
    std::vector<Tick> groupFinish;
    std::uint64_t retries;
    double l3Hit;
};

RunOut
run(const std::vector<std::string> &names, std::uint64_t refs,
    const PolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.policy.retry.windowCycles = 250000;
    cfg.policy.retry.threshold = 100;
    cfg.cpu.maxOutstanding = 6;

    CmpSystem sys(cfg, mixedBundle(names, refs, 1, cfg));
    sys.functionalWarmup(mixedBundle(names, refs, 1, cfg));
    sys.run();

    RunOut out;
    out.groupFinish.assign(cfg.numL2s(), 0);
    for (unsigned t = 0; t < sys.numCpus(); ++t) {
        auto &slot = out.groupFinish[t / cfg.threadsPerL2()];
        slot = std::max(slot, sys.cpu(t).finishTick());
    }
    out.retries = sys.l3().retriesIssued();
    out.l3Hit = 100.0 * sys.l3().loadHitRate();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        benchRecordsPerThread(20000))));
    const auto mix = splitMix(
        args.getString("mix", "TP,Trade2,CPW2,NotesBench"));
    if (mix.size() != 4)
        cmp_fatal("--mix needs exactly four workload names");

    std::cout << "Consolidation study: one workload per L2 ("
              << refs << " refs/thread)\n"
              << "  L2_0=" << mix[0] << " L2_1=" << mix[1]
              << " L2_2=" << mix[2] << " L2_3=" << mix[3] << "\n\n";

    // Per-workload finish times: the interesting consolidation metric
    // is how each co-runner fares, not the global maximum (the
    // longest-think-time workload always finishes last).
    std::cout << std::left << std::setw(12) << "policy";
    for (const auto &name : mix)
        std::cout << std::right << std::setw(13) << name;
    std::cout << std::setw(12) << "L3retries" << std::setw(9)
              << "L3hit%" << "\n";

    const auto base = run(mix, refs,
                          PolicyConfig::make(WbPolicy::Baseline));
    for (const auto p :
         {WbPolicy::Baseline, WbPolicy::Wbht, WbPolicy::Snarf,
          WbPolicy::Combined}) {
        const auto pc = p == WbPolicy::Combined
                            ? PolicyConfig::combinedDefault()
                            : PolicyConfig::make(p);
        const auto r =
            p == WbPolicy::Baseline ? base : run(mix, refs, pc);
        std::cout << std::fixed << std::left << std::setw(12)
                  << toString(p);
        for (unsigned g = 0; g < r.groupFinish.size(); ++g) {
            if (p == WbPolicy::Baseline) {
                std::cout << std::right << std::setw(13)
                          << r.groupFinish[g];
            } else {
                const double imp =
                    100.0
                    * (static_cast<double>(base.groupFinish[g])
                       - static_cast<double>(r.groupFinish[g]))
                    / static_cast<double>(base.groupFinish[g]);
                std::cout << std::right << std::setw(12) << std::fixed
                          << std::setprecision(2) << imp << "%";
            }
        }
        std::cout << std::setw(12) << r.retries << std::setw(9)
                  << std::setprecision(1) << r.l3Hit << "\n";
    }
    std::cout << "\n(baseline row: absolute cycles per workload; "
                 "policy rows: % improvement)\n";
    return 0;
}
