#!/usr/bin/env bash
# Build and run the paper's main grid through the parallel sweep
# runner, writing deterministic results plus a timing file into
# bench/.
#
#   scripts/run_sweep.sh                    # full commercial grid
#   scripts/run_sweep.sh --refs=2000        # quicker
#   scripts/run_sweep.sh --workloads=thrash,pingpong --check-coherence
#
# Every argument is forwarded to `cmpcache sweep`; defaults below
# apply only when the caller did not override them. Results land in
# bench/BENCH_sweep.json (deterministic; byte-identical across
# --threads values) and bench/BENCH_sweep_timing.json (wall-clock
# plus cycles/sec and eventsPerSec per cell; machine-dependent by
# nature).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target cmpcache_cli >/dev/null

mkdir -p bench

out=bench/BENCH_sweep.json
bench_out=bench/BENCH_sweep_timing.json
extra=()
for arg in "$@"; do
    case "$arg" in
    --out=*) out="${arg#--out=}" ;;
    --bench-out=*) bench_out="${arg#--bench-out=}" ;;
    *) extra+=("$arg") ;;
    esac
done

exec ./build/src/cmpcache sweep \
    --out="$out" --bench-out="$bench_out" "${extra[@]}"
