#!/usr/bin/env python3
"""Benchmark performance regression guard.

Runs a benchmark binary that emits pair-based JSON (the hotpath /
parallel microbenchmarks' cmpcache-hotpath-bench-v1 or the scaling
study's cmpcache-scale-bench-v1) and compares each pair's
current-implementation throughput (currentOpsPerSec) against the
committed baseline in bench/BENCH_*.json. Any guarded pair that drops
more than --max-drop (default 20%) below its baseline fails the
guard; pairs marked "guard": false in the baseline are reported but
never gate (the scale bench guards only its 8-core cell -- larger
machines are informational). A baseline pair may set
"metric": "speedup" to gate on the within-run legacy-vs-current
ratio instead of absolute throughput -- the parallel bench uses this
because its contract is "parallelism pays relative to this run's
serial kernel", and absolute Mops/s drifts with VM noisy-neighbor
load that the same-run ratio cancels out.

Baselines that record the machine they were measured on (a top-level
"hostCores" field, emitted by the parallel bench) only gate when the
current host reports the same core count: parallel speedup on a
16-core box and on a 1-core CI runner are different experiments, so a
mismatch downgrades every pair to informational instead of
cross-failing.

Exit codes: 0 pass, 1 regression (or broken inputs), 77 skipped.
Set CMPCACHE_SKIP_BENCH=1 to skip (slow or contended CI machines);
exit code 77 maps to ctest's SKIP_RETURN_CODE.

Usage:
    bench_guard.py --bench build/bench/hotpath \
                   --baseline bench/BENCH_hotpath.json [--max-drop=0.2]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True,
                    help="hotpath benchmark binary")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_hotpath.json")
    ap.add_argument("--max-drop", type=float, default=0.20,
                    help="max fractional throughput drop per pair")
    ap.add_argument("--fresh-out",
                    help="also write the fresh bench JSON here (for "
                         "CI artifact upload)")
    args = ap.parse_args()

    if os.environ.get("CMPCACHE_SKIP_BENCH"):
        print("bench guard skipped (CMPCACHE_SKIP_BENCH set)")
        return 77

    with open(args.baseline) as f:
        baseline = json.load(f)
    known = ("cmpcache-hotpath-bench-v1", "cmpcache-scale-bench-v1")
    if baseline.get("schema") not in known:
        print(f"unexpected baseline schema in {args.baseline}",
              file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "hotpath.json")
        subprocess.run([args.bench, f"--out={out}"],
                       check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            fresh = json.load(f)

    if args.fresh_out:
        os.makedirs(os.path.dirname(args.fresh_out) or ".",
                    exist_ok=True)
        with open(args.fresh_out, "w") as f:
            json.dump(fresh, f, indent=2)

    host_match = True
    base_cores = baseline.get("hostCores")
    fresh_cores = fresh.get("hostCores")
    if base_cores is not None and base_cores != fresh_cores:
        host_match = False
        print(f"baseline was measured on a {base_cores}-core host, "
              f"this one reports {fresh_cores}; pairs are "
              f"informational only (re-baseline on this machine to "
              f"gate)")

    base_pairs = {p["name"]: p for p in baseline["pairs"]}
    failed = False
    for pair in fresh["pairs"]:
        name = pair["name"]
        base = base_pairs.get(name)
        if base is None:
            print(f"{name}: no baseline entry (refresh "
                  f"{args.baseline})", file=sys.stderr)
            failed = True
            continue
        metric = base.get("metric", "currentOpsPerSec")
        now = pair[metric]
        ref = base[metric]
        ratio = now / ref if ref > 0 else 0.0
        status = "ok"
        if not base.get("guard", True):
            status = "informational (not guarded)"
        elif not host_match:
            status = "informational (host core count differs)"
        elif ratio < 1.0 - args.max_drop:
            status = "REGRESSION"
            failed = True
        if metric == "speedup":
            print(f"{name}: {now:.3f}x vs baseline {ref:.3f}x "
                  f"({ratio:.2f}x) {status}")
        else:
            print(f"{name}: {now / 1e6:.2f} Mops/s vs baseline "
                  f"{ref / 1e6:.2f} Mops/s ({ratio:.2f}x) {status}")

    if failed:
        print(f"hot-path throughput regressed more than "
              f"{args.max_drop:.0%} below {args.baseline}",
              file=sys.stderr)
        return 1
    print("bench guard OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
