#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full unit-test suite,
# then the end-to-end sweep suite. Mirrors what CI runs.
#
#   scripts/check.sh            # everything
#   scripts/check.sh unit       # unit tests only
#   scripts/check.sh e2e        # end-to-end (sweep) tests only
#   scripts/check.sh sanitize   # ASan+UBSan build, sanitize-labelled tests
set -euo pipefail

cd "$(dirname "$0")/.."

SELECT="${1:-all}"
case "$SELECT" in
unit | e2e | all | sanitize) ;;
*)
    echo "usage: scripts/check.sh [unit|e2e|all|sanitize]" >&2
    exit 2
    ;;
esac

if [ "$SELECT" = sanitize ]; then
    # Separate build tree: sanitizer flags poison the object cache.
    cmake -B build-sanitize -S . -DCMPCACHE_SANITIZE=ON >/dev/null
    cmake --build build-sanitize -j"$(nproc)"
    cd build-sanitize
    exec ctest --output-on-failure -j"$(nproc)" -L sanitize
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

cd build
case "$SELECT" in
unit)
    ctest --output-on-failure -j"$(nproc)" -L unit
    ;;
e2e)
    ctest --output-on-failure -j"$(nproc)" -L e2e
    ;;
all)
    ctest --output-on-failure -j"$(nproc)"
    ;;
esac
