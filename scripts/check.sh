#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full unit-test suite,
# then the end-to-end sweep suite. Mirrors what CI runs.
#
#   scripts/check.sh            # everything
#   scripts/check.sh unit       # unit tests only
#   scripts/check.sh e2e        # end-to-end (sweep) tests only
#   scripts/check.sh sanitize   # ASan+UBSan build, sanitize-labelled tests
#   scripts/check.sh tsan       # TSan build, tsan-labelled (multi-threaded)
#                               # tests plus a parallel-kernel sweep smoke
#   scripts/check.sh obs        # ASan+UBSan build, obs-labelled tests,
#                               # then a sampled sweep smoke run
#   scripts/check.sh faults     # fault/watchdog suite, then smoke runs:
#                               # an injected-fault sweep plus a faults-off
#                               # thread-count byte-identity check
#   scripts/check.sh fuzz       # the >= 50-config parallel-vs-serial
#                               # differential sweep (CMPCACHE_FUZZ gated)
#   scripts/check.sh bench      # perf-regression guards against the
#                               # committed BENCH_hotpath.json,
#                               # BENCH_parallel.json and
#                               # BENCH_scale.json baselines (skip
#                               # with CMPCACHE_SKIP_BENCH=1)
#   scripts/check.sh perf       # the parallel + hotpath guards with
#                               # CMPCACHE_FANOUT=1 forced (real
#                               # worker threads wherever it runs);
#                               # fresh bench JSON lands in build/perf
#                               # for CI artifact upload
#   scripts/check.sh serve      # streaming smoke: a 1M-record trace
#                               # through a FIFO with bounded memory
#                               # and live ingest gauges, plus open-
#                               # vs closed-loop arrival runs
#   scripts/check.sh scale      # big-machine smoke: a 32-core sweep
#                               # with invariant checking, a 64-core
#                               # watchdogged run on every layout, and
#                               # the BENCH_scale.json events/sec guard
#   scripts/check.sh chaos      # conformance-oracle fuzzing smoke: a
#                               # clean seeded campaign must pass, and
#                               # a campaign with the wb_blind_spot
#                               # mutation forced on must fail, shrink
#                               # and leave a replayable repro bundle
set -euo pipefail

cd "$(dirname "$0")/.."

SELECT="${1:-all}"
case "$SELECT" in
unit | e2e | all | sanitize | tsan | obs | faults | fuzz | bench | perf | serve | scale | chaos) ;;
*)
    echo "usage: scripts/check.sh [unit|e2e|all|sanitize|tsan|obs|faults|fuzz|bench|perf|serve|scale|chaos]" >&2
    exit 2
    ;;
esac

# Every phase asserts its own exit status: `ctest -j` (and anything
# piped) must never have a failure swallowed by later phases; the
# first failing phase stops the script with a named diagnostic.
run_phase() {
    local phase="$1"
    shift
    local status=0
    "$@" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "check.sh: phase '$phase' failed (exit $status): $*" >&2
        exit "$status"
    fi
    echo "check.sh: phase '$phase' OK"
}

if [ "$SELECT" = sanitize ] || [ "$SELECT" = obs ]; then
    # Separate build tree: sanitizer flags poison the object cache.
    run_phase configure \
        cmake -B build-sanitize -S . -DCMPCACHE_SANITIZE=ON
    run_phase build cmake --build build-sanitize -j"$(nproc)"
    if [ "$SELECT" = obs ]; then
        # The observability suite under the sanitizers, then a sampled
        # + traced sweep smoke run through the sanitized binary.
        run_phase obs-suite \
            ctest --test-dir build-sanitize --output-on-failure \
            -j"$(nproc)" -L obs
        smoke_dir="$(mktemp -d)"
        trap 'rm -rf "$smoke_dir"' EXIT
        run_phase obs-smoke \
            ./build-sanitize/src/cmpcache sweep \
            --workloads=thrash --policies=wbht --refs=2000 \
            --sample-every=5000 --trace-out="$smoke_dir/trace.json" \
            --out="$smoke_dir/results.json" --quiet
        for f in results.json trace.json; do
            python3 -m json.tool "$smoke_dir/$f" >/dev/null \
                || { echo "invalid JSON: $f" >&2; exit 1; }
        done
        grep -q '"timeSeries"' "$smoke_dir/results.json" \
            || { echo "sampled sweep emitted no timeSeries" >&2; exit 1; }
        echo "obs: sanitized suite + sampled sweep smoke OK"
        exit 0
    fi
    run_phase sanitize-suite \
        ctest --test-dir build-sanitize --output-on-failure \
        -j"$(nproc)" -L sanitize
    exit 0
fi

if [ "$SELECT" = tsan ]; then
    # ThreadSanitizer is incompatible with ASan, so it gets its own
    # mode and build tree; the tsan label selects exactly the suites
    # that exercise the worker pool (domain scheduler properties plus
    # the parallel differential harness).
    run_phase configure \
        cmake -B build-tsan -S . -DCMPCACHE_SANITIZE=thread
    run_phase build cmake --build build-tsan -j"$(nproc)"
    run_phase tsan-suite \
        ctest --test-dir build-tsan --output-on-failure \
        -j"$(nproc)" -L tsan
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    # CMPCACHE_FANOUT=1 overrides the single-core fan-out gate so the
    # smoke exercises the real worker threads wherever it runs.
    run_phase tsan-smoke \
        env CMPCACHE_FANOUT=1 \
        ./build-tsan/src/cmpcache sweep \
        --workloads=thrash --policies=baseline,combined --refs=2000 \
        --run-threads=4 --sample-every=5000 \
        --out="$smoke_dir/parallel.json" --quiet
    echo "tsan: suite + parallel sweep smoke OK"
    exit 0
fi

run_phase configure cmake -B build -S .
run_phase build cmake --build build -j"$(nproc)"

if [ "$SELECT" = bench ]; then
    if [ -n "${CMPCACHE_SKIP_BENCH:-}" ]; then
        echo "bench: skipped (CMPCACHE_SKIP_BENCH set)"
        exit 0
    fi
    run_phase bench-hotpath python3 scripts/bench_guard.py \
        --bench build/bench/hotpath \
        --baseline bench/BENCH_hotpath.json
    run_phase bench-parallel python3 scripts/bench_guard.py \
        --bench build/bench/parallel_run \
        --baseline bench/BENCH_parallel.json
    run_phase bench-scale python3 scripts/bench_guard.py \
        --bench build/bench/scale \
        --baseline bench/BENCH_scale.json
    exit 0
fi

if [ "$SELECT" = perf ]; then
    if [ -n "${CMPCACHE_SKIP_BENCH:-}" ]; then
        echo "perf: skipped (CMPCACHE_SKIP_BENCH set)"
        exit 0
    fi
    # The parallel-kernel and fast-path guards with fan-out forced on,
    # so the real worker threads run even where the runtime reports
    # one core. hostCores-mismatched baselines report informationally
    # instead of gating (scripts/bench_guard.py), so this is safe on
    # any runner; the fresh JSON is kept for artifact upload.
    run_phase perf-parallel \
        env CMPCACHE_FANOUT=1 python3 scripts/bench_guard.py \
        --bench build/bench/parallel_run \
        --baseline bench/BENCH_parallel.json \
        --fresh-out build/perf/BENCH_parallel.json
    run_phase perf-hotpath \
        env CMPCACHE_FANOUT=1 python3 scripts/bench_guard.py \
        --bench build/bench/hotpath \
        --baseline bench/BENCH_hotpath.json \
        --fresh-out build/perf/BENCH_hotpath.json
    exit 0
fi

if [ "$SELECT" = fuzz ]; then
    run_phase fuzz-suite \
        env CMPCACHE_FUZZ=1 \
        ctest --test-dir build --output-on-failure -j"$(nproc)" -L fuzz
    exit 0
fi

if [ "$SELECT" = scale ]; then
    # The topology API's scaled machines (docs/topology.md): a 32-core
    # sweep cell must pass the coherence invariant checker, and a
    # 64-core/16-L2 machine must run to completion under the stall
    # watchdog on every interconnect layout.
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    run_phase scale-32c-invariants \
        ./build/src/cmpcache sweep \
        --workloads=thrash --policies=combined --refs=2000 \
        --check-coherence --out="$smoke_dir/32c.json" --quiet \
        topology.cores=32 topology.smt=1 topology.l2s=8 \
        topology.l3_slices=8
    grep -q '"coherenceViolations": \[0\]' "$smoke_dir/32c.json" \
        || { echo "32-core sweep reported violations" >&2; exit 1; }
    for layout in single_ring dual_ring hier_ring; do
        run_phase "scale-64c-$layout" \
            ./build/src/cmpcache sweep \
            --workloads=thrash --policies=combined --refs=1000 \
            --out="$smoke_dir/64c-$layout.json" --quiet \
            topology.cores=64 topology.smt=1 topology.l2s=16 \
            topology.l3_slices=16 "topology.layout=$layout" \
            topology.rings=4 watchdog.every=50000 \
            watchdog.stall_checks=10
        if grep -q '"status"' "$smoke_dir/64c-$layout.json"; then
            echo "64-core $layout run failed" >&2
            exit 1
        fi
    done
    # The legacy machine-shape aliases still describe a runnable
    # machine (with deprecation warnings).
    run_phase scale-legacy-keys \
        ./build/src/cmpcache sweep \
        --workloads=thrash --policies=baseline --refs=1000 \
        --out="$smoke_dir/legacy.json" --quiet \
        num_l2s=2 threads_per_l2=2
    if [ -z "${CMPCACHE_SKIP_BENCH:-}" ]; then
        run_phase bench-scale python3 scripts/bench_guard.py \
            --bench build/bench/scale \
            --baseline bench/BENCH_scale.json
    else
        echo "scale: bench guard skipped (CMPCACHE_SKIP_BENCH set)"
    fi
    echo "scale: 32-core invariants + 64-core layout smoke OK"
    exit 0
fi

if [ "$SELECT" = chaos ]; then
    # Chaos fuzzing smoke (docs/robustness.md): a clean seeded
    # campaign under the conformance oracle must find nothing, and a
    # campaign with the wb_blind_spot mutation forced on must fail
    # (exit 2), shrink the failure and leave a reproducer bundle that
    # replays to the same conformance trip through the serve path.
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    run_phase chaos-suite \
        ctest --test-dir build --output-on-failure -j"$(nproc)" \
        -R 'test_version_oracle|test_chaos'
    run_phase chaos-clean \
        ./build/src/cmpcache chaos --seed=11 --samples=4 --refs=800 \
        --repro-dir="$smoke_dir/clean-repro"
    status=0
    ./build/src/cmpcache chaos --seed=3 --samples=4 --refs=400 \
        --fault-plan=wb_blind_spot:0:end \
        --repro-dir="$smoke_dir/repro" 2>"$smoke_dir/chaos.log" \
        || status=$?
    if [ "$status" -ne 2 ]; then
        echo "chaos: forced wb_blind_spot campaign exited $status (want 2)" >&2
        cat "$smoke_dir/chaos.log" >&2
        exit 1
    fi
    for f in repro_trace.txt repro.conf; do
        [ -f "$smoke_dir/repro/$f" ] \
            || { echo "chaos: reproducer bundle missing $f" >&2; exit 1; }
    done
    status=0
    ./build/src/cmpcache serve \
        --trace="$smoke_dir/repro/repro_trace.txt" \
        --config="$smoke_dir/repro/repro.conf" --quiet \
        >/dev/null 2>&1 || status=$?
    if [ "$status" -ne 2 ]; then
        echo "chaos: reproducer replay exited $status (want 2)" >&2
        exit 1
    fi
    echo "chaos: clean campaign + forced-failure reproducer smoke OK"
    exit 0
fi

if [ "$SELECT" = serve ]; then
    # End-to-end smoke of the streaming service (docs/serving.md):
    # a >= 1M-record open-ended binary trace pushed through a FIFO
    # must simulate with bounded memory and surface live ingest
    # gauges in the sampled output, and open- vs closed-loop arrival
    # runs over the same trace must both complete.
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    gen_trace() { # <path> <records> -- streaming-framed binary trace
        python3 - "$1" "$2" <<'PY'
import struct, sys
path, n = sys.argv[1], int(sys.argv[2])
with open(path, "wb") as f:
    # Open-ended framing: magic, version 1, sentinel record count.
    f.write(b"CMPT" + struct.pack("<IQ", 1, 0xFFFFFFFFFFFFFFFF))
    x, buf = 0x9E3779B97F4A7C15, bytearray()
    for i in range(n):
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        meta = (i % 16) | ((0 if x % 3 else 1) << 16)
        buf += struct.pack("<QII", x & ~63, x % 5, meta)
        if len(buf) >= 1 << 20:
            f.write(buf)
            buf = bytearray()
    f.write(buf)
PY
    }
    run_phase serve-gen-trace gen_trace "$smoke_dir/big.bin" 1000000
    mkfifo "$smoke_dir/pipe"
    cat "$smoke_dir/big.bin" >"$smoke_dir/pipe" &
    writer=$!
    run_phase serve-fifo \
        ./build/src/cmpcache serve --trace="$smoke_dir/pipe" \
        --sample-every=20000 --out="$smoke_dir/fifo.json" --quiet
    wait "$writer"
    run_phase serve-json \
        python3 -m json.tool "$smoke_dir/fifo.json" /dev/null
    for gauge in ingest.queue_depth_now ingest.rate_per_ktick; do
        grep -q "\"$gauge\"" "$smoke_dir/fifo.json" \
            || { echo "serve output sampled no $gauge gauge" >&2; exit 1; }
    done
    # Open- vs closed-loop arrival over the same (smaller) stream.
    run_phase serve-gen-small gen_trace "$smoke_dir/small.bin" 64000
    for arrival in closed open:0.05; do
        run_phase "serve-$arrival" \
            ./build/src/cmpcache serve --trace="$smoke_dir/small.bin" \
            --arrival="$arrival" --sample-every=5000 \
            --out="$smoke_dir/$arrival.json" --quiet
        grep -q '"timeSeries"' "$smoke_dir/$arrival.json" \
            || { echo "serve ($arrival) emitted no timeSeries" >&2; exit 1; }
    done
    echo "serve: FIFO 1M-record stream + arrival-model smoke OK"
    exit 0
fi

cd build
case "$SELECT" in
unit)
    run_phase unit-suite ctest --output-on-failure -j"$(nproc)" -L unit
    ;;
e2e)
    run_phase e2e-suite ctest --output-on-failure -j"$(nproc)" -L e2e
    ;;
faults)
    run_phase faults-suite \
        ctest --output-on-failure -j"$(nproc)" -L faults
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    # An injected-fault sweep must complete and surface fault.* counts
    # in the sampled series.
    run_phase faults-smoke \
        ./src/cmpcache sweep \
        --workloads=thrash --policies=wbht --refs=2000 \
        --sample-every=5000 --out="$smoke_dir/faulty.json" --quiet \
        "fault.plan=l3_retry:0:end:500" "fault.seed=3"
    grep -q 'fault.forced_l3_retries' "$smoke_dir/faulty.json" \
        || { echo "faulty sweep sampled no fault probes" >&2; exit 1; }
    # With faults off the results must be byte-identical across sweep
    # worker counts and per-run kernel worker counts, and carry no
    # fault/error artifacts at all.
    for t in 1 4; do
        run_phase "faults-clean-t$t" \
            ./src/cmpcache sweep \
            --workloads=thrash --policies=baseline,wbht --refs=2000 \
            --threads="$t" --out="$smoke_dir/clean$t.json" --quiet
    done
    cmp "$smoke_dir/clean1.json" "$smoke_dir/clean4.json" \
        || { echo "faults-off sweep differs across thread counts" >&2; exit 1; }
    for rt in 1 4; do
        run_phase "faults-clean-rt$rt" \
            ./src/cmpcache sweep \
            --workloads=thrash --policies=baseline,wbht --refs=2000 \
            --run-threads="$rt" --out="$smoke_dir/cleanrt$rt.json" \
            --quiet
        cmp "$smoke_dir/clean1.json" "$smoke_dir/cleanrt$rt.json" \
            || { echo "sweep differs with run-threads=$rt" >&2; exit 1; }
    done
    if grep -qE '"status"|fault\.' "$smoke_dir/clean1.json"; then
        echo "faults-off sweep output carries fault artifacts" >&2
        exit 1
    fi
    echo "faults: suite + injected/clean sweep smoke OK"
    ;;
all)
    run_phase full-suite ctest --output-on-failure -j"$(nproc)"
    ;;
esac
