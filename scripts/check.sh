#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full unit-test suite,
# then the end-to-end sweep suite. Mirrors what CI runs.
#
#   scripts/check.sh            # everything
#   scripts/check.sh unit       # unit tests only
#   scripts/check.sh e2e        # end-to-end (sweep) tests only
#   scripts/check.sh sanitize   # ASan+UBSan build, sanitize-labelled tests
#   scripts/check.sh obs        # ASan+UBSan build, obs-labelled tests,
#                               # then a sampled sweep smoke run
#   scripts/check.sh faults     # fault/watchdog suite, then smoke runs:
#                               # an injected-fault sweep plus a faults-off
#                               # thread-count byte-identity check
#   scripts/check.sh bench      # hot-path perf-regression guard against
#                               # the committed BENCH_hotpath.json (skip
#                               # with CMPCACHE_SKIP_BENCH=1)
set -euo pipefail

cd "$(dirname "$0")/.."

SELECT="${1:-all}"
case "$SELECT" in
unit | e2e | all | sanitize | obs | faults | bench) ;;
*)
    echo "usage: scripts/check.sh [unit|e2e|all|sanitize|obs|faults|bench]" >&2
    exit 2
    ;;
esac

if [ "$SELECT" = sanitize ] || [ "$SELECT" = obs ]; then
    # Separate build tree: sanitizer flags poison the object cache.
    cmake -B build-sanitize -S . -DCMPCACHE_SANITIZE=ON >/dev/null
    cmake --build build-sanitize -j"$(nproc)"
    if [ "$SELECT" = obs ]; then
        # The observability suite under the sanitizers, then a sampled
        # + traced sweep smoke run through the sanitized binary.
        (cd build-sanitize && ctest --output-on-failure -j"$(nproc)" -L obs)
        smoke_dir="$(mktemp -d)"
        trap 'rm -rf "$smoke_dir"' EXIT
        ./build-sanitize/src/cmpcache sweep \
            --workloads=thrash --policies=wbht --refs=2000 \
            --sample-every=5000 --trace-out="$smoke_dir/trace.json" \
            --out="$smoke_dir/results.json" --quiet
        for f in results.json trace.json; do
            python3 -m json.tool "$smoke_dir/$f" >/dev/null \
                || { echo "invalid JSON: $f" >&2; exit 1; }
        done
        grep -q '"timeSeries"' "$smoke_dir/results.json" \
            || { echo "sampled sweep emitted no timeSeries" >&2; exit 1; }
        echo "obs: sanitized suite + sampled sweep smoke OK"
        exit 0
    fi
    cd build-sanitize
    exec ctest --output-on-failure -j"$(nproc)" -L sanitize
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

if [ "$SELECT" = bench ]; then
    if [ -n "${CMPCACHE_SKIP_BENCH:-}" ]; then
        echo "bench: skipped (CMPCACHE_SKIP_BENCH set)"
        exit 0
    fi
    exec python3 scripts/bench_guard.py \
        --bench build/bench/hotpath \
        --baseline bench/BENCH_hotpath.json
fi

cd build
case "$SELECT" in
unit)
    ctest --output-on-failure -j"$(nproc)" -L unit
    ;;
e2e)
    ctest --output-on-failure -j"$(nproc)" -L e2e
    ;;
faults)
    ctest --output-on-failure -j"$(nproc)" -L faults
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    # An injected-fault sweep must complete and surface fault.* counts
    # in the sampled series.
    ./src/cmpcache sweep \
        --workloads=thrash --policies=wbht --refs=2000 \
        --sample-every=5000 --out="$smoke_dir/faulty.json" --quiet \
        "fault.plan=l3_retry:0:end:500" "fault.seed=3"
    grep -q 'fault.forced_l3_retries' "$smoke_dir/faulty.json" \
        || { echo "faulty sweep sampled no fault probes" >&2; exit 1; }
    # With faults off the results must be byte-identical across worker
    # thread counts and carry no fault/error artifacts at all.
    for t in 1 4; do
        ./src/cmpcache sweep \
            --workloads=thrash --policies=baseline,wbht --refs=2000 \
            --threads="$t" --out="$smoke_dir/clean$t.json" --quiet
    done
    cmp "$smoke_dir/clean1.json" "$smoke_dir/clean4.json" \
        || { echo "faults-off sweep differs across thread counts" >&2; exit 1; }
    if grep -qE '"status"|fault\.' "$smoke_dir/clean1.json"; then
        echo "faults-off sweep output carries fault artifacts" >&2
        exit 1
    fi
    echo "faults: suite + injected/clean sweep smoke OK"
    ;;
all)
    ctest --output-on-failure -j"$(nproc)"
    ;;
esac
