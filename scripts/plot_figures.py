#!/usr/bin/env python3
"""Turn cmpcache bench output into per-figure CSV files (and, when
gnuplot is installed, PNG plots mirroring the paper's figures).

Usage:
    python3 scripts/plot_figures.py bench_output.txt [-o outdir]

The bench binaries print self-describing tables; this script extracts
the Figure 2/3/5/7 pressure sweeps and the Figure 4/6 size sweeps.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

WORKLOADS = ["CPW2", "NotesBench", "TP", "Trade2"]

SWEEPS = {
    "fig2": "Figure 2",
    "fig3": "Figure 3",
    "fig5": "Figure 5",
    "fig7": "Figure 7",
}
SIZES = {
    "fig4": "Figure 4",
    "fig6": "Figure 6",
}


def split_sections(text):
    """Map bench name -> section text."""
    sections = {}
    current = None
    for line in text.splitlines():
        m = re.match(r"[#=]+ +(?:.*/)?(\w+)$", line)
        if m:
            current = m.group(1)
            sections[current] = []
        elif current:
            sections[current].append(line)
    return {k: "\n".join(v) for k, v in sections.items()}


def parse_table(section, first_col):
    """Parse 'first_col CPW2 NotesBench TP Trade2' numeric rows."""
    rows = []
    for line in section.splitlines():
        parts = line.split()
        if len(parts) != 5:
            continue
        try:
            key = float(parts[0])
            vals = [float(p) for p in parts[1:]]
        except ValueError:
            continue
        rows.append((key, vals))
    return rows


def write_csv(path, header, rows):
    with open(path, "w") as f:
        f.write(",".join(header) + "\n")
        for key, vals in rows:
            f.write(",".join([str(key)] + [str(v) for v in vals])
                    + "\n")
    print(f"wrote {path} ({len(rows)} rows)")


def gnuplot(csv_path, png_path, title, xlabel, ylabel, logx=False):
    if not shutil.which("gnuplot"):
        return
    cols = ", ".join(
        f"'{csv_path}' using 1:{i + 2} with linespoints "
        f"title '{w}'" for i, w in enumerate(WORKLOADS))
    script = (
        "set datafile separator ',';"
        "set key autotitle columnhead outside;"
        f"set title '{title}'; set xlabel '{xlabel}';"
        f"set ylabel '{ylabel}';"
        + ("set logscale x 2;" if logx else "")
        + f"set term pngcairo size 800,500; set output '{png_path}';"
        f"plot {cols}")
    subprocess.run(["gnuplot", "-e", script], check=False)
    if os.path.exists(png_path):
        print(f"wrote {png_path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_output")
    ap.add_argument("-o", "--outdir", default="figures")
    args = ap.parse_args()

    with open(args.bench_output) as f:
        sections = split_sections(f.read())
    os.makedirs(args.outdir, exist_ok=True)

    emitted = 0
    for name, title in SWEEPS.items():
        key = next((k for k in sections if k.startswith(name)), None)
        if not key:
            continue
        rows = parse_table(sections[key], "outstanding")
        if not rows:
            continue
        csv = os.path.join(args.outdir, f"{name}.csv")
        write_csv(csv, ["outstanding"] + WORKLOADS, rows)
        gnuplot(csv, os.path.join(args.outdir, f"{name}.png"), title,
                "max outstanding loads/thread", "% improvement")
        emitted += 1

    for name, title in SIZES.items():
        key = next((k for k in sections if k.startswith(name)), None)
        if not key:
            continue
        rows = parse_table(sections[key], "entries")
        if not rows:
            continue
        csv = os.path.join(args.outdir, f"{name}.csv")
        write_csv(csv, ["entries"] + WORKLOADS, rows)
        gnuplot(csv, os.path.join(args.outdir, f"{name}.png"), title,
                "table entries", "normalized runtime", logx=True)
        emitted += 1

    if emitted == 0:
        print("no recognizable figure sections found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
