#!/usr/bin/env python3
"""Turn cmpcache bench output into per-figure CSV files (and, when
gnuplot is installed, PNG plots mirroring the paper's figures).

Usage:
    python3 scripts/plot_figures.py bench_output.txt [-o outdir]
    python3 scripts/plot_figures.py --timeline results.json [-o outdir]

The bench binaries print self-describing tables; this script extracts
the Figure 2/3/5/7 pressure sweeps and the Figure 4/6 size sweeps.

With --timeline, the input is instead a sampled sweep results file
(`cmpcache sweep --sample-every=N`); each cell's embedded time series
becomes a CSV plus a retry-rate / WBHT-gate timeline plot (the
docs/observability.md worked example).
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

WORKLOADS = ["CPW2", "NotesBench", "TP", "Trade2"]

SWEEPS = {
    "fig2": "Figure 2",
    "fig3": "Figure 3",
    "fig5": "Figure 5",
    "fig7": "Figure 7",
}
SIZES = {
    "fig4": "Figure 4",
    "fig6": "Figure 6",
}


def split_sections(text):
    """Map bench name -> section text."""
    sections = {}
    current = None
    for line in text.splitlines():
        m = re.match(r"[#=]+ +(?:.*/)?(\w+)$", line)
        if m:
            current = m.group(1)
            sections[current] = []
        elif current:
            sections[current].append(line)
    return {k: "\n".join(v) for k, v in sections.items()}


def parse_table(section, first_col):
    """Parse 'first_col CPW2 NotesBench TP Trade2' numeric rows."""
    rows = []
    for line in section.splitlines():
        parts = line.split()
        if len(parts) != 5:
            continue
        try:
            key = float(parts[0])
            vals = [float(p) for p in parts[1:]]
        except ValueError:
            continue
        rows.append((key, vals))
    return rows


def write_csv(path, header, rows):
    with open(path, "w") as f:
        f.write(",".join(header) + "\n")
        for key, vals in rows:
            f.write(",".join([str(key)] + [str(v) for v in vals])
                    + "\n")
    print(f"wrote {path} ({len(rows)} rows)")


def gnuplot(csv_path, png_path, title, xlabel, ylabel, logx=False):
    if not shutil.which("gnuplot"):
        return
    cols = ", ".join(
        f"'{csv_path}' using 1:{i + 2} with linespoints "
        f"title '{w}'" for i, w in enumerate(WORKLOADS))
    script = (
        "set datafile separator ',';"
        "set key autotitle columnhead outside;"
        f"set title '{title}'; set xlabel '{xlabel}';"
        f"set ylabel '{ylabel}';"
        + ("set logscale x 2;" if logx else "")
        + f"set term pngcairo size 800,500; set output '{png_path}';"
        f"plot {cols}")
    subprocess.run(["gnuplot", "-e", script], check=False)
    if os.path.exists(png_path):
        print(f"wrote {png_path}")


# Channels plotted by --timeline when present in a cell's series:
# (channel, label, 1 = cumulative counter -> plot per-sample delta)
TIMELINE_CHANNELS = [
    ("retry_monitor.last_window_retries", "retry rate (last window)", 0),
    ("retry_monitor.wbht_active_now", "WBHT gate (0/1)", 0),
    ("ring.pending_now", "ring queue depth", 0),
    ("l3.incoming_queue_busy_now", "L3 WB-queue busy", 0),
    ("l2_0.wb_aborted_by_wbht", "WB aborts (delta)", 1),
]


def timeline_label(results, i):
    try:
        r = results[i]
        return f"{r['workload']}-{r['policy']}-o{r['maxOutstanding']}"
    except (IndexError, KeyError, TypeError):
        return str(i)


def plot_timelines(path, outdir):
    with open(path) as f:
        doc = json.load(f)
    series_list = doc.get("timeSeries")
    if not series_list:
        print("no timeSeries block in", path,
              "(run with --sample-every=N)", file=sys.stderr)
        return 1

    os.makedirs(outdir, exist_ok=True)
    for i, cell in enumerate(series_list):
        ticks = cell.get("ticks", [])
        series = cell.get("series", {})
        if not ticks:
            continue
        cols = [(label, series[name], delta)
                for name, label, delta in TIMELINE_CHANNELS
                if name in series]
        if not cols:
            continue
        label = timeline_label(doc.get("results", []), i)
        csv = os.path.join(outdir, f"timeline_{label}.csv")
        with open(csv, "w") as f:
            f.write(",".join(["tick"] + [c[0] for c in cols]) + "\n")
            prev = [0.0] * len(cols)
            for k, t in enumerate(ticks):
                row = [str(t)]
                for j, (_, vals, delta) in enumerate(cols):
                    v = vals[k]
                    row.append(str(v - prev[j] if delta else v))
                    prev[j] = v
                f.write(",".join(row) + "\n")
        print(f"wrote {csv} ({len(ticks)} samples)")

        if shutil.which("gnuplot"):
            png = os.path.join(outdir, f"timeline_{label}.png")
            plots = ", ".join(
                f"'{csv}' using 1:{j + 2} with steps title "
                f"'{c[0]}'" for j, c in enumerate(cols))
            script = (
                "set datafile separator ',';"
                "set key autotitle columnhead outside;"
                f"set title 'cmpcache timeline: {label}';"
                "set xlabel 'cycle'; set ylabel 'value';"
                f"set term pngcairo size 1000,500; set output '{png}';"
                f"plot {plots}")
            subprocess.run(["gnuplot", "-e", script], check=False)
            if os.path.exists(png):
                print(f"wrote {png}")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_output",
                    help="bench text output, or a sampled sweep "
                         "results JSON with --timeline")
    ap.add_argument("-o", "--outdir", default="figures")
    ap.add_argument("--timeline", action="store_true",
                    help="input is a sweep results file with a "
                         "timeSeries block; plot per-cell timelines")
    args = ap.parse_args()

    if args.timeline:
        return plot_timelines(args.bench_output, args.outdir)

    with open(args.bench_output) as f:
        sections = split_sections(f.read())
    os.makedirs(args.outdir, exist_ok=True)

    emitted = 0
    for name, title in SWEEPS.items():
        key = next((k for k in sections if k.startswith(name)), None)
        if not key:
            continue
        rows = parse_table(sections[key], "outstanding")
        if not rows:
            continue
        csv = os.path.join(args.outdir, f"{name}.csv")
        write_csv(csv, ["outstanding"] + WORKLOADS, rows)
        gnuplot(csv, os.path.join(args.outdir, f"{name}.png"), title,
                "max outstanding loads/thread", "% improvement")
        emitted += 1

    for name, title in SIZES.items():
        key = next((k for k in sections if k.startswith(name)), None)
        if not key:
            continue
        rows = parse_table(sections[key], "entries")
        if not rows:
            continue
        csv = os.path.join(args.outdir, f"{name}.csv")
        write_csv(csv, ["entries"] + WORKLOADS, rows)
        gnuplot(csv, os.path.join(args.outdir, f"{name}.png"), title,
                "table entries", "normalized runtime", logx=True)
        emitted += 1

    if emitted == 0:
        print("no recognizable figure sections found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
