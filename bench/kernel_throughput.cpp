/**
 * @file
 * Event-kernel throughput microbenchmark.
 *
 * Pits the production bucketed-wheel kernel (src/sim/event_queue.hh)
 * against the pre-overhaul heap+hash kernel, preserved verbatim in
 * src/sim/reference_event_queue.hh, across the event mixes that
 * dominate cmpcache runs:
 *
 *   steady-churn     self-rescheduling actors at small random deltas
 *                    (ring drain, CPU attempt, WB drain events)
 *   same-tick-burst  many events at one tick with mixed priorities
 *                    (request + combining + stat events of one cycle)
 *   cancel-heavy     timeout-style schedule-then-deschedule traffic
 *                    (the old kernel pays a hash insert per cancel
 *                    and a hash probe per executed event)
 *   wheel-boundary   deltas straddling the 1024-tick wheel span, so
 *                    events migrate wheel <-> far-heap constantly
 *   pooled-oneshot   fire-and-forget callbacks: EventQueue::at()'s
 *                    free-list pool vs. the new/delete-per-event
 *                    pattern the L2/L3/ring models used to have
 *
 * Usage: kernel_throughput [--ops=N] [--out=FILE]
 *
 * Emits cmpcache-kernel-bench-v1 JSON (to stdout, and to --out when
 * given); scripts/run_sweep.sh --kernel-bench refreshes the committed
 * bench/BENCH_kernel.json. Wall-clock numbers are machine-dependent;
 * the per-mode speedup ratios are the part meant for eyeballs.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"
#include "sim/reference_event_queue.hh"

namespace cmpcache
{
namespace
{

struct ModeStats
{
    std::string mode;
    std::string kernel;
    std::uint64_t fires = 0;
    std::uint64_t schedules = 0;
    std::uint64_t cancels = 0;
    double wallSeconds = 0.0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(fires) / wallSeconds
                   : 0.0;
    }

    double
    opsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(fires + schedules + cancels)
                         / wallSeconds
                   : 0.0;
    }
};

struct BucketedKernel
{
    using Queue = EventQueue;
    using Wrapper = EventFunctionWrapper;
    static constexpr const char *name = "bucketed";

    static void
    post(Queue &eq, Tick when, std::function<void()> fn)
    {
        eq.at(when, std::move(fn), "bench-oneshot");
    }
};

struct ReferenceKernel
{
    using Queue = ref::RefEventQueue;
    using Wrapper = ref::RefEventFunctionWrapper;
    static constexpr const char *name = "reference-heap";

    /** The old self-deleting per-transaction event pattern. */
    struct SelfDelete : ref::RefEvent
    {
        explicit SelfDelete(std::function<void()> f) : fn(std::move(f))
        {
        }

        void
        process() override
        {
            fn();
            delete this;
        }

        std::function<void()> fn;
    };

    static void
    post(Queue &eq, Tick when, std::function<void()> fn)
    {
        eq.schedule(new SelfDelete(std::move(fn)), when);
    }
};

class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Self-rescheduling actors at small random deltas. */
template <typename K>
ModeStats
runSteadyChurn(std::uint64_t target)
{
    typename K::Queue eq;
    constexpr unsigned NumActors = 64;
    Rng rng(42);
    ModeStats s{"steady-churn", K::name};

    std::vector<std::unique_ptr<typename K::Wrapper>> actors;
    actors.reserve(NumActors);
    const Timer t;
    for (unsigned i = 0; i < NumActors; ++i) {
        actors.push_back(std::make_unique<typename K::Wrapper>(
            [&, i] {
                ++s.fires;
                if (s.fires < target) {
                    ++s.schedules;
                    eq.schedule(actors[i].get(),
                                eq.curTick() + 1 + rng.below(16));
                }
            },
            "actor"));
    }
    for (unsigned i = 0; i < NumActors; ++i) {
        ++s.schedules;
        eq.schedule(actors[i].get(), i % 8);
    }
    eq.run();
    s.wallSeconds = t.seconds();
    return s;
}

/** Bursts of same-tick events with mixed priorities. */
template <typename K>
ModeStats
runSameTickBurst(std::uint64_t target)
{
    typename K::Queue eq;
    constexpr unsigned Burst = 1024;
    ModeStats s{"same-tick-burst", K::name};

    std::vector<std::unique_ptr<typename K::Wrapper>> events;
    events.reserve(Burst);
    for (unsigned i = 0; i < Burst; ++i) {
        const auto prio = i % 4 == 3
                              ? K::Wrapper::StatPri
                              : (i % 4 == 2 ? K::Wrapper::CombinePri
                                            : K::Wrapper::DefaultPri);
        events.push_back(std::make_unique<typename K::Wrapper>(
            [&s] { ++s.fires; }, "burst", prio));
    }

    const Timer t;
    while (s.fires < target) {
        const Tick when = eq.curTick() + 1;
        for (auto &ev : events) {
            ++s.schedules;
            eq.schedule(ev.get(), when);
        }
        eq.run();
    }
    s.wallSeconds = t.seconds();
    return s;
}

/** Timeout traffic: most events are descheduled before firing. */
template <typename K>
ModeStats
runCancelHeavy(std::uint64_t target)
{
    typename K::Queue eq;
    constexpr unsigned Timeouts = 256;
    Rng rng(7);
    ModeStats s{"cancel-heavy", K::name};

    std::vector<std::unique_ptr<typename K::Wrapper>> events;
    events.reserve(Timeouts);
    for (unsigned i = 0; i < Timeouts; ++i) {
        events.push_back(std::make_unique<typename K::Wrapper>(
            [&s] { ++s.fires; }, "timeout"));
    }

    const Timer t;
    std::uint64_t ops = 0;
    while (ops < target) {
        for (auto &ev : events) {
            ++s.schedules;
            eq.schedule(ev.get(), eq.curTick() + 32 + rng.below(32));
        }
        for (auto &ev : events) {
            // 7 of 8 timeouts are serviced in time and cancelled.
            if (rng.below(8) != 0) {
                ++s.cancels;
                eq.deschedule(ev.get());
            }
        }
        eq.run();
        ops += 2 * Timeouts;
    }
    s.wallSeconds = t.seconds();
    return s;
}

/** Deltas straddling the wheel span: wheel <-> far-heap traffic. */
template <typename K>
ModeStats
runWheelBoundary(std::uint64_t target)
{
    typename K::Queue eq;
    constexpr unsigned NumActors = 64;
    Rng rng(1234);
    ModeStats s{"wheel-boundary", K::name};

    std::vector<std::unique_ptr<typename K::Wrapper>> actors;
    actors.reserve(NumActors);
    const Timer t;
    for (unsigned i = 0; i < NumActors; ++i) {
        actors.push_back(std::make_unique<typename K::Wrapper>(
            [&, i] {
                ++s.fires;
                if (s.fires < target) {
                    const Tick delta =
                        rng.below(4) != 0
                            ? 1 + rng.below(64)
                            : EventQueue::WheelSpan + rng.below(8192);
                    ++s.schedules;
                    eq.schedule(actors[i].get(), eq.curTick() + delta);
                }
            },
            "boundary"));
    }
    for (unsigned i = 0; i < NumActors; ++i) {
        ++s.schedules;
        eq.schedule(actors[i].get(), 1 + i);
    }
    eq.run();
    s.wallSeconds = t.seconds();
    return s;
}

/** Fire-and-forget callback chains (the L2/L3/ring pattern). */
template <typename K>
ModeStats
runPooledOneShot(std::uint64_t target)
{
    typename K::Queue eq;
    constexpr unsigned Chains = 32;
    ModeStats s{"pooled-oneshot", K::name};

    std::function<void()> link = [&] {
        ++s.fires;
        if (s.fires < target) {
            ++s.schedules;
            K::post(eq, eq.curTick() + 1 + (s.fires & 7), link);
        }
    };

    const Timer t;
    for (unsigned i = 0; i < Chains; ++i) {
        ++s.schedules;
        K::post(eq, i % 4, link);
    }
    eq.run();
    s.wallSeconds = t.seconds();
    return s;
}

template <typename K>
std::vector<ModeStats>
runKernel(std::uint64_t ops)
{
    return {
        runSteadyChurn<K>(ops),    runSameTickBurst<K>(ops),
        runCancelHeavy<K>(ops),    runWheelBoundary<K>(ops),
        runPooledOneShot<K>(ops),
    };
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

void
writeJson(std::ostream &os, std::uint64_t ops,
          const std::vector<ModeStats> &bucketed,
          const std::vector<ModeStats> &reference)
{
    os << "{\n  \"schema\": \"cmpcache-kernel-bench-v1\",\n"
       << "  \"opsPerMode\": " << ops << ",\n  \"modes\": [\n";
    const auto emit = [&os](const ModeStats &s, bool last) {
        os << "    {\"mode\": \"" << s.mode << "\", \"kernel\": \""
           << s.kernel << "\", \"fires\": " << s.fires
           << ", \"schedules\": " << s.schedules
           << ", \"cancels\": " << s.cancels
           << ", \"wallSeconds\": " << jsonNum(s.wallSeconds)
           << ", \"eventsPerSec\": " << jsonNum(s.eventsPerSec())
           << ", \"opsPerSec\": " << jsonNum(s.opsPerSec()) << "}"
           << (last ? "\n" : ",\n");
    };
    for (std::size_t i = 0; i < bucketed.size(); ++i)
        emit(bucketed[i], false);
    for (std::size_t i = 0; i < reference.size(); ++i)
        emit(reference[i], i + 1 == reference.size());
    os << "  ],\n  \"speedup\": {";
    for (std::size_t i = 0; i < bucketed.size(); ++i) {
        const double ratio =
            reference[i].eventsPerSec() > 0.0
                ? bucketed[i].eventsPerSec()
                      / reference[i].eventsPerSec()
                : 0.0;
        os << (i ? ", " : "") << "\"" << bucketed[i].mode
           << "\": " << jsonNum(ratio);
    }
    os << "}\n}\n";
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    using namespace cmpcache;

    std::uint64_t ops = 2000000;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ops=", 0) == 0) {
            ops = std::stoull(arg.substr(6));
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::cerr << "usage: kernel_throughput [--ops=N]"
                         " [--out=FILE]\n";
            return 2;
        }
    }

    const auto bucketed = runKernel<BucketedKernel>(ops);
    const auto reference = runKernel<ReferenceKernel>(ops);

    writeJson(std::cout, ops, bucketed, reference);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        writeJson(f, ops, bucketed, reference);
        std::cerr << "kernel bench written to " << out << "\n";
    }
    return 0;
}
