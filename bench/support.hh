/**
 * @file
 * Shared plumbing for the table/figure reproduction benches.
 *
 * All benches use the paper's machine (Table 3 defaults) with the
 * retry-rate switch scaled to our shorter synthetic traces: the paper
 * counts 2,000 retries per 1,000,000 cycles on multi-billion-cycle
 * hardware traces; our runs are a few million cycles, so the same
 * *rate*-style gate uses a 250,000-cycle window with a threshold of
 * 100. Trace length defaults to 30,000 references per thread
 * (~480,000 total) and scales with the CMPCACHE_REFS environment
 * variable.
 */

#ifndef CMPCACHE_BENCH_SUPPORT_HH
#define CMPCACHE_BENCH_SUPPORT_HH

#include <chrono>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/workloads_commercial.hh"

namespace cmpcache
{
namespace bench
{

inline std::uint64_t
refsPerThread()
{
    return benchRecordsPerThread(60000);
}

constexpr std::uint64_t BenchSeed = 1;

/** Retry-switch parameters scaled to bench trace lengths. */
inline RetryMonitor::Params
scaledRetryParams()
{
    RetryMonitor::Params p;
    p.windowCycles = 250000;
    p.threshold = 100;
    return p;
}

/** The paper's machine with the given policy and pressure level. */
inline SystemConfig
paperConfig(PolicyConfig policy, unsigned outstanding,
            bool reuse_tracker = false)
{
    SystemConfig cfg;
    policy.retry = scaledRetryParams();
    cfg.policy = policy;
    cfg.cpu.maxOutstanding = outstanding;
    cfg.enableWbReuseTracker = reuse_tracker;
    return cfg;
}

/** Run one (workload, policy, pressure) cell. */
inline ExperimentResult
runCell(const std::string &workload, PolicyConfig policy,
        unsigned outstanding, bool reuse_tracker = false)
{
    const auto wl =
        workloads::byName(workload, refsPerThread(), BenchSeed);
    return runExperiment(paperConfig(policy, outstanding, reuse_tracker),
                         wl);
}

/** A cell result plus its wall-clock throughput. */
struct TimedCell
{
    ExperimentResult result;
    std::uint64_t eventsExecuted = 0;
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0; ///< simulated cycles per wall second
    double eventsPerSec = 0.0; ///< kernel events per wall second
};

/**
 * runCell() with timing: wall seconds plus the two throughput axes
 * the sweep bench files record (simulated cycles/sec and kernel
 * events/sec). Timing is machine-dependent; keep it out of any
 * deterministic comparison.
 */
inline TimedCell
runCellTimed(const std::string &workload, PolicyConfig policy,
             unsigned outstanding, bool reuse_tracker = false)
{
    using Clock = std::chrono::steady_clock;
    const auto wl =
        workloads::byName(workload, refsPerThread(), BenchSeed);
    TimedCell cell;
    const auto start = Clock::now();
    cell.result = runExperiment(
        paperConfig(policy, outstanding, reuse_tracker), wl, nullptr,
        [&cell](CmpSystem &sys) {
            cell.eventsExecuted = sys.eventq().numExecuted();
        });
    cell.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (cell.wallSeconds > 0.0) {
        cell.cyclesPerSec =
            static_cast<double>(cell.result.execTime)
            / cell.wallSeconds;
        cell.eventsPerSec =
            static_cast<double>(cell.eventsExecuted)
            / cell.wallSeconds;
    }
    return cell;
}

/** Print a sweep table: rows = outstanding loads, cols = workloads. */
inline void
printSweep(const std::string &title,
           const std::map<unsigned,
                          std::map<std::string, double>> &rows,
           const std::string &unit = "%")
{
    std::cout << title << "\n";
    std::cout << std::left << std::setw(14) << "outstanding";
    for (const auto &name : workloads::allNames())
        std::cout << std::right << std::setw(12) << name;
    std::cout << "\n";
    for (const auto &[outstanding, cols] : rows) {
        std::cout << std::left << std::setw(14) << outstanding;
        for (const auto &name : workloads::allNames()) {
            const auto it = cols.find(name);
            std::cout << std::right << std::setw(12) << std::fixed
                      << std::setprecision(2)
                      << (it == cols.end() ? 0.0 : it->second);
        }
        std::cout << "\n";
    }
    std::cout << "(" << unit << ")\n";
}

/**
 * Sweep memory pressure 1..6 and report the runtime improvement of
 * @p policy over the baseline for every workload (the paper's
 * Figures 2, 3, 5 and 7 are all this shape).
 */
inline std::map<unsigned, std::map<std::string, double>>
runImprovementSweep(const PolicyConfig &policy)
{
    std::map<unsigned, std::map<std::string, double>> rows;
    for (unsigned outstanding = 1; outstanding <= 6; ++outstanding) {
        for (const auto &name : workloads::allNames()) {
            const auto base = runCell(
                name, PolicyConfig::make(WbPolicy::Baseline),
                outstanding);
            const auto opt = runCell(name, policy, outstanding);
            rows[outstanding][name] = improvementPct(base, opt);
        }
    }
    return rows;
}

/**
 * Sweep a history-table size and report runtimes normalized to the
 * 512-entry configuration (Figures 4 and 6).
 */
inline std::map<std::uint64_t, std::map<std::string, double>>
runSizeSweep(WbPolicy which, const std::vector<std::uint64_t> &sizes,
             unsigned outstanding = 6)
{
    std::map<std::uint64_t, std::map<std::string, double>> rows;
    std::map<std::string, double> base512;
    for (const auto size : sizes) {
        for (const auto &name : workloads::allNames()) {
            PolicyConfig policy = PolicyConfig::make(which);
            if (which == WbPolicy::Snarf)
                policy.snarf.entries = size;
            else
                policy.wbht.entries = size;
            const auto r = runCell(name, policy, outstanding);
            if (size == sizes.front())
                base512[name] = static_cast<double>(r.execTime);
            rows[size][name] =
                static_cast<double>(r.execTime) / base512[name];
        }
    }
    return rows;
}

inline void
printSizeSweep(
    const std::string &title,
    const std::map<std::uint64_t, std::map<std::string, double>> &rows)
{
    std::cout << title << "\n";
    std::cout << std::left << std::setw(14) << "entries";
    for (const auto &name : workloads::allNames())
        std::cout << std::right << std::setw(12) << name;
    std::cout << "\n";
    for (const auto &[size, cols] : rows) {
        std::cout << std::left << std::setw(14) << size;
        for (const auto &name : workloads::allNames())
            std::cout << std::right << std::setw(12) << std::fixed
                      << std::setprecision(4) << cols.at(name);
        std::cout << "\n";
    }
    std::cout << "(runtime normalized to the smallest table)\n";
}

inline void
banner(const std::string &what)
{
    std::cout << "==============================================\n"
              << what << "\n"
              << "refs/thread=" << refsPerThread()
              << " (set CMPCACHE_REFS to scale)\n"
              << "==============================================\n\n";
}

} // namespace bench
} // namespace cmpcache

#endif // CMPCACHE_BENCH_SUPPORT_HH
