/**
 * @file
 * Reproduces paper Figure 3: the WBHT with *global* allocation --
 * every L2 snoops the combined response showing the L3 already holds
 * a clean-write-back line and allocates a WBHT entry, not just the
 * writing L2.
 *
 * Expected shape (paper): the same trends as Figure 2, with a small
 * extra gain under high memory pressure; Trade2 benefits the most
 * (about +2% over local-only allocation at 6 outstanding loads).
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 3: Runtime Improvement of Updating All WBHTs Using "
           "L3 Snoop Response");
    const auto rows =
        runImprovementSweep(PolicyConfig::make(WbPolicy::WbhtGlobal));
    printSweep("WBHT-global (32K entries) % improvement vs outstanding "
               "loads/thread",
               rows);
    return 0;
}
