/**
 * @file
 * Reproduces paper Table 5: effects of L2-to-L2 write backs
 * (snarfing) at six outstanding loads per thread.
 *
 * Paper values:
 *                        CPW2  NotesBench   TP   Trade2
 *   perf improvement      1.7%    2.4%    13.1%    5.6%
 *   off-chip reduction    1.2%    1.1%     0.8%    5.2%
 *   write backs snarfed   3.7%    2.5%     2.8%    7.0%
 *   snarfed used locally  10%     6%       16%     4%
 *   snarfed -> intervent. 16%     13%      14%     10%
 *   L2 hit rate increase  0.4%    1.2%     0.3%    3.7%
 *   L3 retry reduction    96%     94%      99%     93%
 *
 * Expected shape: every workload keeps (or slightly improves) its
 * local L2 hit rate, off-chip accesses and L3 retries fall for all
 * four, snarfed lines see double-digit combined reuse, and the
 * percentage of write backs snarfed stays in the low single digits.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Table 5: Effects of L2-to-L2 Write Backs "
           "(6 Loads Per Thread Maximum)");

    std::cout << std::left << std::setw(26) << "metric";
    for (const auto &name : workloads::allNames())
        std::cout << std::right << std::setw(12) << name;
    std::cout << "\n";

    std::map<std::string, ExperimentResult> base;
    std::map<std::string, ExperimentResult> snarf;
    for (const auto &name : workloads::allNames()) {
        base[name] =
            runCell(name, PolicyConfig::make(WbPolicy::Baseline), 6);
        snarf[name] =
            runCell(name, PolicyConfig::make(WbPolicy::Snarf), 6);
    }

    const auto print_row = [&](const std::string &label, auto fn) {
        std::cout << std::left << std::setw(26) << label;
        for (const auto &name : workloads::allNames()) {
            std::cout << std::right << std::setw(11) << std::fixed
                      << std::setprecision(1)
                      << fn(base[name], snarf[name]) << "%";
        }
        std::cout << "\n";
    };

    print_row("perf improvement",
              [](const ExperimentResult &b, const ExperimentResult &s) {
                  return improvementPct(b, s);
              });
    print_row("off-chip access reduction",
              [](const ExperimentResult &b, const ExperimentResult &s) {
                  return b.offChipAccesses
                             ? 100.0
                                   * (static_cast<double>(
                                          b.offChipAccesses)
                                      - static_cast<double>(
                                          s.offChipAccesses))
                                   / static_cast<double>(
                                       b.offChipAccesses)
                             : 0.0;
              });
    print_row("write backs snarfed",
              [](const ExperimentResult &, const ExperimentResult &s) {
                  return s.wbSnarfedPct;
              });
    print_row("snarfed used locally",
              [](const ExperimentResult &, const ExperimentResult &s) {
                  return s.snarfedUsedLocallyPct;
              });
    print_row("snarfed for interventions",
              [](const ExperimentResult &, const ExperimentResult &s) {
                  return s.snarfedForInterventionPct;
              });
    print_row("L2 hit rate increase",
              [](const ExperimentResult &b, const ExperimentResult &s) {
                  return s.l2HitRatePct - b.l2HitRatePct;
              });
    print_row("L3 retry reduction",
              [](const ExperimentResult &b, const ExperimentResult &s) {
                  return b.l3Retries
                             ? 100.0
                                   * (static_cast<double>(b.l3Retries)
                                      - static_cast<double>(
                                          s.l3Retries))
                                   / static_cast<double>(b.l3Retries)
                             : 0.0;
              });
    return 0;
}
