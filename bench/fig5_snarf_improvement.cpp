/**
 * @file
 * Reproduces paper Figure 5: percentage runtime improvement of
 * allowing L2-to-L2 write backs (snarfing, 32 K-entry snarf table)
 * over the baseline, for 1..6 outstanding loads per thread.
 *
 * Expected shape (paper): CPW2 and NotesBench stay relatively flat
 * (~2%) across pressure levels; Trade2 rises to ~6% at high pressure;
 * TP gains the most (up to ~13%) because snarfing and peer squashing
 * eliminate nearly all of its L3-issued retries.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 5: Runtime Improvement Over Baseline of Allowing "
           "L2 Snarfing");
    const auto rows =
        runImprovementSweep(PolicyConfig::make(WbPolicy::Snarf));
    printSweep("Snarfing (32K-entry table) % improvement vs "
               "outstanding loads/thread",
               rows);
    return 0;
}
