/**
 * @file
 * Reproduces paper Figure 2: percentage runtime improvement of the
 * 32 K-entry WBHT over the baseline, for 1..6 maximum outstanding
 * loads per thread.
 *
 * Expected shape (paper): no benefit (or tiny losses) at 1-2
 * outstanding loads -- the retry-rate switch keeps the WBHT idle when
 * memory pressure is low; TP alone trips the switch early and *dips
 * negative* (its low L3 hit rate makes mispredictions expensive);
 * gains grow with pressure for CPW2, TP and Trade2 (several percent
 * to low teens at 6); NotesBench stays flat near zero throughout.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 2: Runtime Improvement Over Baseline of Write Back "
           "History Table");
    const auto rows =
        runImprovementSweep(PolicyConfig::make(WbPolicy::Wbht));
    printSweep("WBHT (32K entries) % improvement vs outstanding "
               "loads/thread",
               rows);
    return 0;
}
