/**
 * @file
 * Reproduces paper Figure 4: runtime with WBHT sizes from 512 to 64 K
 * entries, normalized to the 512-entry configuration, at six
 * outstanding loads per thread.
 *
 * Expected shape (paper): performance improves monotonically with
 * table size; Trade2 is by far the most sensitive (many of its lines
 * are written back and re-referenced hundreds of times, so keeping
 * them in the table pays off), while CPW2, NotesBench and TP grow
 * much more slowly.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 4: Normalized Runtime of Varying L2 WBHT Sizes "
           "(Normalized to 512-Entry WBHT)");
    const std::vector<std::uint64_t> sizes = {512,  1024, 2048,  4096,
                                              8192, 16384, 32768,
                                              65536};
    const auto rows = runSizeSweep(WbPolicy::Wbht, sizes);
    printSizeSweep("WBHT size sweep @ 6 outstanding loads/thread",
                   rows);
    return 0;
}
