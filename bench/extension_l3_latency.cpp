/**
 * @file
 * L3-latency sensitivity: the paper's introduction motivates both
 * mechanisms with the growing gap between L3 and memory latency, and
 * its future work anticipates silicon-carrier technology bringing the
 * L3 "on-chip". This bench sweeps the L3 data-array latency --
 * on-chip (40 cycles), the paper's off-chip baseline (112, composing
 * to the 167-cycle load-to-use), and a pessimistic far L3 (224) --
 * and reports each mechanism's improvement at 6 loads/thread.
 *
 * Expected shape: the WBHT's value *grows* as the L3 gets slower
 * relative to the L2s (redundant write-back traffic holds demand
 * requests hostage for longer), while snarfing's value grows with the
 * L2-to-L3 latency ratio (each converted L3 hit saves more cycles).
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

namespace
{

double
improvementAt(const std::string &wl, WbPolicy p, Tick l3_latency)
{
    auto base_cfg = paperConfig(
        PolicyConfig::make(WbPolicy::Baseline), 6);
    base_cfg.l3.accessLatency = l3_latency;
    auto opt_cfg = paperConfig(PolicyConfig::make(p), 6);
    opt_cfg.l3.accessLatency = l3_latency;

    const auto workload =
        workloads::byName(wl, refsPerThread(), BenchSeed);
    const auto base = runExperiment(base_cfg, workload);
    const auto opt = runExperiment(opt_cfg, workload);
    return improvementPct(base, opt);
}

} // namespace

int
main()
{
    banner("Extension: sensitivity to the L3 data-array latency "
           "(on-chip vs off-chip vs far)");

    const std::vector<std::pair<const char *, Tick>> points = {
        {"on-chip (40)", 40},
        {"paper (112)", 112},
        {"far (224)", 224},
    };

    for (const auto policy : {WbPolicy::Wbht, WbPolicy::Snarf}) {
        std::cout << "--- " << toString(policy)
                  << " improvement % over baseline @6 ---\n";
        std::cout << std::left << std::setw(16) << "L3 latency";
        for (const auto &name : workloads::allNames())
            std::cout << std::right << std::setw(12) << name;
        std::cout << "\n";
        for (const auto &[label, lat] : points) {
            std::cout << std::left << std::setw(16) << label;
            for (const auto &name : workloads::allNames()) {
                std::cout << std::right << std::setw(12) << std::fixed
                          << std::setprecision(2)
                          << improvementAt(name, policy, lat);
            }
            std::cout << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
