/**
 * @file
 * Streaming-ingestion throughput microbenchmark.
 *
 * Measures the `cmpcache serve` front end in isolation from the
 * simulator, over an in-memory binary trace:
 *
 *   decode    TraceStreamParser alone -- the per-record decode floor
 *   pipeline  the full StreamIngest path (reader thread -> bounded
 *             queue -> demux -> per-thread sources), i.e. what a
 *             simulation actually pays per record on the serve path
 *   batch     readTrace + splitByThread, the materialize-everything
 *             baseline the streaming path replaces
 *
 * Usage: ingest [--records=N] [--queue=N] [--out=FILE]
 *
 * Emits cmpcache-ingest-bench-v1 JSON. Wall-clock rates are
 * machine-dependent; the pipeline/decode ratio (queue + demux
 * overhead) is the number meant for eyeballs. No committed baseline:
 * this bench informs tuning of stream.queue_capacity, it does not
 * gate CI.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"

namespace cmpcache
{
namespace
{

constexpr unsigned NumThreads = 16;

std::string
makeTrace(std::uint64_t records)
{
    std::ostringstream os;
    std::vector<TraceRecord> recs;
    recs.reserve(records);
    std::uint64_t x = 0x243f6a8885a308d3ull;
    for (std::uint64_t i = 0; i < records; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        recs.push_back({x & ~std::uint64_t(63), std::uint32_t(x % 7),
                        ThreadId(i % NumThreads),
                        x % 3 ? MemOp::Load : MemOp::Store});
    }
    writeTrace(os, recs, TraceFormat::Binary);
    return os.str();
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
benchDecode(const std::string &data)
{
    std::istringstream is(data);
    TraceStreamParser parser(is);
    const auto t0 = std::chrono::steady_clock::now();
    TraceRecord rec;
    std::uint64_t sink = 0;
    while (parser.next(rec) == TraceStreamParser::Status::Record)
        sink += rec.addr;
    const double dt = secondsSince(t0);
    if (parser.failed() || !sink)
        std::cerr << "decode bench: unexpected parse state\n";
    return double(parser.recordsRead()) / dt;
}

double
benchPipeline(const std::string &data, std::size_t queue_capacity)
{
    StreamParams params;
    params.queueCapacity = queue_capacity;
    const auto t0 = std::chrono::steady_clock::now();
    StreamIngest ingest(std::make_unique<std::istringstream>(data),
                        params, NumThreads);
    auto bundle = ingest.makeBundle();
    // Drain the way the serial kernel does: one consumer pulling
    // each thread's source in turn as its CPU events fire. (A
    // tight per-thread drain loop is not a real consumption
    // pattern -- an unfairly scheduled greedy puller would buffer
    // for everyone and trip the demux skew cap.)
    TraceRecord rec;
    bool live = true;
    while (live) {
        live = false;
        for (unsigned t = 0; t < NumThreads; ++t)
            live |= bundle.perThread[t]->next(rec);
    }
    const double dt = secondsSince(t0);
    return double(ingest.recordsIngested()) / dt;
}

double
benchBatch(const std::string &data)
{
    std::istringstream is(data);
    const auto t0 = std::chrono::steady_clock::now();
    const auto recs = readTrace(is);
    if (!recs.ok()) {
        std::cerr << "batch bench: " << recs.error().message << "\n";
        return 0;
    }
    auto bundle = splitByThread(*recs, NumThreads);
    std::uint64_t drained = 0;
    TraceRecord rec;
    for (unsigned t = 0; t < NumThreads; ++t)
        while (bundle.perThread[t]->next(rec))
            ++drained;
    const double dt = secondsSince(t0);
    return double(drained) / dt;
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    using namespace cmpcache;
    const CliArgs args(argc, argv);
    const auto records =
        std::uint64_t(args.getInt("records", 2'000'000));
    const auto queue = std::size_t(args.getInt("queue", 4096));

    const std::string data = makeTrace(records);
    const double decode = benchDecode(data);
    const double pipeline = benchPipeline(data, queue);
    const double batch = benchBatch(data);

    std::ostringstream json;
    json << "{\n"
         << "  \"schema\": \"cmpcache-ingest-bench-v1\",\n"
         << "  \"records\": " << records << ",\n"
         << "  \"queueCapacity\": " << queue << ",\n"
         << "  \"decodeRecsPerSec\": " << std::uint64_t(decode)
         << ",\n"
         << "  \"pipelineRecsPerSec\": " << std::uint64_t(pipeline)
         << ",\n"
         << "  \"batchRecsPerSec\": " << std::uint64_t(batch) << ",\n"
         << "  \"pipelineOverDecode\": " << pipeline / decode << "\n"
         << "}\n";
    std::cout << json.str();
    const auto out = args.getString("out", "");
    if (!out.empty()) {
        std::ofstream f(out);
        f << json.str();
    }
    return 0;
}
