/**
 * @file
 * Reproduces paper Table 4: effects of the Write Back History Table
 * at six outstanding loads per thread, baseline vs WBHT.
 *
 * Paper values (Base -> WBHT):
 *   CPW2:       correct n/a->63.1%, L3 hit 50.5->37.3%, WBs 73M->50M,
 *               retries 3.0M->2.6M
 *   NotesBench: correct n/a->67.3%, L3 hit 70.5->70.4%, WBs 31M->30M,
 *               retries 0.24M->0.24M
 *   TP:         correct n/a->75.3%, L3 hit 32.4->25.4%, WBs 88M->70M,
 *               retries 66M->63M
 *   Trade2:     correct n/a->60.4%, L3 hit 79.0->67.8%, WBs 133M->64M,
 *               retries 2.0M->1.5M
 *
 * Expected shape: the WBHT predicts correctly well above chance, cuts
 * write-back volume substantially for every workload except
 * NotesBench, lowers the L3 load hit rate a little (aborted write
 * backs mean some lines age out of the L3), and trims retries.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Table 4: Effects of Write Back History Table "
           "(6 Loads per Thread Maximum)");

    std::cout << std::left << std::setw(12) << "workload"
              << std::setw(8) << "config" << std::right << std::setw(12)
              << "correct%" << std::setw(12) << "L3hit%"
              << std::setw(12) << "WBreqs" << std::setw(12)
              << "L3retries" << "\n";

    for (const auto &name : workloads::allNames()) {
        const auto base =
            runCell(name, PolicyConfig::make(WbPolicy::Baseline), 6);
        const auto wbht =
            runCell(name, PolicyConfig::make(WbPolicy::Wbht), 6);

        std::cout << std::left << std::setw(12) << name << std::setw(8)
                  << "base" << std::right << std::setw(12) << "n/a"
                  << std::setw(12) << std::fixed
                  << std::setprecision(1) << base.l3LoadHitRatePct
                  << std::setw(12) << base.l2WbRequests
                  << std::setw(12) << base.l3Retries << "\n";
        std::cout << std::left << std::setw(12) << "" << std::setw(8)
                  << "wbht" << std::right << std::setw(12)
                  << wbht.wbhtCorrectPct << std::setw(12)
                  << wbht.l3LoadHitRatePct << std::setw(12)
                  << wbht.l2WbRequests << std::setw(12)
                  << wbht.l3Retries << "\n";
    }
    return 0;
}
