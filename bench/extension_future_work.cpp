/**
 * @file
 * The paper's *future work* proposals, implemented and measured:
 *
 *  1. Coarse-grained WBHT entries ("allow each entry in the table to
 *     serve multiple cache lines, reducing the size of each entry and
 *     providing greater coverage at the risk of increased prediction
 *     errors"): a small table with multi-line entries vs the same
 *     small table with per-line entries vs the full 32 K table.
 *
 *  2. History-informed L2 replacement ("new replacement algorithms
 *     that take into account information contained in the history
 *     tables"): when picking an L2 victim, prefer cold lines the WBHT
 *     knows are already valid in the L3 -- their eviction is nearly
 *     free (write back aborted, refetch at L3 latency).
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Future-work extensions: coarse WBHT entries and "
           "WBHT-informed replacement");

    std::cout << "--- 1. Coarse-grained WBHT entries (improvement % "
                 "over baseline @6) ---\n";
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(14) << "8K x 1-line"
              << std::setw(14) << "8K x 4-line" << std::setw(14)
              << "32K x 1-line" << "\n";
    for (const auto &name : workloads::allNames()) {
        const auto base =
            runCell(name, PolicyConfig::make(WbPolicy::Baseline), 6);

        PolicyConfig small = PolicyConfig::make(WbPolicy::Wbht);
        small.wbht.entries = 8192;

        PolicyConfig coarse = small;
        coarse.wbht.linesPerEntry = 4; // covers as much as 32K x 1

        PolicyConfig full = PolicyConfig::make(WbPolicy::Wbht);

        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(14)
                  << improvementPct(base, runCell(name, small, 6))
                  << std::setw(14)
                  << improvementPct(base, runCell(name, coarse, 6))
                  << std::setw(14)
                  << improvementPct(base, runCell(name, full, 6))
                  << "\n";
    }

    std::cout << "\n--- 2. WBHT-informed L2 replacement (improvement "
                 "% over baseline @6) ---\n";
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(14) << "wbht"
              << std::setw(18) << "wbht+informed" << "\n";
    for (const auto &name : workloads::allNames()) {
        const auto base =
            runCell(name, PolicyConfig::make(WbPolicy::Baseline), 6);
        PolicyConfig plain = PolicyConfig::make(WbPolicy::Wbht);
        PolicyConfig informed = plain;
        informed.wbhtInformedReplacement = true;
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(14)
                  << improvementPct(base, runCell(name, plain, 6))
                  << std::setw(18)
                  << improvementPct(base, runCell(name, informed, 6))
                  << "\n";
    }
    return 0;
}
