/**
 * @file
 * Per-reference hot-path microbenchmarks: the allocation-free,
 * devirtualized implementations vs. inline replicas of the legacy
 * patterns they replaced (heap-allocated candidate vectors,
 * std::function predicates, std::lower_bound Zipf inversion,
 * std::unordered_map transaction tables, heap-backed one-shot
 * callables), plus one whole-simulation pair: the L2-hit fast path
 * against the one-event-per-reference kernel it bypasses.
 *
 * The legacy replicas are kept deliberately faithful to the old code
 * shape so the committed BENCH_hotpath.json numbers measure the actual
 * before/after of the hot-path rework on this machine. Both sides of
 * every pair run the same seeded workload and fold results into a
 * checksum that is compared across sides, so the benchmark doubles as
 * an equivalence check and the compiler cannot dead-code either side.
 *
 * Emits cmpcache-hotpath-bench-v1 JSON (see bench/BENCH_hotpath.json
 * for the committed baseline; scripts/check.sh bench guards it).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/state.hh"
#include "common/flat_map.hh"
#include "common/inplace_function.hh"
#include "common/random.hh"
#include "mem/replacement.hh"
#include "mem/tag_array.hh"
#include "sim/result_json.hh"
#include "sim/simulation.hh"
#include "trace/workloads_commercial.hh"

namespace cmpcache
{
namespace
{

class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

struct PairStats
{
    std::string name;
    std::uint64_t ops = 0;
    double legacySeconds = 0.0;
    double currentSeconds = 0.0;

    double
    legacyOpsPerSec() const
    {
        return legacySeconds > 0.0 ? ops / legacySeconds : 0.0;
    }

    double
    currentOpsPerSec() const
    {
        return currentSeconds > 0.0 ? ops / currentSeconds : 0.0;
    }

    double
    speedup() const
    {
        return legacyOpsPerSec() > 0.0
                   ? currentOpsPerSec() / legacyOpsPerSec()
                   : 0.0;
    }
};

// ---------------------------------------------------------------------
// Pair 1: tag lookup + victim selection.
//
// Legacy replica: the pre-rework TagArray hot path -- a type-erased
// std::function predicate per findVictimAmong call, a heap-allocated
// std::vector<unsigned> of candidate ways per miss, and an LRU victim
// scan over that vector.
// ---------------------------------------------------------------------

struct LegacyTagArray
{
    LegacyTagArray(std::uint64_t size_bytes, unsigned assoc,
                   unsigned line_size)
        : assoc(assoc), lineSize(line_size)
    {
        numSets = static_cast<unsigned>(size_bytes
                                        / (assoc * line_size));
        lineShift = 0;
        while ((1u << lineShift) < line_size)
            ++lineShift;
        entries.resize(static_cast<std::size_t>(numSets) * assoc);
        stamp.assign(entries.size(), 0);
    }

    Addr
    lineAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(lineSize - 1);
    }

    unsigned
    setIndex(Addr a) const
    {
        return static_cast<unsigned>((a >> lineShift) & (numSets - 1));
    }

    TagEntry *
    lookup(Addr addr, bool touch = true)
    {
        const Addr line = lineAlign(addr);
        const unsigned set = setIndex(addr);
        for (unsigned w = 0; w < assoc; ++w) {
            TagEntry &e = entries[std::size_t{set} * assoc + w];
            if (e.valid() && e.lineAddr == line) {
                if (touch)
                    stamp[std::size_t{set} * assoc + w] = ++clock;
                return &e;
            }
        }
        return nullptr;
    }

    unsigned
    victimOf(unsigned set, const std::vector<unsigned> &cands)
    {
        unsigned best = cands.front();
        std::uint64_t best_stamp =
            stamp[std::size_t{set} * assoc + best];
        for (const unsigned w : cands) {
            const std::uint64_t s = stamp[std::size_t{set} * assoc + w];
            if (s < best_stamp) {
                best_stamp = s;
                best = w;
            }
        }
        return best;
    }

    TagEntry *
    findVictimAmong(Addr addr,
                    const std::function<bool(const TagEntry &)> &pred)
    {
        const unsigned set = setIndex(addr);
        std::vector<unsigned> cands; // the per-miss allocation
        for (unsigned w = 0; w < assoc; ++w) {
            TagEntry &e = entries[std::size_t{set} * assoc + w];
            if (pred(e)) {
                if (!e.valid())
                    return &e;
                cands.push_back(w);
            }
        }
        if (cands.empty())
            return nullptr;
        return &entries[std::size_t{set} * assoc
                        + victimOf(set, cands)];
    }

    void
    insert(TagEntry *victim, Addr addr, LineState state)
    {
        const std::size_t idx = victim - entries.data();
        victim->lineAddr = lineAlign(addr);
        victim->state = state;
        victim->snarfed = false;
        stamp[idx] = ++clock;
    }

    unsigned assoc;
    unsigned lineSize;
    unsigned lineShift;
    unsigned numSets;
    std::uint64_t clock = 0;
    std::vector<TagEntry> entries;
    std::vector<std::uint64_t> stamp;
};

PairStats
runTagVictim(std::uint64_t ops)
{
    constexpr std::uint64_t SizeBytes = 256 * 1024;
    constexpr unsigned Assoc = 8;
    constexpr unsigned LineSize = 64;
    // Working set ~2x capacity so roughly half the references miss and
    // exercise victim selection.
    constexpr std::uint64_t Lines = 2 * SizeBytes / LineSize;

    PairStats s;
    s.name = "tag-victim";
    s.ops = ops;

    std::uint64_t legacy_sum = 0;
    {
        LegacyTagArray tags(SizeBytes, Assoc, LineSize);
        Rng rng(99);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Addr addr = rng.below(Lines) * LineSize;
            if (TagEntry *e = tags.lookup(addr)) {
                legacy_sum += e->lineAddr;
                continue;
            }
            TagEntry *v = tags.findVictimAmong(
                addr, [](const TagEntry &e) {
                    return !e.valid()
                           || e.state != LineState::Modified;
                });
            legacy_sum += v->lineAddr;
            tags.insert(v, addr, LineState::Shared);
        }
        s.legacySeconds = t.seconds();
    }

    std::uint64_t current_sum = 0;
    {
        TagArray tags(SizeBytes, Assoc, LineSize,
                      makeReplacementPolicy("lru"));
        Rng rng(99);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Addr addr = rng.below(Lines) * LineSize;
            if (TagEntry *e = tags.lookup(addr)) {
                current_sum += e->lineAddr;
                continue;
            }
            TagEntry *v = tags.findVictimAmong(
                addr, [](const TagEntry &e) {
                    return !e.valid()
                           || e.state != LineState::Modified;
                });
            current_sum += v->lineAddr;
            tags.insert(v, addr, LineState::Shared);
        }
        s.currentSeconds = t.seconds();
    }

    // Same workload, same LRU semantics: the evicted-line sequence
    // must match exactly, so this doubles as a differential check.
    if (legacy_sum != current_sum) {
        std::cerr << "tag-victim equivalence FAILED: " << legacy_sum
                  << " != " << current_sum << "\n";
        std::exit(1);
    }
    return s;
}

// ---------------------------------------------------------------------
// Pair 2: Zipf CDF inversion -- std::lower_bound over the sorted table
// (legacy) vs. the branchless Eytzinger descent (current). Both sides
// consume the same u sequence and must produce identical rank sums.
// ---------------------------------------------------------------------

PairStats
runZipf(std::uint64_t ops)
{
    constexpr std::size_t N = 1u << 16;
    constexpr double Exponent = 0.9;

    PairStats s;
    s.name = "zipf";
    s.ops = ops;

    // Legacy sorted-CDF construction (identical arithmetic to
    // ZipfSampler's).
    std::vector<double> cdf(N);
    double acc = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), Exponent);
        cdf[i] = acc;
    }
    for (auto &c : cdf)
        c /= acc;

    ZipfSampler sampler(N, Exponent);

    std::uint64_t legacy_sum = 0;
    {
        Rng rng(1234);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const double u = rng.real();
            const auto it =
                std::lower_bound(cdf.begin(), cdf.end(), u);
            legacy_sum += it == cdf.end()
                              ? N - 1
                              : static_cast<std::size_t>(
                                    it - cdf.begin());
        }
        s.legacySeconds = t.seconds();
    }

    std::uint64_t current_sum = 0;
    {
        Rng rng(1234);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i)
            current_sum += sampler.sampleAt(rng.real());
        s.currentSeconds = t.seconds();
    }

    if (legacy_sum != current_sum) {
        std::cerr << "zipf equivalence FAILED: " << legacy_sum
                  << " != " << current_sum << "\n";
        std::exit(1);
    }
    return s;
}

// ---------------------------------------------------------------------
// Pair 3: per-line transaction table -- std::unordered_map (legacy)
// vs. FlatMap (current) on the pendingSnarfs-style insert/find/erase
// mix.
// ---------------------------------------------------------------------

PairStats
runFlatMapPair(std::uint64_t ops)
{
    constexpr std::uint64_t Lines = 4096;
    constexpr unsigned LineSize = 64;

    PairStats s;
    s.name = "flat-map";
    s.ops = ops;

    std::uint64_t legacy_sum = 0;
    {
        std::unordered_map<Addr, std::uint64_t> map;
        Rng rng(5);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Addr line = rng.below(Lines) * LineSize;
            switch (rng.below(4)) {
              case 0:
                map[line] = i;
                break;
              case 1:
                map.erase(line);
                break;
              default:
                if (const auto it = map.find(line); it != map.end())
                    legacy_sum += it->second;
            }
        }
        s.legacySeconds = t.seconds();
    }

    std::uint64_t current_sum = 0;
    {
        FlatMap<std::uint64_t> map;
        Rng rng(5);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Addr line = rng.below(Lines) * LineSize;
            switch (rng.below(4)) {
              case 0:
                map[line] = i;
                break;
              case 1:
                map.erase(line);
                break;
              default:
                if (const std::uint64_t *v = map.find(line))
                    current_sum += *v;
            }
        }
        s.currentSeconds = t.seconds();
    }

    if (legacy_sum != current_sum) {
        std::cerr << "flat-map equivalence FAILED: " << legacy_sum
                  << " != " << current_sum << "\n";
        std::exit(1);
    }
    return s;
}

// ---------------------------------------------------------------------
// Pair 4: one-shot callable storage -- heap-backed std::function
// (legacy) vs. InplaceFunction (current), with the ~40-byte capture
// the ring completion events carry (too big for libstdc++'s 16-byte
// std::function SBO, so the legacy side allocates per event).
// ---------------------------------------------------------------------

struct FakeReq
{
    Addr addr;
    std::uint64_t requester;
    std::uint64_t kind;
};

PairStats
runCallable(std::uint64_t ops)
{
    PairStats s;
    s.name = "oneshot-callable";
    s.ops = ops;

    std::uint64_t legacy_sum = 0;
    {
        std::function<void()> slot;
        Rng rng(77);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const FakeReq req{rng.next(), i, i & 3};
            std::uint64_t *sum = &legacy_sum;
            slot = [req, sum, i] {
                *sum += req.addr ^ (req.requester + i);
            };
            slot();
            slot = nullptr;
        }
        s.legacySeconds = t.seconds();
    }

    std::uint64_t current_sum = 0;
    {
        InplaceFunction<void(), 48> slot;
        Rng rng(77);
        const Timer t;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const FakeReq req{rng.next(), i, i & 3};
            std::uint64_t *sum = &current_sum;
            slot = InplaceFunction<void(), 48>([req, sum, i] {
                *sum += req.addr ^ (req.requester + i);
            });
            slot();
            slot.reset();
        }
        s.currentSeconds = t.seconds();
    }

    if (legacy_sum != current_sum) {
        std::cerr << "callable equivalence FAILED: " << legacy_sum
                  << " != " << current_sum << "\n";
        std::exit(1);
    }
    return s;
}

// ---------------------------------------------------------------------
// Pair 5: the L2-hit fast path -- one event per reference (legacy,
// run.fastpath=off) vs. batched hit runs that advance the CPU clock
// without touching the event kernel (current, run.fastpath=on), on a
// hit-heavy simulation where the batches get long. Both sides must
// produce byte-identical result JSON (the fast path's core contract),
// so this too is a differential check the compiler cannot elide.
// ---------------------------------------------------------------------

PairStats
runFastpath(std::uint64_t ops)
{
    // A roomy L2 over the TP working set, one single-SMT core per L2
    // cluster: most references hit and a thread's consecutive attempt
    // events meet no interleaver at the queue head, so the fast path
    // spends the run inside long batches (on the default 4-thread-
    // per-L2 machine lockstep interleaving at equal ticks keeps
    // batches near length one and the pair measures only the probe's
    // overhead). References scale with the shared op count so the
    // pair's runtime tracks its peers (long enough that the cold-miss
    // warmup stops dominating the hit-heavy steady state).
    const std::uint64_t refs = std::max<std::uint64_t>(ops / 8, 2000);

    PairStats s;
    s.name = "l2hit-fastpath";

    std::string legacy_json;
    std::string current_json;
    for (const bool fast : {false, true}) {
        SystemConfig cfg;
        cfg.runThreads = 0;
        cfg.runFastpath = fast;
        cfg.topology.cores = 4;
        cfg.topology.smt = 1;
        cfg.topology.l2s = 4;
        cfg.topology.l3Slices = 4;
        cfg.l2.sizeBytes = 256 * 1024;
        cfg.l2.assoc = 8;
        WorkloadParams wl = workloads::tp(refs, /*seed=*/7);
        wl.numThreads = cfg.numThreads();

        const Timer t;
        Simulation sim(cfg, wl);
        const ExperimentResult &result = sim.run();
        const double secs = t.seconds();

        std::ostringstream os;
        writeResultJson(os, result);
        if (fast) {
            s.currentSeconds = secs;
            current_json = os.str();
        } else {
            s.legacySeconds = secs;
            legacy_json = os.str();
            // Both sides do the same simulated work; report it in
            // events the unbatched kernel executes so the pair's
            // ops/sec axis matches the kernel benches.
            s.ops = sim.system().totalExecuted();
        }
    }

    if (legacy_json != current_json) {
        std::cerr << "l2hit-fastpath equivalence FAILED: result "
                     "JSON differs with run.fastpath on\n";
        std::exit(1);
    }
    return s;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

void
writeJson(std::ostream &os, std::uint64_t ops,
          const std::vector<PairStats> &pairs)
{
    double geo = 1.0;
    for (const auto &p : pairs)
        geo *= p.speedup();
    geo = std::pow(geo, 1.0 / pairs.size());

    os << "{\n  \"schema\": \"cmpcache-hotpath-bench-v1\",\n"
       << "  \"opsPerPair\": " << ops << ",\n  \"pairs\": [\n";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &p = pairs[i];
        os << "    {\"name\": \"" << p.name
           << "\", \"ops\": " << p.ops << ", \"legacySeconds\": "
           << jsonNum(p.legacySeconds) << ", \"currentSeconds\": "
           << jsonNum(p.currentSeconds)
           << ", \"legacyOpsPerSec\": " << jsonNum(p.legacyOpsPerSec())
           << ", \"currentOpsPerSec\": "
           << jsonNum(p.currentOpsPerSec())
           << ", \"speedup\": " << jsonNum(p.speedup()) << "}"
           << (i + 1 == pairs.size() ? "\n" : ",\n");
    }
    os << "  ],\n  \"geomeanSpeedup\": " << jsonNum(geo) << "\n}\n";
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    using namespace cmpcache;

    std::uint64_t ops = 2000000;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ops=", 0) == 0) {
            ops = std::stoull(arg.substr(6));
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::cerr << "usage: hotpath [--ops=N] [--out=FILE]\n";
            return 2;
        }
    }

    const std::vector<PairStats> pairs{
        runTagVictim(ops),
        runZipf(ops),
        runFlatMapPair(ops),
        runCallable(ops),
        runFastpath(ops),
    };

    writeJson(std::cout, ops, pairs);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        writeJson(f, ops, pairs);
        std::cerr << "hotpath bench written to " << out << "\n";
    }
    return 0;
}
