/**
 * @file
 * Parallel event-kernel throughput: one simulation of the largest
 * golden configuration (the paper's TP workload on the default
 * 4xL2 system) run under the serial kernel and under the domain
 * scheduler at increasing worker counts.
 *
 * Every run's result is folded into a checksum and compared against
 * the serial run, so the benchmark doubles as an end-to-end
 * equivalence check and neither side can be dead-coded.
 *
 * Emits cmpcache-hotpath-bench-v1 JSON so scripts/bench_guard.py can
 * guard it unchanged: each pair's legacyOpsPerSec is the serial
 * kernel's events/second and currentOpsPerSec is the domain
 * scheduler's at that worker count ("speedup" is then the parallel
 * speedup; the committed baseline lives in bench/BENCH_parallel.json).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/result_json.hh"
#include "sim/simulation.hh"
#include "trace/workloads_commercial.hh"

namespace cmpcache
{
namespace
{

struct RunStats
{
    unsigned workers = 0; ///< 0 = serial kernel
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::string resultJson;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds
                             : 0.0;
    }
};

RunStats
runOnce(unsigned workers, std::uint64_t refs)
{
    SystemConfig cfg;
    cfg.runThreads = workers;
    const WorkloadParams wl = workloads::tp(refs, /*seed=*/1);

    const auto start = std::chrono::steady_clock::now();
    Simulation sim(cfg, wl);
    const ExperimentResult &result = sim.run();
    RunStats s;
    s.workers = workers;
    s.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    s.events = sim.system().totalExecuted();
    std::ostringstream os;
    writeResultJson(os, result);
    s.resultJson = os.str();
    return s;
}

void
writeJson(std::ostream &os, std::uint64_t ops, const RunStats &serial,
          const std::vector<RunStats> &parallel)
{
    os << "{\n  \"schema\": \"cmpcache-hotpath-bench-v1\",\n"
       << "  \"opsPerPair\": " << ops << ",\n  \"pairs\": [\n";
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        const RunStats &p = parallel[i];
        const double legacy = serial.eventsPerSec();
        const double current = p.eventsPerSec();
        os << "    {\"name\": \"parallel-w" << p.workers
           << "\", \"ops\": " << p.events
           << ", \"legacySeconds\": " << serial.seconds
           << ", \"currentSeconds\": " << p.seconds
           << ", \"legacyOpsPerSec\": " << legacy
           << ", \"currentOpsPerSec\": " << current
           << ", \"speedup\": "
           << (legacy > 0.0 ? current / legacy : 0.0) << "}"
           << (i + 1 < parallel.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
benchMain(int argc, char **argv)
{
    std::uint64_t refs = 20000;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--refs=", 0) == 0) {
            refs = std::stoull(arg.substr(7));
        } else if (arg.rfind("--ops=", 0) == 0) {
            refs = std::stoull(arg.substr(6)); // guard compatibility
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::cerr << "usage: parallel_run [--refs=N] [--out=FILE]\n";
            return 2;
        }
    }

    const RunStats serial = runOnce(0, refs);
    std::vector<RunStats> parallel;
    for (const unsigned w : {1u, 2u, 4u}) {
        parallel.push_back(runOnce(w, refs));
        const RunStats &p = parallel.back();
        if (p.resultJson != serial.resultJson) {
            std::cerr << "parallel_run: result diverged from the "
                         "serial kernel at "
                      << p.workers << " workers\n";
            return 1;
        }
        if (p.events != serial.events) {
            std::cerr << "parallel_run: event count diverged at "
                      << p.workers << " workers\n";
            return 1;
        }
        std::cerr << "parallel-w" << p.workers << ": "
                  << p.eventsPerSec() / 1e6 << " Mev/s vs serial "
                  << serial.eventsPerSec() / 1e6 << " Mev/s ("
                  << p.eventsPerSec() / serial.eventsPerSec()
                  << "x)\n";
    }

    writeJson(std::cout, serial.events, serial, parallel);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        writeJson(f, serial.events, serial, parallel);
    }
    return 0;
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    return cmpcache::benchMain(argc, argv);
}
