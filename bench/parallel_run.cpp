/**
 * @file
 * Parallel event-kernel throughput: one simulation of the largest
 * golden configuration (the paper's TP workload on the default
 * 4xL2 system) run under the serial kernel and under the domain
 * scheduler at increasing worker counts.
 *
 * Every run's result is folded into a checksum and compared against
 * the serial run, so the benchmark doubles as an end-to-end
 * equivalence check and neither side can be dead-coded.
 *
 * Emits cmpcache-hotpath-bench-v1 JSON so scripts/bench_guard.py can
 * guard it unchanged: each pair's legacyOpsPerSec is the serial
 * kernel's events/second and currentOpsPerSec is the domain
 * scheduler's at that worker count ("speedup" is then the parallel
 * speedup; the committed baseline lives in bench/BENCH_parallel.json).
 * The top-level hostCores field records the measuring machine so the
 * guard can refuse to cross-fail baselines taken on a different
 * core count, and every scheduler-backed pair carries the per-phase
 * wall breakdown (core / barrier / replay / global / renumber) plus
 * the round counters, so a speedup regression points at the phase
 * that ate it. Every pair carries "metric": "speedup" so the guard
 * gates on the within-run parallel-vs-serial ratio (the contract is
 * "parallelism pays", and the same-run ratio cancels VM
 * noisy-neighbor drift that absolute Mops/s does not), and pairs
 * that oversubscribe the host (more workers than cores, e.g. forced
 * fan-out on a one-core container) are emitted with "guard": false
 * -- their wall clock is scheduler-thrash noise, unguardable even
 * against a same-host baseline.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/domain_scheduler.hh"
#include "sim/result_json.hh"
#include "sim/simulation.hh"
#include "trace/workloads_commercial.hh"

namespace cmpcache
{
namespace
{

struct RunStats
{
    unsigned workers = 0; ///< 0 = serial kernel
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::string resultJson;
    bool hasPhases = false; ///< scheduler-backed run (workers >= 2)
    DomainScheduler::PhaseStats phases;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds
                             : 0.0;
    }
};

RunStats
runOnce(unsigned workers, std::uint64_t refs)
{
    SystemConfig cfg;
    cfg.runThreads = workers;
    // Phase-timing gauges ride on the observability switch; the
    // serial run has no scheduler, so its result is untouched.
    cfg.obs.schedGauges = true;
    const WorkloadParams wl = workloads::tp(refs, /*seed=*/1);

    // Best-of-3 against VM noisy-neighbor drift; every repeat must
    // reproduce the first result byte for byte, so the repeats
    // double as a same-binary determinism check.
    RunStats best;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        Simulation sim(cfg, wl);
        const ExperimentResult &result = sim.run();
        RunStats s;
        s.workers = workers;
        s.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        s.events = sim.system().totalExecuted();
        if (const DomainScheduler *sched =
                sim.system().domainScheduler()) {
            s.hasPhases = true;
            s.phases = sched->phaseStats();
        }
        std::ostringstream os;
        writeResultJson(os, result);
        s.resultJson = os.str();
        if (rep > 0 && s.resultJson != best.resultJson) {
            std::cerr << "parallel_run: repeat diverged at "
                      << workers << " workers\n";
            std::exit(1);
        }
        if (rep == 0 || s.seconds < best.seconds)
            best = s;
    }
    return best;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

void
writePhases(std::ostream &os, const DomainScheduler::PhaseStats &ps)
{
    os << ", \"phases\": {\"rounds\": " << ps.rounds
       << ", \"fanOutRounds\": " << ps.fanOutRounds
       << ", \"soloRounds\": " << ps.soloRounds
       << ", \"renumberSorts\": " << ps.renumberSorts
       << ", \"birthRecords\": " << ps.birthRecords
       << ", \"coreSeconds\": " << jsonNum(ps.coreSeconds)
       << ", \"barrierSeconds\": " << jsonNum(ps.barrierSeconds)
       << ", \"replaySeconds\": " << jsonNum(ps.replaySeconds)
       << ", \"globalSeconds\": " << jsonNum(ps.globalSeconds)
       << ", \"renumberSeconds\": " << jsonNum(ps.renumberSeconds)
       << "}";
}

void
writeJson(std::ostream &os, std::uint64_t ops, const RunStats &serial,
          const std::vector<RunStats> &parallel)
{
    os << "{\n  \"schema\": \"cmpcache-hotpath-bench-v1\",\n"
       << "  \"hostCores\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"opsPerPair\": " << ops << ",\n  \"pairs\": [\n";
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        const RunStats &p = parallel[i];
        const double legacy = serial.eventsPerSec();
        const double current = p.eventsPerSec();
        os << "    {\"name\": \"parallel-w" << p.workers
           << "\", \"ops\": " << p.events
           << ", \"legacySeconds\": " << serial.seconds
           << ", \"currentSeconds\": " << p.seconds
           << ", \"legacyOpsPerSec\": " << legacy
           << ", \"currentOpsPerSec\": " << current
           << ", \"speedup\": "
           << (legacy > 0.0 ? current / legacy : 0.0)
           << ", \"metric\": \"speedup\"";
        if (p.workers > std::thread::hardware_concurrency())
            os << ", \"guard\": false";
        if (p.hasPhases)
            writePhases(os, p.phases);
        os << "}" << (i + 1 < parallel.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
benchMain(int argc, char **argv)
{
    std::uint64_t refs = 20000;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--refs=", 0) == 0) {
            refs = std::stoull(arg.substr(7));
        } else if (arg.rfind("--ops=", 0) == 0) {
            refs = std::stoull(arg.substr(6)); // guard compatibility
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::cerr << "usage: parallel_run [--refs=N] [--out=FILE]\n";
            return 2;
        }
    }

    const RunStats serial = runOnce(0, refs);
    std::vector<RunStats> parallel;
    for (const unsigned w : {1u, 2u, 4u}) {
        parallel.push_back(runOnce(w, refs));
        const RunStats &p = parallel.back();
        if (p.resultJson != serial.resultJson) {
            std::cerr << "parallel_run: result diverged from the "
                         "serial kernel at "
                      << p.workers << " workers\n";
            return 1;
        }
        if (p.events != serial.events) {
            std::cerr << "parallel_run: event count diverged at "
                      << p.workers << " workers\n";
            return 1;
        }
        std::cerr << "parallel-w" << p.workers << ": "
                  << p.eventsPerSec() / 1e6 << " Mev/s vs serial "
                  << serial.eventsPerSec() / 1e6 << " Mev/s ("
                  << p.eventsPerSec() / serial.eventsPerSec()
                  << "x)\n";
        if (p.hasPhases) {
            const auto &ps = p.phases;
            std::cerr << "  rounds=" << ps.rounds << " (solo "
                      << ps.soloRounds << ", fan-out "
                      << ps.fanOutRounds << ", sorts "
                      << ps.renumberSorts << ") core="
                      << ps.coreSeconds << "s barrier="
                      << ps.barrierSeconds << "s replay="
                      << ps.replaySeconds << "s global="
                      << ps.globalSeconds << "s renumber="
                      << ps.renumberSeconds << "s\n";
        }
    }

    writeJson(std::cout, serial.events, serial, parallel);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        writeJson(f, serial.events, serial, parallel);
    }
    return 0;
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    return cmpcache::benchMain(argc, argv);
}
