/**
 * @file
 * Reproduces paper Table 2: write-back reuse statistics -- the
 * percentage of L2 write backs whose line is demanded again later,
 * as a fraction of all write backs attempted and of write backs
 * accepted by the L3.
 *
 * Paper values (% total / % accepted): CPW2 27.1/38.4,
 * NotesBench 33.9/53.2, TP 15.5/18.6, Trade2 28.9/58.7.
 * Expected shape: substantial reuse everywhere, TP lowest; the
 * accepted-only percentage always exceeds the total percentage.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Table 2: Write Back Reuse Statistics");

    struct PaperRow
    {
        double total;
        double accepted;
    };
    const std::map<std::string, PaperRow> paper = {
        {"CPW2", {27.1, 38.4}},
        {"NotesBench", {33.9, 53.2}},
        {"TP", {15.5, 18.6}},
        {"Trade2", {28.9, 58.7}},
    };

    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(11) << "%total"
              << std::setw(13) << "%accepted" << std::setw(14)
              << "paper-total" << std::setw(14) << "paper-acc"
              << "\n";
    for (const auto &name : workloads::allNames()) {
        const auto r = runCell(
            name, PolicyConfig::make(WbPolicy::Baseline), 6, true);
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::setw(11) << std::fixed
                  << std::setprecision(1) << r.wbReusedTotalPct
                  << std::setw(13) << r.wbReusedAcceptedPct
                  << std::setw(14) << paper.at(name).total
                  << std::setw(14) << paper.at(name).accepted << "\n";
    }
    return 0;
}
