/**
 * @file
 * Reproduces paper Figure 7: both mechanisms combined, each table
 * halved to 16 K entries so the total space matches the individual
 * 32 K configurations.
 *
 * Expected shape (paper): the benefits are *not additive*; Trade2's
 * combined gain falls short of its WBHT-only gain under high
 * pressure but beats it at low pressure (snarfing helps where the
 * retry switch keeps the WBHT off); TP does better combined than
 * under either mechanism alone, despite the halved tables.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 7: Runtime Improvement Over Baseline of Combined "
           "Tables (16K + 16K entries)");
    const auto rows =
        runImprovementSweep(PolicyConfig::combinedDefault());
    printSweep("Combined % improvement vs outstanding loads/thread",
               rows);
    return 0;
}
