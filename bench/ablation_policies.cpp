/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond what
 * the paper itself sweeps:
 *
 *  1. Retry-rate switch: WBHT always-on vs gated (the paper's
 *     section 2.2 motivation -- always-on should hurt at low memory
 *     pressure).
 *  2. Snarf victim choice: Invalid-only vs Invalid+Shared (the paper
 *     argues invalid space alone is insufficient).
 *  3. Snarf insertion position: MRU (default) vs LRU at the
 *     recipient ("managing the LRU information at the recipient
 *     cache").
 *  4. Retry-switch threshold sensitivity.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

namespace
{

double
improvementVsBaseline(const std::string &wl, const PolicyConfig &p,
                      unsigned outstanding)
{
    const auto base = runCell(
        wl, PolicyConfig::make(WbPolicy::Baseline), outstanding);
    const auto opt = runCell(wl, p, outstanding);
    return improvementPct(base, opt);
}

} // namespace

int
main()
{
    banner("Ablations: retry switch, snarf victim choice, snarf "
           "insertion, switch threshold");

    std::cout << "--- 1. WBHT retry-rate switch (improvement %, "
                 "low vs high pressure) ---\n";
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(14) << "gated@1"
              << std::setw(14) << "always@1" << std::setw(14)
              << "gated@6" << std::setw(14) << "always@6" << "\n";
    for (const auto &name : workloads::allNames()) {
        PolicyConfig gated = PolicyConfig::make(WbPolicy::Wbht);
        PolicyConfig always = gated;
        always.useRetrySwitch = false;
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(14)
                  << improvementVsBaseline(name, gated, 1)
                  << std::setw(14)
                  << improvementVsBaseline(name, always, 1)
                  << std::setw(14)
                  << improvementVsBaseline(name, gated, 6)
                  << std::setw(14)
                  << improvementVsBaseline(name, always, 6) << "\n";
    }

    std::cout << "\n--- 2. Snarf victim choice (improvement % @6) "
                 "---\n";
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(16) << "invalid-only"
              << std::setw(16) << "invalid+shared" << "\n";
    for (const auto &name : workloads::allNames()) {
        PolicyConfig inv_only = PolicyConfig::make(WbPolicy::Snarf);
        inv_only.snarfSharedVictims = false;
        PolicyConfig with_shared = PolicyConfig::make(WbPolicy::Snarf);
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(16)
                  << improvementVsBaseline(name, inv_only, 6)
                  << std::setw(16)
                  << improvementVsBaseline(name, with_shared, 6)
                  << "\n";
    }

    std::cout << "\n--- 3. Snarf insertion position (improvement % "
                 "@6) ---\n";
    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(12) << "MRU" << std::setw(12)
              << "LRU" << "\n";
    for (const auto &name : workloads::allNames()) {
        PolicyConfig mru = PolicyConfig::make(WbPolicy::Snarf);
        PolicyConfig lru = mru;
        lru.snarfInsert = InsertPos::Lru;
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(12)
                  << improvementVsBaseline(name, mru, 6)
                  << std::setw(12)
                  << improvementVsBaseline(name, lru, 6) << "\n";
    }

    std::cout << "\n--- 4. Retry-switch threshold sweep (TP "
                 "improvement %) ---\n";
    std::cout << std::left << std::setw(12) << "threshold"
              << std::right << std::setw(10) << "@2" << std::setw(10)
              << "@6" << "\n";
    for (const std::uint64_t thr : {25ull, 100ull, 400ull, 1600ull}) {
        PolicyConfig p = PolicyConfig::make(WbPolicy::Wbht);
        p.retry.threshold = thr; // window applied by paperConfig()...
        // paperConfig overwrites retry params; run directly instead.
        auto run = [&](unsigned outstanding) {
            SystemConfig cfg = paperConfig(p, outstanding);
            cfg.policy.retry.threshold = thr;
            const auto wl = workloads::byName("TP", refsPerThread(),
                                              BenchSeed);
            const auto opt = runExperiment(cfg, wl);
            const auto base = runCell(
                "TP", PolicyConfig::make(WbPolicy::Baseline),
                outstanding);
            return improvementPct(base, opt);
        };
        std::cout << std::left << std::setw(12) << thr << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(10) << run(2) << std::setw(10)
                  << run(6) << "\n";
    }
    return 0;
}
