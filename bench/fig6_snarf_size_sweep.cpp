/**
 * @file
 * Reproduces paper Figure 6: runtime with snarf-table sizes from 512
 * entries up, normalized to the 512-entry configuration, at six
 * outstanding loads per thread.
 *
 * Expected shape (paper): table size matters much less than for the
 * WBHT ("little impact beyond a certain point"); Trade2 again shows
 * the most sensitivity but improves only ~4.5% even at 64 K entries.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Figure 6: Runtime of Varying L2 Snarf Table Sizes "
           "(Normalized to 512-Entry Snarf Table)");
    const std::vector<std::uint64_t> sizes = {512,  1024, 2048,  4096,
                                              8192, 16384, 32768,
                                              65536};
    const auto rows = runSizeSweep(WbPolicy::Snarf, sizes);
    printSizeSweep("Snarf-table size sweep @ 6 outstanding "
                   "loads/thread",
                   rows);
    return 0;
}
