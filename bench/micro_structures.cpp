/**
 * @file
 * google-benchmark microbenchmarks of the core data structures: the
 * history table (WBHT / snarf table substrate), the set-associative
 * tag array, the event queue, and the Zipf sampler that drives the
 * workload generators.
 */

#include <benchmark/benchmark.h>

#include "core/history_table.hh"
#include "common/random.hh"
#include "mem/tag_array.hh"
#include "sim/event_queue.hh"

using namespace cmpcache;

namespace
{

void
BM_HistoryTableLookup(benchmark::State &state)
{
    HistoryTable table(32768, 16, 128);
    Rng rng(1);
    for (int i = 0; i < 32768; ++i)
        table.allocate(rng.next() << 7);
    Rng probe(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.contains(probe.next() << 7));
    }
}
BENCHMARK(BM_HistoryTableLookup);

void
BM_HistoryTableAllocate(benchmark::State &state)
{
    HistoryTable table(static_cast<std::uint64_t>(state.range(0)), 16,
                       128);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.allocate(rng.next() << 7));
    }
}
BENCHMARK(BM_HistoryTableAllocate)->Arg(512)->Arg(32768)->Arg(65536);

void
BM_TagArrayLookupHit(benchmark::State &state)
{
    TagArray tags(2 * 1024 * 1024, 8, 128,
                  makeReplacementPolicy("lru"));
    // Fill the array with a dense footprint so probes hit.
    for (Addr a = 0; a < 2 * 1024 * 1024; a += 128)
        tags.insert(tags.findVictim(a), a, LineState::Shared);
    Rng probe(5);
    for (auto _ : state) {
        const Addr a = (probe.next() % (2 * 1024 * 1024)) & ~Addr{127};
        benchmark::DoNotOptimize(tags.lookup(a));
    }
}
BENCHMARK(BM_TagArrayLookupHit);

void
BM_TagArrayFillEvict(benchmark::State &state)
{
    TagArray tags(64 * 1024, 8, 128, makeReplacementPolicy("lru"));
    Rng rng(7);
    for (auto _ : state) {
        const Addr a = (rng.next() % (16 * 1024 * 1024)) & ~Addr{127};
        TagEntry *v = tags.findVictim(a);
        tags.insert(v, a, LineState::Shared);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_TagArrayFillEvict);

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    struct Nop : Event
    {
        void process() override {}
    } nop;
    Rng rng(11);
    for (auto _ : state) {
        eq.schedule(&nop, eq.curTick() + 1 + rng.below(16));
        eq.step();
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(static_cast<std::size_t>(state.range(0)), 0.8);
    Rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(z.sample(rng));
    }
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(32768);

} // namespace

BENCHMARK_MAIN();
