/**
 * @file
 * Reproduces paper Table 1: percentage of clean L2 write backs that
 * are already valid in the L3 cache (baseline system, 6 outstanding
 * loads per thread).
 *
 * Paper values: CPW2 60.0%, NotesBench 59.1%, TP 42.1%, Trade2 79.1%.
 * Expected shape: TP lowest, Trade2 highest, CPW2 ~ NotesBench in the
 * middle -- i.e. more than half of all clean write backs are
 * redundant for three of the four workloads.
 */

#include "support.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

int
main()
{
    banner("Table 1: Percentage of Clean L2 Write Backs Already "
           "Present in the L3 Cache");

    const std::map<std::string, double> paper = {
        {"CPW2", 60.0},
        {"NotesBench", 59.1},
        {"TP", 42.1},
        {"Trade2", 79.1},
    };

    std::cout << std::left << std::setw(12) << "workload"
              << std::right << std::setw(12) << "measured"
              << std::setw(12) << "paper" << "\n";
    for (const auto &name : workloads::allNames()) {
        const auto r =
            runCell(name, PolicyConfig::make(WbPolicy::Baseline), 6);
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::setw(11) << std::fixed
                  << std::setprecision(1) << r.cleanWbRedundantPct
                  << "%" << std::setw(11) << paper.at(name) << "%\n";
    }
    return 0;
}
