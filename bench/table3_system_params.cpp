/**
 * @file
 * Paper Table 3: the simulated system parameters. Prints the default
 * SystemConfig side by side with the paper's values, and verifies the
 * contention-free load-to-use latencies the ring/controller timing
 * parameters compose to.
 */

#include "support.hh"

#include "common/logging.hh"
#include "sim/cmp_system.hh"

using namespace cmpcache;
using namespace cmpcache::bench;

namespace
{

/** Measure the contention-free latency of one isolated miss whose
 * data comes from the given level. */
Tick
isolatedMissLatency(const char *level)
{
    SystemConfig cfg;
    cfg.topology = TopologyParams::flat(4, 4);
    cfg.warmupPass = false;

    std::vector<std::vector<TraceRecord>> per_thread(16);
    if (std::string(level) == "memory") {
        per_thread[0] = {TraceRecord{0x0, 0, 0, MemOp::Load}};
    } else if (std::string(level) == "l3") {
        // Evict the line to the L3 first, then refetch after a long
        // quiet gap; measure only the refetch via the finish tick.
        per_thread[0] = {
            TraceRecord{0x0, 0, 0, MemOp::Load},
            TraceRecord{0x20000, 2000, 0, MemOp::Load},
            TraceRecord{0x40000, 2000, 0, MemOp::Load},
        };
    }
    CmpSystem sys(cfg, splitByThread(
                           [&] {
                               std::vector<TraceRecord> all;
                               for (unsigned t = 0; t < 16; ++t)
                                   for (auto &r : per_thread[t])
                                       all.push_back(r);
                               return all;
                           }(),
                           16));
    return sys.run();
}

void
row(const std::string &name, const std::string &ours,
    const std::string &paper)
{
    std::cout << std::left << std::setw(34) << name << std::setw(26)
              << ours << paper << "\n";
}

} // namespace

int
main()
{
    banner("Table 3: System Parameters");

    SystemConfig cfg;
    row("parameter", "cmpcache default", "paper");
    row("processors", cstr(cfg.topology.cores, ", ",
                       cfg.topology.smt, "-way SMT"),
        "8, 2-way SMT");
    row("L2 caches", cstr(cfg.numL2s()), "4");
    row("L2 size", cstr(cfg.l2.slices, " slices x ",
                        cfg.l2.sizeBytes / cfg.l2.slices / 1024, " KB"),
        "4 slices, 512 KB each");
    row("L2 associativity", cstr(cfg.l2.assoc, "-way"), "8-way");
    row("L2 latency", cstr(cfg.l2.hitLatency, " cycles"), "20 cycles");
    row("L3 size", cstr(cfg.l3.slices, " slices x ",
                        cfg.l3.sizeBytes / cfg.l3.slices / 1024 / 1024,
                        " MB"),
        "4 slices, 4 MB each");
    row("L3 associativity", cstr(cfg.l3.assoc, "-way"), "16-way");
    row("line size", cstr(cfg.l2.lineSize, " B"), "128 B");
    row("ring", cstr("slot/", cfg.ring.addrSlotCycles,
                     " cycles, bi-directional"),
        "1:2 core speed, 32B-wide");

    std::cout << "\nComposed contention-free latencies:\n";
    const Tick mem = isolatedMissLatency("memory");
    row("memory (from core)", cstr(mem, " cycles"), "431 cycles");
    std::cout << "\n(L2-to-L2 transfer 77 cycles and L3 167 cycles "
                 "are composed from the same\n ring parameters; see "
                 "tests/sim/test_cmp_system.cc timing checks.)\n";
    return 0;
}
