/**
 * @file
 * Machine-scaling study: the paper's 8-core machine grown to 16, 32
 * and 64 cores behind the declarative topology API (4 single-SMT
 * cores per L2 cluster, one L3 slice per L2, single ring).
 *
 * Each cell runs the thrash stress workload under the combined policy
 * and reports simulator throughput (kernel events per wall second)
 * alongside the adaptive-mechanism health stats -- retry traffic,
 * snarf usage, WBHT accuracy -- so a scaling regression in either
 * speed or behaviour is visible. Each cell also reruns once under the
 * domain scheduler with the phase-timing gauges on and records the
 * per-phase wall breakdown (core execution, barrier wait, replay,
 * global, renumber) so parallel-kernel time is attributable as the
 * machine grows; that rerun is informational and never gates.
 *
 * Emits cmpcache-scale-bench-v1 JSON. The committed baseline lives in
 * bench/BENCH_scale.json; scripts/bench_guard.py guards only the
 * 8-core cell's events/sec (marked "guard": true), the larger
 * machines are informational.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/domain_scheduler.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "trace/workloads_commercial.hh"

namespace cmpcache
{
namespace
{

struct ScaleCell
{
    unsigned cores = 0;
    unsigned l2s = 0;
    SweepJobResult r;
    /** Domain-scheduler run of the same cell (informational). */
    unsigned parallelWorkers = 0;
    double parallelSeconds = 0.0;
    DomainScheduler::PhaseStats phases;
};

/** Doubles print round-trippably, mirroring the sweep writers. */
std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

ScaleCell
runScaleCell(unsigned cores, std::uint64_t refs_per_thread,
             unsigned repeats)
{
    SweepSpec spec;
    spec.workloads = {"thrash"};
    spec.policies = {WbPolicy::Combined};
    spec.outstanding = {6};
    spec.recordsPerThread = refs_per_thread;

    ScaleCell cell;
    cell.cores = cores;
    cell.l2s = cores / 4;
    spec.base.topology.cores = cores;
    spec.base.topology.smt = 1;
    spec.base.topology.l2s = cell.l2s;
    spec.base.topology.l3Slices = cell.l2s;
    // The retry-rate switch scaled to short synthetic traces, as in
    // every other bench (see bench/support.hh).
    spec.base.policy.retry.windowCycles = 250000;
    spec.base.policy.retry.threshold = 100;

    // Best-of-N: the smallest machines finish in tens of
    // milliseconds, so a single run is too noisy to gate on. Results
    // are deterministic across repeats; only the timing varies.
    for (unsigned rep = 0; rep < repeats; ++rep) {
        const auto results = runSweep(spec, 1);
        if (results.size() != 1 || !results[0].ok) {
            std::cerr << "scale cell " << cores << "c failed: "
                      << (results.empty() ? "no result"
                                          : results[0].error)
                      << "\n";
            std::exit(1);
        }
        if (rep == 0 || results[0].eventsPerSec > cell.r.eventsPerSec)
            cell.r = results[0];
    }

    // One scheduler-backed run of the same cell for the per-phase
    // wall breakdown (docs/parallel.md): where the parallel kernel
    // spends its time as the machine grows. Informational -- the
    // guarded metric above stays the serial kernel's throughput.
    {
        SweepSpec pspec = spec;
        cell.parallelWorkers = std::min(4u, cell.l2s);
        pspec.base.runThreads = cell.parallelWorkers;
        pspec.base.obs.schedGauges = true; // enables phase timing
        const auto jobs = pspec.expand();
        const auto start = std::chrono::steady_clock::now();
        Simulation sim(jobs[0].config, jobs[0].params);
        sim.run();
        cell.parallelSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (const DomainScheduler *sched =
                sim.system().domainScheduler())
            cell.phases = sched->phaseStats();
    }
    return cell;
}

void
writeJson(std::ostream &os, std::uint64_t refs,
          const std::vector<ScaleCell> &cells)
{
    os << "{\n  \"schema\": \"cmpcache-scale-bench-v1\",\n"
       << "  \"workload\": \"thrash\",\n"
       << "  \"policy\": \"combined\",\n"
       << "  \"refsPerThread\": " << refs << ",\n  \"pairs\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &res = c.r.result;
        os << "    {\"name\": \"scale-" << c.cores << "c\""
           << ", \"guard\": " << (i == 0 ? "true" : "false")
           << ", \"cores\": " << c.cores << ", \"l2s\": " << c.l2s
           << ", \"threads\": " << c.cores
           << ", \"execTime\": " << res.execTime
           << ", \"eventsExecuted\": " << c.r.eventsExecuted
           << ", \"wallSeconds\": " << jsonNum(c.r.wallSeconds)
           << ", \"eventsPerSec\": " << jsonNum(c.r.eventsPerSec)
           << ", \"currentOpsPerSec\": " << jsonNum(c.r.eventsPerSec)
           << ", \"busRetries\": " << res.busRetries
           << ", \"l3Retries\": " << res.l3Retries
           << ", \"wbSnarfedPct\": " << jsonNum(res.wbSnarfedPct)
           << ", \"snarfedUsedLocallyPct\": "
           << jsonNum(res.snarfedUsedLocallyPct)
           << ", \"snarfedForInterventionPct\": "
           << jsonNum(res.snarfedForInterventionPct)
           << ", \"wbhtCorrectPct\": " << jsonNum(res.wbhtCorrectPct)
           << ", \"l2HitRatePct\": " << jsonNum(res.l2HitRatePct)
           << ", \"parallelWorkers\": " << c.parallelWorkers
           << ", \"parallelSeconds\": " << jsonNum(c.parallelSeconds)
           << ", \"phases\": {\"rounds\": " << c.phases.rounds
           << ", \"fanOutRounds\": " << c.phases.fanOutRounds
           << ", \"soloRounds\": " << c.phases.soloRounds
           << ", \"renumberSorts\": " << c.phases.renumberSorts
           << ", \"birthRecords\": " << c.phases.birthRecords
           << ", \"coreSeconds\": " << jsonNum(c.phases.coreSeconds)
           << ", \"barrierSeconds\": "
           << jsonNum(c.phases.barrierSeconds)
           << ", \"replaySeconds\": "
           << jsonNum(c.phases.replaySeconds)
           << ", \"globalSeconds\": "
           << jsonNum(c.phases.globalSeconds)
           << ", \"renumberSeconds\": "
           << jsonNum(c.phases.renumberSeconds) << "}"
           << "}" << (i + 1 == cells.size() ? "\n" : ",\n");
    }
    os << "  ]\n}\n";
}

} // namespace
} // namespace cmpcache

int
main(int argc, char **argv)
{
    using namespace cmpcache;

    std::string out;
    unsigned repeats = 3;
    std::vector<unsigned> core_counts = {8, 16, 32, 64};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else if (arg.rfind("--repeats=", 0) == 0) {
            repeats = static_cast<unsigned>(
                std::stoul(arg.substr(10)));
            if (repeats == 0)
                repeats = 1;
        } else if (arg.rfind("--cores=", 0) == 0) {
            core_counts.clear();
            std::istringstream is(arg.substr(8));
            std::string tok;
            while (std::getline(is, tok, ','))
                core_counts.push_back(
                    static_cast<unsigned>(std::stoul(tok)));
        } else {
            std::cerr << "usage: scale [--cores=8,16,...] "
                         "[--repeats=N] [--out=FILE]\n";
            return 2;
        }
    }

    const std::uint64_t refs = benchRecordsPerThread(8000);
    std::vector<ScaleCell> cells;
    for (unsigned cores : core_counts) {
        if (cores % 4 != 0 || cores == 0) {
            std::cerr << "core counts must be positive multiples of 4 "
                         "(4 threads per L2 cluster), got "
                      << cores << "\n";
            return 2;
        }
        std::cerr << "scale: " << cores << " cores, "
                  << cores / 4 << " L2s...\n";
        cells.push_back(runScaleCell(cores, refs, repeats));
    }

    writeJson(std::cout, refs, cells);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        writeJson(f, refs, cells);
        std::cerr << "scale bench written to " << out << "\n";
    }
    return 0;
}
