/** @file Unit tests for the memory controller. */

#include <gtest/gtest.h>

#include "memctrl/mem_ctrl.hh"
#include "sim/event_queue.hh"

using namespace cmpcache;

namespace
{

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest() : root_("sys")
    {
        mem_ = std::make_unique<MemCtrl>(&root_, eq_, 5, RingStop(5), params_);
    }

    BusRequest
    rd(Addr a)
    {
        BusRequest r;
        r.lineAddr = a;
        r.cmd = BusCmd::Read;
        r.requester = 0;
        return r;
    }

    stats::Group root_;
    EventQueue eq_;
    MemParams params_;
    std::unique_ptr<MemCtrl> mem_;
};

} // namespace

TEST_F(MemCtrlTest, NeverRetries)
{
    const auto resp = mem_->snoop(rd(0x1000));
    EXPECT_FALSE(resp.retry);
    EXPECT_FALSE(resp.hasLine);
    EXPECT_FALSE(resp.wbAccept);
}

TEST_F(MemCtrlTest, SupplyHasFixedLatencyWhenIdle)
{
    EXPECT_EQ(mem_->scheduleSupply(rd(0x1000), 100),
              100 + params_.accessLatency);
    EXPECT_EQ(mem_->reads(), 1u);
}

TEST_F(MemCtrlTest, BackToBackSuppliesQueueOnChannel)
{
    const Tick t1 = mem_->scheduleSupply(rd(0x1000), 100);
    const Tick t2 = mem_->scheduleSupply(rd(0x2000), 100);
    EXPECT_EQ(t2 - t1, params_.channelOccupancy);
}

TEST_F(MemCtrlTest, ChannelRecoversAfterGap)
{
    mem_->scheduleSupply(rd(0x1000), 100);
    // Far in the future: no queuing.
    EXPECT_EQ(mem_->scheduleSupply(rd(0x2000), 10000),
              10000 + params_.accessLatency);
}

TEST_F(MemCtrlTest, L3VictimWritesConsumeBandwidth)
{
    mem_->writeFromL3();
    EXPECT_EQ(mem_->writes(), 1u);
    // The write occupies the channel: a read right after waits.
    const Tick t = mem_->scheduleSupply(rd(0x1000), 0);
    EXPECT_EQ(t, params_.channelOccupancy + params_.accessLatency);
}
