/** @file Unit tests for the Write Back History Table. */

#include <gtest/gtest.h>

#include "core/wbht.hh"
#include "stats/sink.hh"

using namespace cmpcache;

namespace
{

class WbhtTest : public ::testing::Test
{
  protected:
    WbhtTest() : root_("sys")
    {
        WriteBackHistoryTable::Params p;
        p.entries = 256;
        p.assoc = 16;
        p.lineSize = 128;
        wbht_ = std::make_unique<WriteBackHistoryTable>(&root_, p);
    }

    stats::Group root_;
    std::unique_ptr<WriteBackHistoryTable> wbht_;
};

} // namespace

TEST_F(WbhtTest, UnknownLineIsNotAborted)
{
    EXPECT_FALSE(wbht_->shouldAbort(0x1000, false));
    EXPECT_EQ(wbht_->aborts(), 0u);
}

TEST_F(WbhtTest, RecordedLineIsAborted)
{
    wbht_->recordL3Valid(0x1000);
    EXPECT_TRUE(wbht_->shouldAbort(0x1000, true));
    EXPECT_EQ(wbht_->aborts(), 1u);
}

TEST_F(WbhtTest, AccuracyScoring)
{
    // Correct abort: predicted in L3, actually in L3.
    wbht_->recordL3Valid(0x1000);
    wbht_->shouldAbort(0x1000, true);
    // False abort: predicted in L3, actually NOT (L3 replaced it).
    wbht_->recordL3Valid(0x2000);
    wbht_->shouldAbort(0x2000, false);
    // Correct send: no entry, not in L3.
    wbht_->shouldAbort(0x3000, false);
    // Missed abort: no entry, but the line IS in L3.
    wbht_->shouldAbort(0x4000, true);

    EXPECT_EQ(wbht_->decisions(), 4u);
    EXPECT_EQ(wbht_->correct(), 2u);
    EXPECT_DOUBLE_EQ(wbht_->correctFraction(), 0.5);
}

TEST_F(WbhtTest, InvalidateDropsEntry)
{
    wbht_->recordL3Valid(0x1000);
    wbht_->invalidate(0x1000);
    EXPECT_FALSE(wbht_->shouldAbort(0x1000, false));
}

TEST_F(WbhtTest, DivergenceByCapacityIsTolerated)
{
    // Overflow the 256-entry table with 1000 lines; early lines lose
    // their entries -> their write backs are (incorrectly but safely)
    // sent again.
    for (Addr a = 0; a < 1000 * 128; a += 128)
        wbht_->recordL3Valid(a);
    EXPECT_FALSE(wbht_->shouldAbort(0x0, true)); // entry long gone
    EXPECT_TRUE(
        wbht_->shouldAbort((999 * 128), true)); // most recent survives
}

TEST_F(WbhtTest, StatsExposedThroughGroup)
{
    wbht_->recordL3Valid(0x1000);
    wbht_->shouldAbort(0x1000, true);
    std::ostringstream os;
    stats::writeText(root_, os);
    EXPECT_NE(os.str().find("wbht.allocated 1"), std::string::npos);
    EXPECT_NE(os.str().find("wbht.aborted 1"), std::string::npos);
    EXPECT_NE(os.str().find("wbht.correct 1"), std::string::npos);
}

TEST(WbhtCoarse, MultiLineEntriesShareOneTag)
{
    stats::Group root("sys");
    WriteBackHistoryTable::Params p;
    p.entries = 64;
    p.assoc = 16;
    p.lineSize = 128;
    p.linesPerEntry = 4; // one entry covers a 512 B group
    WriteBackHistoryTable wbht(&root, p);

    wbht.recordL3Valid(0x1000);
    // All four lines of the group predict "in L3"...
    EXPECT_TRUE(wbht.shouldAbort(0x1000, true));
    EXPECT_TRUE(wbht.shouldAbort(0x1080, true));
    EXPECT_TRUE(wbht.shouldAbort(0x1180, false)); // ...even wrongly
    // The next group is not covered.
    EXPECT_FALSE(wbht.shouldAbort(0x1200, false));
}

TEST(WbhtCoarse, CoverageGrowsWithGranularity)
{
    stats::Group root("sys");
    WriteBackHistoryTable::Params fine;
    fine.entries = 64;
    fine.assoc = 16;
    fine.lineSize = 128;
    WriteBackHistoryTable f(&root, fine);

    auto coarse = fine;
    coarse.linesPerEntry = 8;
    WriteBackHistoryTable c(&root, coarse);

    // Record 512 consecutive lines into both 64-entry tables.
    for (Addr a = 0; a < 512 * 128; a += 128) {
        f.recordL3Valid(a);
        c.recordL3Valid(a);
    }
    // Fine granularity retains at most 64 lines; coarse covers
    // 64 * 8 = all 512.
    std::uint64_t fine_hits = 0;
    std::uint64_t coarse_hits = 0;
    for (Addr a = 0; a < 512 * 128; a += 128) {
        fine_hits += f.table().contains(a, false);
        coarse_hits += c.table().contains(a, false);
    }
    EXPECT_LE(fine_hits, 64u);
    EXPECT_EQ(coarse_hits, 512u);
}
