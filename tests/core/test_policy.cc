/** @file Unit tests for policy configuration. */

#include <gtest/gtest.h>

#include "core/policy.hh"

using namespace cmpcache;

TEST(Policy, RoundTripNames)
{
    for (const auto p :
         {WbPolicy::Baseline, WbPolicy::Wbht, WbPolicy::WbhtGlobal,
          WbPolicy::Snarf, WbPolicy::Combined}) {
        EXPECT_EQ(wbPolicyFromString(toString(p)), p);
    }
}

TEST(PolicyDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(wbPolicyFromString("magic"),
                ::testing::ExitedWithCode(1), "unknown write-back");
}

TEST(Policy, FeatureFlags)
{
    EXPECT_FALSE(PolicyConfig::make(WbPolicy::Baseline).usesWbht());
    EXPECT_FALSE(PolicyConfig::make(WbPolicy::Baseline).usesSnarf());

    EXPECT_TRUE(PolicyConfig::make(WbPolicy::Wbht).usesWbht());
    EXPECT_FALSE(PolicyConfig::make(WbPolicy::Wbht).usesSnarf());
    EXPECT_FALSE(
        PolicyConfig::make(WbPolicy::Wbht).globalWbhtAllocation());

    EXPECT_TRUE(
        PolicyConfig::make(WbPolicy::WbhtGlobal).usesWbht());
    EXPECT_TRUE(
        PolicyConfig::make(WbPolicy::WbhtGlobal).globalWbhtAllocation());

    EXPECT_FALSE(PolicyConfig::make(WbPolicy::Snarf).usesWbht());
    EXPECT_TRUE(PolicyConfig::make(WbPolicy::Snarf).usesSnarf());

    EXPECT_TRUE(PolicyConfig::make(WbPolicy::Combined).usesWbht());
    EXPECT_TRUE(PolicyConfig::make(WbPolicy::Combined).usesSnarf());
}

TEST(Policy, PaperDefaultTableSizes)
{
    const auto single = PolicyConfig::make(WbPolicy::Wbht);
    EXPECT_EQ(single.wbht.entries, 32768u);
    EXPECT_EQ(single.wbht.assoc, 16u);

    // Section 5.3: combined halves both tables to 16 K entries.
    const auto comb = PolicyConfig::combinedDefault();
    EXPECT_EQ(comb.policy, WbPolicy::Combined);
    EXPECT_EQ(comb.wbht.entries, 16384u);
    EXPECT_EQ(comb.snarf.entries, 16384u);
}

TEST(Policy, PaperDefaultRetrySwitch)
{
    const PolicyConfig c;
    EXPECT_TRUE(c.useRetrySwitch);
    EXPECT_EQ(c.retry.windowCycles, 1000000u);
    EXPECT_EQ(c.retry.threshold, 2000u);
}

TEST(Policy, SnarfDefaults)
{
    const PolicyConfig c;
    EXPECT_TRUE(c.snarfSharedVictims);
    EXPECT_EQ(c.snarfInsert, InsertPos::Mru);
    EXPECT_GT(c.snarfBuffers, 0u);
}
