/** @file Unit tests for the snarf table. */

#include <gtest/gtest.h>

#include "core/snarf_table.hh"
#include "stats/sink.hh"

using namespace cmpcache;

namespace
{

class SnarfTableTest : public ::testing::Test
{
  protected:
    SnarfTableTest() : root_("sys")
    {
        SnarfTable::Params p;
        p.entries = 256;
        p.assoc = 16;
        p.lineSize = 128;
        st_ = std::make_unique<SnarfTable>(&root_, p);
    }

    stats::Group root_;
    std::unique_ptr<SnarfTable> st_;
};

} // namespace

TEST_F(SnarfTableTest, FreshWriteBackNotFlagged)
{
    st_->recordWriteBack(0x1000);
    // Written back once, never missed on again: no reuse evidence.
    EXPECT_FALSE(st_->shouldFlagSnarf(0x1000));
}

TEST_F(SnarfTableTest, WriteBackThenMissThenFlag)
{
    // The paper's sequence: line written back, missed on again
    // (use bit set), written back again -> flag the snarf.
    st_->recordWriteBack(0x1000);
    st_->recordMiss(0x1000);
    EXPECT_TRUE(st_->shouldFlagSnarf(0x1000));
}

TEST_F(SnarfTableTest, MissWithoutEntryDoesNothing)
{
    st_->recordMiss(0x2000);
    st_->recordWriteBack(0x2000);
    EXPECT_FALSE(st_->shouldFlagSnarf(0x2000));
}

TEST_F(SnarfTableTest, UnknownLineNeverFlagged)
{
    EXPECT_FALSE(st_->shouldFlagSnarf(0x9000));
}

TEST_F(SnarfTableTest, ReusedEntriesSurviveAllocationChurn)
{
    // The snarf table protects entries with demonstrated reuse:
    // unproven write backs churning the set must not evict them.
    st_->recordWriteBack(0x1000);
    st_->recordMiss(0x1000);
    // 256 entries / 16-way = 16 sets; set stride = 16 lines = 0x800.
    for (int i = 1; i <= 40; ++i)
        st_->recordWriteBack(0x1000 + static_cast<Addr>(i) * 0x800);
    EXPECT_TRUE(st_->shouldFlagSnarf(0x1000));
}

TEST_F(SnarfTableTest, EvictionForgetsReuseWhenSetIsAllReused)
{
    // With every way holding a *reused* line, LRU among them applies
    // and the oldest reused entry is lost.
    st_->recordWriteBack(0x1000);
    st_->recordMiss(0x1000);
    for (int i = 1; i <= 16; ++i) {
        const Addr a = 0x1000 + static_cast<Addr>(i) * 0x800;
        st_->recordWriteBack(a);
        st_->recordMiss(a); // all use bits set
    }
    EXPECT_FALSE(st_->shouldFlagSnarf(0x1000));
}

TEST_F(SnarfTableTest, ReWriteBackKeepsUseBit)
{
    // A line with demonstrated reuse keeps the flag across repeated
    // write backs (allocate() refreshes but preserves the bit).
    st_->recordWriteBack(0x1000);
    st_->recordMiss(0x1000);
    st_->recordWriteBack(0x1000);
    EXPECT_TRUE(st_->shouldFlagSnarf(0x1000));
}

TEST_F(SnarfTableTest, StatsCount)
{
    st_->recordWriteBack(0x1000);
    st_->recordMiss(0x1000);
    st_->shouldFlagSnarf(0x1000);
    std::ostringstream os;
    stats::writeText(root_, os);
    EXPECT_NE(os.str().find("snarf_table.wb_recorded 1"),
              std::string::npos);
    EXPECT_NE(os.str().find("snarf_table.miss_marked 1"),
              std::string::npos);
    EXPECT_NE(os.str().find("snarf_table.flagged 1"),
              std::string::npos);
}
