/** @file Unit tests for the WBHT retry-rate switch. */

#include <gtest/gtest.h>

#include "core/retry_monitor.hh"

using namespace cmpcache;

namespace
{

RetryMonitor::Params
params(Tick window = 1000, std::uint64_t threshold = 10,
       bool initial = false)
{
    RetryMonitor::Params p;
    p.windowCycles = window;
    p.threshold = threshold;
    p.initiallyActive = initial;
    return p;
}

} // namespace

TEST(RetryMonitor, InitialStateRespected)
{
    stats::Group root("sys");
    RetryMonitor off(&root, params(1000, 10, false));
    EXPECT_FALSE(off.active(0));
    RetryMonitor on(&root, params(1000, 10, true));
    EXPECT_TRUE(on.active(0));
}

TEST(RetryMonitor, ActivatesWhenThresholdMet)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 10; ++t)
        m.recordRetry(t);
    // Still inside window 0: not yet re-evaluated.
    EXPECT_FALSE(m.active(999));
    // Window closed with 10 >= 10 retries.
    EXPECT_TRUE(m.active(1000));
}

TEST(RetryMonitor, StaysOffBelowThreshold)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 9; ++t)
        m.recordRetry(t);
    EXPECT_FALSE(m.active(1000));
}

TEST(RetryMonitor, DeactivatesWhenPressureSubsides)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 20; ++t)
        m.recordRetry(t);
    EXPECT_TRUE(m.active(1500)); // window 0 was busy
    // Window 1 (1000..2000) is quiet: off again from 2000.
    EXPECT_FALSE(m.active(2000));
}

TEST(RetryMonitor, MultipleEmptyWindowsRollCorrectly)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 5));
    for (int i = 0; i < 7; ++i)
        m.recordRetry(100 + i);
    EXPECT_TRUE(m.active(1100));
    // Jump far ahead: all intermediate windows were quiet.
    EXPECT_FALSE(m.active(57000));
}

TEST(RetryMonitor, RetriesLandInCorrectWindow)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 5));
    // 3 retries in window 0, 5 in window 1.
    for (int i = 0; i < 3; ++i)
        m.recordRetry(10 + i);
    for (int i = 0; i < 5; ++i)
        m.recordRetry(1010 + i);
    EXPECT_FALSE(m.active(1500)); // window 0: 3 < 5
    EXPECT_TRUE(m.active(2000));  // window 1: 5 >= 5
}

TEST(RetryMonitor, PaperDefaults)
{
    stats::Group root("sys");
    RetryMonitor::Params p;
    EXPECT_EQ(p.windowCycles, 1000000u);
    EXPECT_EQ(p.threshold, 2000u);
    RetryMonitor m(&root, p);
    // 2000 retries within the first million cycles flips it on.
    for (int i = 0; i < 2000; ++i)
        m.recordRetry(static_cast<Tick>(i) * 400);
    EXPECT_TRUE(m.active(1000000));
}
