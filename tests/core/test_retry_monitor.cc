/** @file Unit tests for the WBHT retry-rate switch. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/retry_monitor.hh"

using namespace cmpcache;

namespace
{

RetryMonitor::Params
params(Tick window = 1000, std::uint64_t threshold = 10,
       bool initial = false)
{
    RetryMonitor::Params p;
    p.windowCycles = window;
    p.threshold = threshold;
    p.initiallyActive = initial;
    return p;
}

} // namespace

TEST(RetryMonitor, InitialStateRespected)
{
    stats::Group root("sys");
    RetryMonitor off(&root, params(1000, 10, false));
    EXPECT_FALSE(off.active(0));
    RetryMonitor on(&root, params(1000, 10, true));
    EXPECT_TRUE(on.active(0));
}

TEST(RetryMonitor, ActivatesWhenThresholdMet)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 10; ++t)
        m.recordRetry(t);
    // Still inside window 0: not yet re-evaluated.
    EXPECT_FALSE(m.active(999));
    // Window closed with 10 >= 10 retries.
    EXPECT_TRUE(m.active(1000));
}

TEST(RetryMonitor, StaysOffBelowThreshold)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 9; ++t)
        m.recordRetry(t);
    EXPECT_FALSE(m.active(1000));
}

TEST(RetryMonitor, DeactivatesWhenPressureSubsides)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 10));
    for (Tick t = 0; t < 20; ++t)
        m.recordRetry(t);
    EXPECT_TRUE(m.active(1500)); // window 0 was busy
    // Window 1 (1000..2000) is quiet: off again from 2000.
    EXPECT_FALSE(m.active(2000));
}

TEST(RetryMonitor, MultipleEmptyWindowsRollCorrectly)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 5));
    for (int i = 0; i < 7; ++i)
        m.recordRetry(100 + i);
    EXPECT_TRUE(m.active(1100));
    // Jump far ahead: all intermediate windows were quiet.
    EXPECT_FALSE(m.active(57000));
}

TEST(RetryMonitor, RetriesLandInCorrectWindow)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 5));
    // 3 retries in window 0, 5 in window 1.
    for (int i = 0; i < 3; ++i)
        m.recordRetry(10 + i);
    for (int i = 0; i < 5; ++i)
        m.recordRetry(1010 + i);
    EXPECT_FALSE(m.active(1500)); // window 0: 3 < 5
    EXPECT_TRUE(m.active(2000));  // window 1: 5 >= 5
}

namespace
{

/**
 * Straightforward one-window-at-a-time model of the switch, used to
 * pin down the arithmetic skip-ahead in RetryMonitor::rollWindows.
 */
class LoopModel
{
  public:
    explicit LoopModel(const RetryMonitor::Params &p)
        : params_(p), active_(p.initiallyActive)
    {
    }

    void
    recordRetry(Tick now)
    {
        roll(now);
        ++count_;
    }

    bool
    active(Tick now)
    {
        roll(now);
        return active_;
    }

  private:
    void
    roll(Tick now)
    {
        while (now >= windowStart_ + params_.windowCycles) {
            active_ = count_ >= params_.threshold;
            count_ = 0;
            windowStart_ += params_.windowCycles;
        }
    }

    RetryMonitor::Params params_;
    Tick windowStart_ = 0;
    std::uint64_t count_ = 0;
    bool active_;
};

} // namespace

TEST(RetryMonitor, SkipAheadMatchesLoopModel)
{
    // Random bursts separated by random idle gaps (up to thousands of
    // windows): the skip-ahead arithmetic must agree with the naive
    // window-by-window model at every query point.
    for (const std::uint64_t threshold : {0u, 1u, 5u, 20u}) {
        stats::Group root("sys");
        RetryMonitor m(&root, params(1000, threshold));
        LoopModel ref(params(1000, threshold));
        Rng rng(99 + threshold);
        Tick now = 0;
        for (int step = 0; step < 400; ++step) {
            now += 1 + rng.below(step % 7 == 0 ? 5000000 : 800);
            if (rng.below(3) != 0) {
                m.recordRetry(now);
                ref.recordRetry(now);
            }
            ASSERT_EQ(m.active(now), ref.active(now))
                << "diverged at t=" << now << " threshold="
                << threshold;
        }
    }
}

TEST(RetryMonitor, SkipAheadExactWindowBoundaries)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 2));
    m.recordRetry(10);
    m.recordRetry(20);
    // Exactly at the close of window 0: the busy window turns it on.
    EXPECT_TRUE(m.active(1000));
    // Exactly at the close of window 1 (quiet): off again.
    EXPECT_FALSE(m.active(2000));
    // Jump an exact multiple of windows while quiet: still off.
    EXPECT_FALSE(m.active(902000));
}

TEST(RetryMonitor, ZeroThresholdStaysActiveAcrossIdleGaps)
{
    // threshold == 0 means every closed window re-enables the table,
    // including the zero-retry windows in a long idle gap.
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 0));
    EXPECT_FALSE(m.active(999)); // initial state until a window closes
    EXPECT_TRUE(m.active(1000));
    EXPECT_TRUE(m.active(500000000));
}

TEST(RetryMonitor, BusyWindowThenHugeGapDeactivates)
{
    stats::Group root("sys");
    RetryMonitor m(&root, params(1000, 3));
    for (int i = 0; i < 4; ++i)
        m.recordRetry(i);
    // The first elapsed window was busy; every window of the gap
    // after it was quiet, so a query far ahead must read off.
    EXPECT_FALSE(m.active(1000u * 1000u * 1000u));
}

TEST(RetryMonitor, PaperDefaults)
{
    stats::Group root("sys");
    RetryMonitor::Params p;
    EXPECT_EQ(p.windowCycles, 1000000u);
    EXPECT_EQ(p.threshold, 2000u);
    RetryMonitor m(&root, p);
    // 2000 retries within the first million cycles flips it on.
    for (int i = 0; i < 2000; ++i)
        m.recordRetry(static_cast<Tick>(i) * 400);
    EXPECT_TRUE(m.active(1000000));
}
