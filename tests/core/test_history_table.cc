/** @file Unit tests for the set-associative history table. */

#include <gtest/gtest.h>

#include "core/history_table.hh"

using namespace cmpcache;

TEST(HistoryTable, Geometry)
{
    HistoryTable t(32768, 16, 128);
    EXPECT_EQ(t.numEntries(), 32768u);
    EXPECT_EQ(t.assoc(), 16u);
    EXPECT_EQ(t.numSets(), 2048u);
}

TEST(HistoryTable, AllocateThenContains)
{
    HistoryTable t(64, 4, 128);
    EXPECT_FALSE(t.contains(0x1000));
    t.allocate(0x1000);
    EXPECT_TRUE(t.contains(0x1000));
    EXPECT_TRUE(t.contains(0x1040)); // same line
    EXPECT_FALSE(t.contains(0x1080)); // next line
}

TEST(HistoryTable, UseBitLifecycle)
{
    HistoryTable t(64, 4, 128);
    EXPECT_FALSE(t.markUsed(0x1000)); // not present yet
    t.allocate(0x1000);
    EXPECT_FALSE(t.useBitSet(0x1000));
    EXPECT_TRUE(t.markUsed(0x1000));
    EXPECT_TRUE(t.useBitSet(0x1000));
}

TEST(HistoryTable, ReallocatePreservesUseBit)
{
    HistoryTable t(64, 4, 128);
    t.allocate(0x1000);
    t.markUsed(0x1000);
    EXPECT_FALSE(t.allocate(0x1000)); // refresh, no eviction
    EXPECT_TRUE(t.useBitSet(0x1000));
}

TEST(HistoryTable, LruEvictionWithinSet)
{
    // 8 entries, 4-way -> 2 sets. Lines with the same low index bits
    // collide. Line size 128, so set = (addr >> 7) & 1.
    HistoryTable t(8, 4, 128);
    const Addr base = 0x0; // set 0
    // Fill set 0 with 4 lines: addresses stride 2 lines = 0x100.
    for (int i = 0; i < 4; ++i)
        t.allocate(base + static_cast<Addr>(i) * 0x100);
    // Touch the oldest so it's no longer the LRU.
    EXPECT_TRUE(t.contains(base));
    // Insert a fifth line: evicts the now-oldest (i = 1).
    EXPECT_TRUE(t.allocate(base + 4 * 0x100));
    EXPECT_TRUE(t.contains(base, false));
    EXPECT_FALSE(t.contains(base + 0x100, false));
}

TEST(HistoryTable, EvictedEntryLosesUseBit)
{
    HistoryTable t(4, 2, 128); // 2 sets, 2-way
    const Addr a = 0x000;      // set 0
    const Addr b = 0x100;      // set 0
    const Addr c = 0x200;      // set 0
    t.allocate(a);
    t.markUsed(a);
    t.allocate(b);
    t.allocate(c); // evicts a
    EXPECT_FALSE(t.contains(a, false));
    t.allocate(a); // fresh entry
    EXPECT_FALSE(t.useBitSet(a));
}

TEST(HistoryTable, EraseRemoves)
{
    HistoryTable t(64, 4, 128);
    t.allocate(0x1000);
    EXPECT_TRUE(t.erase(0x1000));
    EXPECT_FALSE(t.contains(0x1000));
    EXPECT_FALSE(t.erase(0x1000));
}

TEST(HistoryTable, CountValidAndClear)
{
    HistoryTable t(64, 4, 128);
    for (Addr a = 0; a < 10 * 128; a += 128)
        t.allocate(a);
    EXPECT_EQ(t.countValid(), 10u);
    t.clear();
    EXPECT_EQ(t.countValid(), 0u);
}

TEST(HistoryTable, ContainsNoTouchLeavesLruAlone)
{
    HistoryTable t(4, 2, 128);
    const Addr a = 0x000;
    const Addr b = 0x100;
    const Addr c = 0x200;
    t.allocate(a);
    t.allocate(b);
    // Peek at `a` without touching; it must still be the LRU victim.
    EXPECT_TRUE(t.contains(a, false));
    t.allocate(c);
    EXPECT_FALSE(t.contains(a, false));
    EXPECT_TRUE(t.contains(b, false));
}

TEST(HistoryTable, CapacityNeverExceeded)
{
    HistoryTable t(128, 8, 128);
    for (Addr a = 0; a < 1000 * 128; a += 128)
        t.allocate(a);
    EXPECT_LE(t.countValid(), 128u);
}

TEST(HistoryTableDeath, BadGeometryPanics)
{
    EXPECT_DEATH(HistoryTable(100, 16, 128), "");
    EXPECT_DEATH(HistoryTable(96, 16, 128), "2\\^k");
}

// Property sweep over table sizes: a working set that fits is fully
// retained; one that does not fit loses entries.
class TableSizeSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TableSizeSweep, RetentionMatchesCapacity)
{
    const std::uint64_t entries = GetParam();
    HistoryTable t(entries, 16, 128);
    // Insert exactly `entries` distinct lines, striding one line.
    for (Addr a = 0; a < entries * 128; a += 128)
        t.allocate(a);
    EXPECT_EQ(t.countValid(), entries);
    std::uint64_t hits = 0;
    for (Addr a = 0; a < entries * 128; a += 128)
        hits += t.contains(a, false);
    EXPECT_EQ(hits, entries); // perfectly retained

    // Doubling the footprint must evict about half.
    for (Addr a = entries * 128; a < 2 * entries * 128; a += 128)
        t.allocate(a);
    EXPECT_EQ(t.countValid(), entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableSizeSweep,
                         ::testing::Values(512u, 1024u, 4096u, 32768u));
